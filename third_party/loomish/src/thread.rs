//! Instrumented `thread::spawn`/`JoinHandle`: model threads under a model
//! run, real `std::thread` otherwise.

use crate::rt::{self, op, Blocked, Status};
use std::any::Any;
use std::sync::{Arc, Mutex as StdMutex};

pub use crate::rt::model_thread_id;

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        tid: usize,
        result: Arc<StdMutex<Option<Box<dyn Any + Send>>>>,
    },
}

pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its value. Unlike
    /// `std::thread`, a panicking model thread fails the whole execution
    /// before the joiner sees a result, so the `Err` arm is only reachable
    /// on the std passthrough path.
    pub fn join(self) -> std::thread::Result<T>
    where
        T: 'static,
    {
        match self.inner {
            Inner::Std(h) => h.join(),
            Inner::Model { tid, result } => {
                op("thread.join", |st, me| {
                    if st.threads[tid].status == Status::Finished {
                        st.join_thread_view(me, tid);
                        Ok(())
                    } else {
                        Err(Blocked::Join(tid))
                    }
                });
                let boxed = result
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("loomish: joined thread left no result");
                Ok(*boxed.downcast::<T>().expect("loomish: join type mismatch"))
            }
        }
    }
}

/// Spawn a thread: a model thread inside a model run, a real OS thread
/// otherwise.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if rt::ctx().is_none() {
        return JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        };
    }
    let result: Arc<StdMutex<Option<Box<dyn Any + Send>>>> = Arc::new(StdMutex::new(None));
    let boxed: Box<dyn FnOnce() -> Box<dyn Any + Send> + Send> =
        Box::new(move || Box::new(f()) as Box<dyn Any + Send>);
    let tid = rt::model_spawn(boxed, Arc::clone(&result));
    JoinHandle {
        inner: Inner::Model { tid, result },
    }
}

/// Yield: a scheduling point with no memory effect under the model (gives
/// the explorer a preemption opportunity), `std::thread::yield_now`
/// otherwise.
pub fn yield_now() {
    if rt::ctx().is_none() {
        return std::thread::yield_now();
    }
    op("yield", |_st, _me| Ok(()));
}
