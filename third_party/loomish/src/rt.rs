//! Deterministic scheduler, DFS explorer, and the two memory models.
//!
//! # How an exploration runs
//!
//! Every call to [`Builder::check`] runs the model closure many times. Each
//! run ("execution") spawns one real OS thread per model thread, but the
//! scheduler serializes them completely: exactly one model thread holds the
//! *token* at any moment, and user code only runs while its thread holds
//! it. Every instrumented operation (atomic access, mutex, condvar, spawn,
//! join) is a *scheduling point*: after performing the operation under the
//! scheduler lock, the thread consults [`choice`] to decide which runnable
//! thread runs next. The sequence of choices made during an execution is
//! recorded; the explorer backtracks depth-first over the last choice with
//! an unexplored alternative, so the set of executions is exactly the set
//! of distinct schedules (bounded by [`Builder::preemption_bound`]).
//!
//! # Memory models
//!
//! *Sequentially-consistent-per-location* (default): every atomic location
//! holds a single current value; loads return it. This explores every
//! interleaving of operations but assumes each load sees the newest store —
//! it catches protocol-order bugs (e.g. scanning before snapshotting an
//! epoch) but not missing-fence bugs.
//!
//! *Ordering-sensitive* ([`Builder::ordering_sensitive`]): every location
//! keeps its full store history as a list of timestamped messages, each
//! carrying the view (location → minimum visible timestamp) its writer
//! published. Threads carry views; a load may return **any** message not
//! older than the thread's view for that location — the pick is itself a
//! DFS branch — so a store that is not ordered by a release/acquire or
//! SeqCst edge is genuinely allowed to be invisible, and a wrongly-relaxed
//! store shows up as a stale read in some explored execution. The rules:
//!
//! * `store(Release)` attaches the writer's current view to the message;
//!   `store(Relaxed)` attaches only the view captured by the writer's last
//!   `fence(Release)` (empty if none).
//! * `load(Acquire)` joins the message's view into the reader's view;
//!   `load(Relaxed)` only accumulates it into a pending set that a later
//!   `fence(Acquire)` promotes.
//! * RMWs always read the newest message (atomicity) and continue its
//!   release sequence (the new message inherits the old one's view).
//! * `SeqCst` is modeled as the access plus a global *SC view*, with a
//!   deliberate asymmetry. Only `fence(SeqCst)` performs the full two-way
//!   exchange (import the whole SC view, publish the thread's whole
//!   view): cross-location SC reasoning is the fence's job in C11, and
//!   keeping it exclusive is what lets a dropped fence be caught. A
//!   SeqCst *store or RMW* publishes only its own location into the SC
//!   view, and the view it attaches to its message is the thread's plain
//!   happens-before knowledge — release cumulativity forwards nothing
//!   about locations the thread never observed. A SeqCst *RMW* does
//!   import the whole SC view into its own thread (a full barrier for
//!   the executing core's later loads — the RCsc lowering of x86's
//!   `lock` prefix that `RetireList::pin` documents and relies on), but
//!   that import is local and does not flow onward through the message.
//!   A lone SeqCst *load* only gets the per-location SC constraint (it
//!   cannot read anything older than the SC view's newest message for
//!   that location).
//!
//! Mutexes carry a view handed from unlocker to the next locker; spawn
//! hands the parent's view to the child; join brings the child's final
//! view back. Condvars carry no view of their own — the mutex hand-off
//! provides the synchronization, as in real condvar protocols.
//!
//! # Timeouts and deadlocks
//!
//! `Condvar::wait_timeout` waiters are only "timed out" at *quiescence*
//! (no thread runnable, no notify possible): this keeps bounded-retry
//! loops finite while still modeling "time passes" — a waiter whose wakeup
//! depends on a timeout will get it, but only once the model shows no
//! notification can race it. If no thread is runnable, none can time out,
//! and not every thread has finished, the execution is reported as a
//! deadlock with the blocked thread statuses — this is how lost-wakeup
//! bugs surface.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrd};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once};

pub use std::sync::atomic::Ordering;

/// Timestamp of a message: its index in the location's message list.
type Ts = usize;

/// A view: per-location lower bound on the timestamps a thread (or a
/// message, or a mutex) may read. Indexed by location id; missing tail
/// entries are 0 ("anything visible").
pub(crate) type View = Vec<Ts>;

fn view_join(a: &mut View, b: &View) {
    if b.len() > a.len() {
        a.resize(b.len(), 0);
    }
    for (i, &t) in b.iter().enumerate() {
        if t > a[i] {
            a[i] = t;
        }
    }
}

fn view_get(v: &View, loc: usize) -> Ts {
    v.get(loc).copied().unwrap_or(0)
}

fn view_set(v: &mut View, loc: usize, ts: Ts) {
    if v.len() <= loc {
        v.resize(loc + 1, 0);
    }
    if ts > v[loc] {
        v[loc] = ts;
    }
}

/// One store in a location's modification order.
struct Msg {
    val: u64,
    /// View the writer published with this message (empty for a plain
    /// relaxed store with no preceding release fence).
    view: View,
}

struct Loc {
    messages: Vec<Msg>,
}

pub(crate) struct MemState {
    locs: Vec<Loc>,
    sc_view: View,
}

impl MemState {
    fn new() -> Self {
        MemState {
            locs: Vec::new(),
            sc_view: Vec::new(),
        }
    }

    fn alloc(&mut self, init: u64) -> usize {
        self.locs.push(Loc {
            messages: vec![Msg {
                val: init,
                view: Vec::new(),
            }],
        });
        self.locs.len() - 1
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar {
        cv: usize,
        mutex: usize,
        timeout: bool,
    },
    BlockedJoin(usize),
    Finished,
}

pub(crate) struct ThreadState {
    pub status: Status,
    /// Set when a `wait_timeout` waiter was woken by the quiescence rule
    /// rather than a notification; consumed by the wait call on return.
    pub timed_out: bool,
    view: View,
    /// View captured by the last `fence(Release)`; attached to subsequent
    /// relaxed stores (C11 fence-synchronization, writer half).
    rel_view: View,
    /// Join of the views of every message read by a relaxed load since
    /// the last `fence(Acquire)`; promoted into `view` by that fence
    /// (C11 fence-synchronization, reader half).
    acq_pending: View,
}

pub(crate) struct MutexState {
    pub locked_by: Option<usize>,
    view: View,
}

#[derive(Clone, Copy, Debug)]
struct Branch {
    chosen: usize,
    arity: usize,
}

pub(crate) struct ExecState {
    pub threads: Vec<ThreadState>,
    pub current: usize,
    pub mutexes: Vec<MutexState>,
    pub condvars: usize,
    pub ordering: bool,
    mem: MemState,
    prefix: Vec<Branch>,
    cursor: usize,
    record: Vec<Branch>,
    trace: Vec<(usize, &'static str)>,
    preemptions: usize,
    bound: Option<usize>,
    max_threads: usize,
    pub failure: Option<String>,
    pub aborting: bool,
    live: usize,
    done: bool,
    ops: usize,
    max_ops: usize,
}

impl ExecState {
    pub(crate) fn alloc_loc(&mut self, init: u64) -> usize {
        self.mem.alloc(init)
    }

    pub(crate) fn alloc_mutex(&mut self) -> usize {
        self.mutexes.push(MutexState {
            locked_by: None,
            view: Vec::new(),
        });
        self.mutexes.len() - 1
    }

    pub(crate) fn alloc_condvar(&mut self) -> usize {
        self.condvars += 1;
        self.condvars - 1
    }

    fn register_thread(&mut self, view: View) -> usize {
        assert!(
            self.threads.len() < self.max_threads,
            "loomish: more than {} model threads",
            self.max_threads
        );
        self.threads.push(ThreadState {
            status: Status::Runnable,
            timed_out: false,
            view,
            rel_view: Vec::new(),
            acq_pending: Vec::new(),
        });
        self.live += 1;
        self.threads.len() - 1
    }

    // ---- memory model ops (performed by thread `me`, token held) ----

    pub(crate) fn mem_load(&mut self, me: usize, loc: usize, ord: Ordering) -> u64 {
        if !self.ordering {
            return self.mem.locs[loc].messages.last().unwrap().val;
        }
        if ord == Ordering::SeqCst {
            // A lone SeqCst load only gets the per-location SC constraint
            // (it may not read anything older than the SC view's newest
            // message for *this* location). It does NOT import the whole
            // SC view — that cross-location edge requires a SeqCst RMW or
            // fence. Modeling it this way is what lets a dropped SeqCst
            // fence be caught even when the nearby loads stay SeqCst.
            let sc_ts = view_get(&self.mem.sc_view, loc);
            view_set(&mut self.threads[me].view, loc, sc_ts);
        }
        let min = view_get(&self.threads[me].view, loc);
        let n = self.mem.locs[loc].messages.len() - min;
        // Which message to read is itself an explored branch: any message
        // the thread's view admits is a legal outcome under relaxed memory.
        let ts = min + choice(self, n);
        view_set(&mut self.threads[me].view, loc, ts);
        let (val, mview) = {
            let m = &self.mem.locs[loc].messages[ts];
            (m.val, m.view.clone())
        };
        match ord {
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst => {
                view_join(&mut self.threads[me].view, &mview)
            }
            _ => view_join(&mut self.threads[me].acq_pending, &mview),
        }
        val
    }

    pub(crate) fn mem_store(&mut self, me: usize, loc: usize, val: u64, ord: Ordering) {
        if !self.ordering {
            let msgs = &mut self.mem.locs[loc].messages;
            msgs.last_mut().unwrap().val = val;
            return;
        }
        let ts = self.mem.locs[loc].messages.len();
        let view = match ord {
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => {
                self.threads[me].view.clone()
            }
            _ => self.threads[me].rel_view.clone(),
        };
        self.mem.locs[loc].messages.push(Msg { val, view });
        view_set(&mut self.threads[me].view, loc, ts);
        if ord == Ordering::SeqCst {
            // Per-location SC publication only (see `mem_rmw`): an SC
            // store is a release store that additionally participates in
            // the per-location SC order; it is not a fence.
            view_set(&mut self.mem.sc_view, loc, ts);
        }
    }

    /// Read-modify-write: always reads the newest message (atomicity) and
    /// continues its release sequence. Returns the old value.
    pub(crate) fn mem_rmw(
        &mut self,
        me: usize,
        loc: usize,
        f: impl FnOnce(u64) -> u64,
        ord: Ordering,
    ) -> u64 {
        if !self.ordering {
            let msgs = &mut self.mem.locs[loc].messages;
            let old = msgs.last().unwrap().val;
            msgs.last_mut().unwrap().val = f(old);
            return old;
        }
        let ts = self.mem.locs[loc].messages.len();
        let (old, prev_view) = {
            let m = self.mem.locs[loc].messages.last().unwrap();
            (m.val, m.view.clone())
        };
        match ord {
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst => {
                view_join(&mut self.threads[me].view, &prev_view)
            }
            _ => view_join(&mut self.threads[me].acq_pending, &prev_view),
        }
        // The view attached to the message is the thread's *happens-before*
        // knowledge only — writes it performed or acquired. The SC-view
        // import below is deliberately NOT part of it: a SeqCst RMW orders
        // its own thread's later accesses (full barrier on the executing
        // core), but it does not *observe* unrelated locations, so release
        // cumulativity forwards nothing about them to acquirers of this
        // message. (Attaching the imported view here is exactly what would
        // make a reclaimer's acquire-load inherit a reader's pin through an
        // unrelated writer and render real fences redundant in the model.)
        let mut view = match ord {
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => {
                self.threads[me].view.clone()
            }
            _ => self.threads[me].rel_view.clone(),
        };
        // Release sequence: an acquire reader of this message synchronizes
        // with the release store this RMW extends.
        view_join(&mut view, &prev_view);
        self.mem.locs[loc].messages.push(Msg { val: f(old), view });
        view_set(&mut self.threads[me].view, loc, ts);
        if ord == Ordering::SeqCst {
            // Reader-side RCsc: the RMW acts as a full barrier for *this*
            // thread's subsequent loads (x86 `lock` prefix; the property
            // `pin` documents), so import the whole SC view locally...
            let sc = self.mem.sc_view.clone();
            view_join(&mut self.threads[me].view, &sc);
            // ...but publish only this location into it. Making every
            // other SC participant's knowledge flow through an RMW is a
            // cross-location edge C11 reserves for `fence(SeqCst)`.
            view_set(&mut self.mem.sc_view, loc, ts);
        }
        old
    }

    pub(crate) fn mem_cas(
        &mut self,
        me: usize,
        loc: usize,
        expect: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let cur = self.mem.locs[loc].messages.last().unwrap().val;
        if cur == expect {
            Ok(self.mem_rmw(me, loc, |_| new, success))
        } else if !self.ordering {
            Err(cur)
        } else {
            // A failed CAS is a load of the newest message.
            let ts = self.mem.locs[loc].messages.len() - 1;
            view_set(&mut self.threads[me].view, loc, ts);
            let mview = self.mem.locs[loc].messages[ts].view.clone();
            match failure {
                Ordering::Acquire | Ordering::SeqCst => {
                    view_join(&mut self.threads[me].view, &mview)
                }
                _ => view_join(&mut self.threads[me].acq_pending, &mview),
            }
            Err(cur)
        }
    }

    pub(crate) fn mem_fence(&mut self, me: usize, ord: Ordering) {
        if !self.ordering {
            return;
        }
        match ord {
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst => {
                let pending = std::mem::take(&mut self.threads[me].acq_pending);
                view_join(&mut self.threads[me].view, &pending);
            }
            _ => {}
        }
        if ord == Ordering::SeqCst {
            let sc = self.mem.sc_view.clone();
            view_join(&mut self.threads[me].view, &sc);
            let tv = self.threads[me].view.clone();
            view_join(&mut self.mem.sc_view, &tv);
        }
        match ord {
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => {
                self.threads[me].rel_view = self.threads[me].view.clone();
            }
            _ => {}
        }
    }

    /// Model of `membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED)`: the kernel
    /// guarantees that when the call returns, every thread of the process
    /// has executed a full memory barrier at some point after the call
    /// began. The scheduler serializes all threads, so every other thread
    /// currently sits *between* two of its operations — exactly the
    /// program points the expedited IPI lands on — and injecting a SeqCst
    /// fence there is a faithful (single-linearization-point) model.
    ///
    /// Order matters and mirrors the syscall's barrier pairing: the caller
    /// fences first (its pre-call knowledge — e.g. the epoch snapshot's
    /// acquired view — enters the global SC view), then every other thread
    /// fences (importing that knowledge and publishing its own plain
    /// stores, the store-buffer flush of the IPI), then the caller fences
    /// again (importing what the threads published, so its subsequent
    /// loads — the stripe scan — cannot miss them).
    pub(crate) fn mem_membarrier(&mut self, me: usize) {
        if !self.ordering {
            return;
        }
        self.mem_fence(me, Ordering::SeqCst);
        for t in 0..self.threads.len() {
            if t != me && self.threads[t].status != Status::Finished {
                self.mem_fence(t, Ordering::SeqCst);
            }
        }
        self.mem_fence(me, Ordering::SeqCst);
    }

    pub(crate) fn mutex_acquire_view(&mut self, me: usize, mid: usize) {
        if self.ordering {
            let v = self.mutexes[mid].view.clone();
            view_join(&mut self.threads[me].view, &v);
        }
    }

    pub(crate) fn mutex_release_view(&mut self, me: usize, mid: usize) {
        if self.ordering {
            let v = self.threads[me].view.clone();
            view_join(&mut self.mutexes[mid].view, &v);
        }
    }

    pub(crate) fn join_thread_view(&mut self, me: usize, target: usize) {
        if self.ordering {
            let v = self.threads[target].view.clone();
            view_join(&mut self.threads[me].view, &v);
        }
    }
}

pub(crate) struct Shared {
    pub state: StdMutex<ExecState>,
    pub cv: StdCondvar,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

#[derive(Clone)]
pub(crate) struct Ctx {
    pub shared: Arc<Shared>,
    pub tid: usize,
    pub gen: u64,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn ctx() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Model thread id of the calling thread (`None` outside a model run).
/// Exposed so thread-keyed data structures (e.g. striped counters keyed by
/// a process-global thread counter) can substitute a per-execution-stable
/// key under the model.
pub fn model_thread_id() -> Option<usize> {
    ctx().map(|c| c.tid)
}

/// Payload used to unwind model threads when an execution aborts (failure
/// observed or exploration cancelled). Silenced by the panic hook.
struct AbortToken;

static HOOK: Once = Once::new();

fn install_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Model-thread panics are reported once, as the counterexample,
            // by the explorer on the test thread — not per-thread here.
            if info.payload().is::<AbortToken>() || ctx().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

fn lock_state(shared: &Shared) -> StdMutexGuard<'_, ExecState> {
    // A panicking model thread may poison the lock; the explorer and the
    // surviving threads still need the state to tear the execution down.
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

fn payload_to_string(p: Box<dyn Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

fn fail(st: &mut ExecState, shared: &Shared, msg: String) {
    if st.failure.is_none() {
        st.failure = Some(msg);
    }
    st.aborting = true;
    shared.cv.notify_all();
}

fn abort_check(st: &ExecState) {
    if st.aborting {
        std::panic::panic_any(AbortToken);
    }
}

/// Consume one DFS choice with `arity` alternatives. Alternative 0 is the
/// "default" (keep running the current thread / read the oldest visible
/// message); the explorer backtracks over the rest.
fn choice(st: &mut ExecState, arity: usize) -> usize {
    if arity <= 1 {
        return 0;
    }
    let c = if st.cursor < st.prefix.len() {
        let b = st.prefix[st.cursor];
        assert!(
            b.chosen < arity,
            "loomish: nondeterministic model (replay arity {} <= recorded choice {}); \
             model closures must not depend on wall-clock time, randomness, or \
             process-global mutable state",
            arity,
            b.chosen
        );
        b.chosen
    } else {
        0
    };
    st.cursor += 1;
    st.record.push(Branch { chosen: c, arity });
    c
}

/// Wake a condvar waiter (by notification or quiescence timeout): it next
/// needs its mutex back, so it becomes runnable only if the mutex is free.
pub(crate) fn wake_condvar_waiter(st: &mut ExecState, t: usize, timed_out: bool) {
    let Status::BlockedCondvar { mutex, .. } = st.threads[t].status else {
        panic!("loomish: waking a non-waiting thread");
    };
    st.threads[t].timed_out = timed_out;
    st.threads[t].status = if st.mutexes[mutex].locked_by.is_none() {
        Status::Runnable
    } else {
        Status::BlockedMutex(mutex)
    };
}

/// After an operation (or block, or finish) by `me`: pick who runs next.
/// Called with the state lock held.
fn switch_after(shared: &Shared, st: &mut ExecState, me: usize) {
    loop {
        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&i| st.threads[i].status == Status::Runnable)
            .collect();
        if runnable.is_empty() {
            // Quiescence: let a wait_timeout fire — "time passes" exactly
            // when no notification can race the timeout.
            let timeouts: Vec<usize> = (0..st.threads.len())
                .filter(|&i| {
                    matches!(
                        st.threads[i].status,
                        Status::BlockedCondvar { timeout: true, .. }
                    )
                })
                .collect();
            if !timeouts.is_empty() {
                let c = choice(st, timeouts.len());
                wake_condvar_waiter(st, timeouts[c], true);
                continue;
            }
            if st.live == 0 {
                st.done = true;
                shared.cv.notify_all();
                return;
            }
            let statuses: Vec<(usize, Status)> = (0..st.threads.len())
                .filter(|&i| st.threads[i].status != Status::Finished)
                .map(|i| (i, st.threads[i].status))
                .collect();
            fail(
                st,
                shared,
                format!("deadlock: every live thread is blocked: {statuses:?}"),
            );
            return;
        }
        let me_runnable = st.threads[me].status == Status::Runnable;
        let budget_left = st.bound.is_none_or(|b| st.preemptions < b);
        let candidates: Vec<usize> = if me_runnable && !budget_left {
            vec![me]
        } else if me_runnable {
            std::iter::once(me)
                .chain(runnable.iter().copied().filter(|&t| t != me))
                .collect()
        } else {
            runnable
        };
        let next = candidates[choice(st, candidates.len())];
        if me_runnable && next != me {
            st.preemptions += 1;
        }
        st.current = next;
        if next != me {
            shared.cv.notify_all();
        }
        return;
    }
}

/// Block until this thread holds the token and is runnable.
fn park<'a>(
    shared: &'a Shared,
    mut st: StdMutexGuard<'a, ExecState>,
    me: usize,
) -> StdMutexGuard<'a, ExecState> {
    loop {
        abort_check(&st);
        if st.current == me && st.threads[me].status == Status::Runnable {
            return st;
        }
        st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

pub(crate) enum Blocked {
    Mutex(usize),
    Condvar {
        cv: usize,
        mutex: usize,
        timeout: bool,
    },
    Join(usize),
}

/// Run one instrumented operation as the calling model thread: perform it
/// under the scheduler lock, then hand the token to the next scheduled
/// thread. `f` may return `Err(Blocked)` to block; it is re-run when the
/// thread is woken (e.g. a mutex retry after an unlock).
pub(crate) fn op<R>(
    label: &'static str,
    mut f: impl FnMut(&mut ExecState, usize) -> Result<R, Blocked>,
) -> R {
    let cx = ctx().expect("loomish: instrumented op outside a model run");
    let shared = cx.shared.clone();
    let me = cx.tid;
    let mut st = lock_state(&shared);
    loop {
        abort_check(&st);
        st.ops += 1;
        if st.ops > st.max_ops {
            let msg = format!(
                "op budget exceeded ({} ops): unbounded loop in the model?",
                st.max_ops
            );
            fail(&mut st, &shared, msg);
            abort_check(&st);
        }
        st.trace.push((me, label));
        match f(&mut st, me) {
            Ok(r) => {
                switch_after(&shared, &mut st, me);
                let _st = park(&shared, st, me);
                return r;
            }
            Err(b) => {
                st.threads[me].status = match b {
                    Blocked::Mutex(m) => Status::BlockedMutex(m),
                    Blocked::Condvar { cv, mutex, timeout } => {
                        Status::BlockedCondvar { cv, mutex, timeout }
                    }
                    Blocked::Join(t) => Status::BlockedJoin(t),
                };
                switch_after(&shared, &mut st, me);
                st = park(&shared, st, me);
            }
        }
    }
}

/// Direct state access without a scheduling point, for operations that are
/// invisible to other threads (thread registration at spawn). Must only be
/// called while holding the token.
pub(crate) fn with_state_direct<R>(f: impl FnOnce(&mut ExecState, usize) -> R) -> R {
    let cx = ctx().expect("loomish: direct state access outside a model run");
    let mut st = lock_state(&cx.shared);
    abort_check(&st);
    f(&mut st, cx.tid)
}

/// Wake threads blocked on mutex `mid` (called from the unlock op).
pub(crate) fn wake_mutex_waiters(st: &mut ExecState, mid: usize) {
    for i in 0..st.threads.len() {
        if st.threads[i].status == Status::BlockedMutex(mid) {
            st.threads[i].status = Status::Runnable;
        }
    }
}

/// Consume one DFS choice from inside an op closure (e.g. picking which
/// condvar waiter a `notify_one` wakes).
pub(crate) fn op_choice(st: &mut ExecState, arity: usize) -> usize {
    choice(st, arity)
}

static EXEC_GEN: StdAtomicU64 = StdAtomicU64::new(0);

/// Resolve a sync object's per-execution id, allocating on first use in
/// this execution. Ids are stored generation-tagged in the object so stale
/// ids from earlier executions (or earlier models) are never reused.
pub(crate) fn resolve_id(
    tag: &StdAtomicU64,
    st: &mut ExecState,
    gen: u64,
    alloc: impl FnOnce(&mut ExecState) -> usize,
) -> usize {
    let packed = tag.load(StdOrd::Relaxed);
    if packed != u64::MAX && (packed >> 32) == (gen & 0xffff_ffff) {
        return (packed & 0xffff_ffff) as usize;
    }
    let id = alloc(st);
    tag.store(((gen & 0xffff_ffff) << 32) | id as u64, StdOrd::Relaxed);
    id
}

fn spawn_model_thread(
    shared: Arc<Shared>,
    gen: u64,
    tid: usize,
    f: Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>,
    result: Arc<StdMutex<Option<Box<dyn Any + Send>>>>,
) {
    let body_shared = Arc::clone(&shared);
    let handle = std::thread::Builder::new()
        .name(format!("loomish-{tid}"))
        .spawn(move || {
            CURRENT.with(|c| {
                *c.borrow_mut() = Some(Ctx {
                    shared: Arc::clone(&body_shared),
                    tid,
                    gen,
                })
            });
            let r = catch_unwind(AssertUnwindSafe(|| {
                // Wait to be scheduled before running any user code.
                let st = lock_state(&body_shared);
                drop(park(&body_shared, st, tid));
                f()
            }));
            let panicked = match r {
                Ok(val) => {
                    *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(val);
                    None
                }
                Err(p) if p.is::<AbortToken>() => None,
                Err(p) => Some(payload_to_string(p)),
            };
            // Finish: mark done, wake joiners, schedule someone else.
            let mut st = lock_state(&body_shared);
            st.threads[tid].status = Status::Finished;
            st.live -= 1;
            if let Some(msg) = panicked {
                fail(&mut st, &body_shared, msg);
            }
            for i in 0..st.threads.len() {
                if st.threads[i].status == Status::BlockedJoin(tid) {
                    st.threads[i].status = Status::Runnable;
                }
            }
            // Even while aborting we must keep handing the token on so
            // every thread unwinds and `live` reaches zero.
            switch_after(&body_shared, &mut st, tid);
        })
        .expect("loomish: failed to spawn model thread");
    shared
        .os_handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
}

/// Spawn a new model thread (called from `thread::spawn` inside a model).
pub(crate) fn model_spawn(
    f: Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>,
    result: Arc<StdMutex<Option<Box<dyn Any + Send>>>>,
) -> usize {
    let cx = ctx().expect("loomish: model_spawn outside a model run");
    // Registration is not a scheduling point: the child only becomes
    // observable at the parent's next instrumented op, and it cannot run
    // before that (the parent holds the token).
    let tid = with_state_direct(|st, me| {
        let view = if st.ordering {
            st.threads[me].view.clone()
        } else {
            Vec::new()
        };
        st.register_thread(view)
    });
    spawn_model_thread(Arc::clone(&cx.shared), cx.gen, tid, f, result);
    tid
}

/// Result of a successful exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct executions (schedules × read choices) explored.
    pub executions: usize,
}

/// A failing execution: the first schedule on which the model panicked,
/// asserted, or deadlocked.
#[derive(Debug)]
pub struct Counterexample {
    /// Executions run up to and including the failing one.
    pub executions: usize,
    /// Panic/assertion/deadlock message.
    pub message: String,
    /// Tail of the per-thread operation trace of the failing execution.
    pub trace: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "counterexample after {} executions: {}\nfailing schedule (tail):\n{}",
            self.executions, self.message, self.trace
        )
    }
}

struct ExecOutcome {
    record: Vec<Branch>,
    failure: Option<String>,
    trace: Vec<(usize, &'static str)>,
}

/// Configures and runs an exploration. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct Builder {
    preemption_bound: Option<usize>,
    ordering_sensitive: bool,
    max_executions: usize,
    max_ops: usize,
    max_threads: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: Some(4),
            ordering_sensitive: false,
            max_executions: 2_000_000,
            max_ops: 50_000,
            max_threads: 5,
        }
    }
}

impl Builder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound on *preemptive* context switches per execution (switching
    /// away from a thread that could have kept running). Switches at
    /// blocking points are always free. `None` = unbounded (full DFS).
    /// Default 4 — empirically enough to expose every bug a handful of
    /// extra preemptions would (CHESS-style small-bound hypothesis).
    pub fn preemption_bound(mut self, bound: Option<usize>) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Enable the ordering-sensitive (release/acquire vs relaxed) memory
    /// model. Default is sequentially-consistent-per-location.
    pub fn ordering_sensitive(mut self, on: bool) -> Self {
        self.ordering_sensitive = on;
        self
    }

    /// Abort (panic) if the state space exceeds this many executions.
    pub fn max_executions(mut self, n: usize) -> Self {
        self.max_executions = n;
        self
    }

    /// Maximum model threads alive at once (including the main closure).
    pub fn max_threads(mut self, n: usize) -> Self {
        self.max_threads = n;
        self
    }

    fn run_one(&self, prefix: &[Branch], f: Arc<dyn Fn() + Send + Sync>) -> ExecOutcome {
        let gen = EXEC_GEN.fetch_add(1, StdOrd::Relaxed) + 1;
        let shared = Arc::new(Shared {
            state: StdMutex::new(ExecState {
                threads: Vec::new(),
                current: 0,
                mutexes: Vec::new(),
                condvars: 0,
                ordering: self.ordering_sensitive,
                mem: MemState::new(),
                prefix: prefix.to_vec(),
                cursor: 0,
                record: Vec::new(),
                trace: Vec::new(),
                preemptions: 0,
                bound: self.preemption_bound,
                max_threads: self.max_threads,
                failure: None,
                aborting: false,
                live: 0,
                done: false,
                ops: 0,
                max_ops: self.max_ops,
            }),
            cv: StdCondvar::new(),
            os_handles: StdMutex::new(Vec::new()),
        });
        {
            let mut st = lock_state(&shared);
            st.register_thread(Vec::new());
            st.current = 0;
        }
        let result = Arc::new(StdMutex::new(None));
        spawn_model_thread(
            Arc::clone(&shared),
            gen,
            0,
            Box::new(move || {
                f();
                Box::new(())
            }),
            result,
        );
        let outcome = {
            let mut st = lock_state(&shared);
            while !st.done {
                st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            ExecOutcome {
                record: std::mem::take(&mut st.record),
                failure: st.failure.take(),
                trace: std::mem::take(&mut st.trace),
            }
        };
        let handles =
            std::mem::take(&mut *shared.os_handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
        outcome
    }

    /// Explore every schedule of `f` (up to the preemption bound). Returns
    /// the exploration report, or the first counterexample found.
    pub fn check<F>(&self, f: F) -> Result<Report, Counterexample>
    where
        F: Fn() + Send + Sync + 'static,
    {
        assert!(
            ctx().is_none(),
            "loomish: nested model runs are not supported"
        );
        install_hook();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut prefix: Vec<Branch> = Vec::new();
        let mut executions = 0usize;
        loop {
            executions += 1;
            assert!(
                executions <= self.max_executions,
                "loomish: state space exceeds max_executions={} — shrink the model",
                self.max_executions
            );
            let out = self.run_one(&prefix, Arc::clone(&f));
            if let Some(message) = out.failure {
                let tail: Vec<String> = out
                    .trace
                    .iter()
                    .rev()
                    .take(40)
                    .rev()
                    .map(|(tid, label)| format!("  t{tid} {label}"))
                    .collect();
                return Err(Counterexample {
                    executions,
                    message,
                    trace: tail.join("\n"),
                });
            }
            // Depth-first backtrack: bump the deepest choice that still
            // has an unexplored alternative.
            let mut rec = out.record;
            let mut advanced = false;
            while let Some(b) = rec.pop() {
                if b.chosen + 1 < b.arity {
                    rec.push(Branch {
                        chosen: b.chosen + 1,
                        arity: b.arity,
                    });
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return Ok(Report { executions });
            }
            prefix = rec;
        }
    }
}

/// Explore every schedule of `f` with the default configuration, panicking
/// on the first counterexample. Returns the exploration [`Report`] so
/// callers can assert on / print explored-interleaving counts.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default()
        .check(f)
        .unwrap_or_else(|cx| panic!("loomish: {cx}"))
}
