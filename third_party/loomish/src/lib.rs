//! loomish — a vendored, minimal loom-style concurrency model checker.
//!
//! Wrap a concurrent protocol's shared state in the [`sync`]/[`thread`]
//! primitives, then run a closure that builds the state, spawns model
//! threads and asserts invariants under [`model`] (or [`Builder::check`]
//! for configuration). The checker runs the closure once per *schedule*,
//! exploring context-switch points depth-first with bounded preemptions;
//! an assertion failure, panic, or deadlock on any schedule is reported as
//! a [`Counterexample`] carrying the failing interleaving.
//!
//! Two memory models are available: sequentially-consistent-per-location
//! (default — catches protocol-order races) and an ordering-sensitive mode
//! ([`Builder::ordering_sensitive`]) that models Acquire/Release vs
//! Relaxed visibility with per-thread views, so a wrongly-relaxed store or
//! a dropped `SeqCst` fence produces a real stale read in some explored
//! execution. See the `rt` module documentation for the full semantics.
//!
//! Outside a model run, every primitive is a passthrough to its `std`
//! counterpart — crates can route all their synchronization through a
//! facade over this crate and flip it on with a feature flag without
//! changing runtime behavior.
//!
//! Model closures must be deterministic: no wall-clock time, randomness,
//! or process-global mutable state (create all shared state inside the
//! closure; key per-thread data off [`thread::model_thread_id`]).

mod rt;
pub mod sync;
pub mod thread;

pub use rt::{model, Builder, Counterexample, Report};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use sync::{fence, AtomicU64, AtomicUsize, Condvar, Mutex, Ordering};

    /// Two threads increment a shared counter through a mutex: the model
    /// must show exactly 2 on every schedule, and must explore more than
    /// one schedule.
    #[test]
    fn mutex_counter_exact() {
        let report = model(|| {
            let n = Arc::new(Mutex::new(0u64));
            let h: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        *n.lock().unwrap() += 1;
                    })
                })
                .collect();
            for h in h {
                h.join().unwrap();
            }
            assert_eq!(*n.lock().unwrap(), 2);
        });
        assert!(
            report.executions > 1,
            "only {} executions",
            report.executions
        );
    }

    /// Unsynchronized read-modify-write *without* atomicity (load; add;
    /// store) must lose an update on some schedule.
    #[test]
    fn torn_increment_caught() {
        let err = Builder::new()
            .check(|| {
                let n = Arc::new(AtomicU64::new(0));
                let h: Vec<_> = (0..2)
                    .map(|_| {
                        let n = Arc::clone(&n);
                        thread::spawn(move || {
                            let v = n.load(Ordering::SeqCst);
                            n.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in h {
                    h.join().unwrap();
                }
                assert_eq!(n.load(Ordering::SeqCst), 2);
            })
            .expect_err("lost update not found");
        assert!(
            err.message.contains("assertion"),
            "message: {}",
            err.message
        );
    }

    /// The same increment with fetch_add is atomic and passes.
    #[test]
    fn fetch_add_increment_passes() {
        model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let h: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in h {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
    }

    /// Store-buffering litmus (Dekker core): with SeqCst on both sides,
    /// both threads reading 0 is forbidden — must hold in the
    /// ordering-sensitive model.
    #[test]
    fn dekker_seqcst_passes_ordering_mode() {
        let report = Builder::new()
            .ordering_sensitive(true)
            .check(|| {
                let x = Arc::new(AtomicU64::new(0));
                let y = Arc::new(AtomicU64::new(0));
                let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
                let a = thread::spawn(move || {
                    x2.store(1, Ordering::SeqCst);
                    y2.load(Ordering::SeqCst)
                });
                let (x3, y3) = (Arc::clone(&x), Arc::clone(&y));
                let b = thread::spawn(move || {
                    y3.store(1, Ordering::SeqCst);
                    x3.load(Ordering::SeqCst)
                });
                let ra = a.join().unwrap();
                let rb = b.join().unwrap();
                assert!(
                    ra == 1 || rb == 1,
                    "store buffering: both sides read 0 under SeqCst"
                );
            })
            .unwrap();
        assert!(report.executions > 1);
    }

    /// Store-buffering with Release/Acquire only: both-read-0 is allowed
    /// by the architecture, so the checker must find it. This is the test
    /// that proves the ordering-sensitive mode actually distinguishes
    /// SeqCst from weaker orderings.
    #[test]
    fn dekker_release_acquire_caught() {
        Builder::new()
            .ordering_sensitive(true)
            .check(|| {
                let x = Arc::new(AtomicU64::new(0));
                let y = Arc::new(AtomicU64::new(0));
                let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
                let a = thread::spawn(move || {
                    x2.store(1, Ordering::Release);
                    y2.load(Ordering::Acquire)
                });
                let (x3, y3) = (Arc::clone(&x), Arc::clone(&y));
                let b = thread::spawn(move || {
                    y3.store(1, Ordering::Release);
                    x3.load(Ordering::Acquire)
                });
                let ra = a.join().unwrap();
                let rb = b.join().unwrap();
                assert!(ra == 1 || rb == 1, "both sides read 0");
            })
            .expect_err("release/acquire store buffering not caught");
    }

    /// Message passing with Release/Acquire: the flag's acquire load
    /// synchronizes with the release store, so the data is visible.
    #[test]
    fn message_passing_release_acquire_passes() {
        Builder::new()
            .ordering_sensitive(true)
            .check(|| {
                let data = Arc::new(AtomicU64::new(0));
                let flag = Arc::new(AtomicU64::new(0));
                let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
                let w = thread::spawn(move || {
                    d2.store(42, Ordering::Relaxed);
                    f2.store(1, Ordering::Release);
                });
                let (d3, f3) = (Arc::clone(&data), Arc::clone(&flag));
                let r = thread::spawn(move || {
                    if f3.load(Ordering::Acquire) == 1 {
                        assert_eq!(d3.load(Ordering::Relaxed), 42, "stale data after acquire");
                    }
                });
                w.join().unwrap();
                r.join().unwrap();
            })
            .unwrap();
    }

    /// Message passing with a Relaxed flag store: the reader may see the
    /// flag but stale data — must be caught in ordering mode.
    #[test]
    fn message_passing_relaxed_caught() {
        Builder::new()
            .ordering_sensitive(true)
            .check(|| {
                let data = Arc::new(AtomicU64::new(0));
                let flag = Arc::new(AtomicU64::new(0));
                let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
                let w = thread::spawn(move || {
                    d2.store(42, Ordering::Relaxed);
                    f2.store(1, Ordering::Relaxed); // BUG: should be Release
                });
                let (d3, f3) = (Arc::clone(&data), Arc::clone(&flag));
                let r = thread::spawn(move || {
                    if f3.load(Ordering::Acquire) == 1 {
                        assert_eq!(d3.load(Ordering::Relaxed), 42, "stale data");
                    }
                });
                w.join().unwrap();
                r.join().unwrap();
            })
            .expect_err("relaxed message passing not caught");
    }

    /// Fence-based message passing: release fence before a relaxed store,
    /// acquire fence after a relaxed load — C11 fence synchronization.
    #[test]
    fn message_passing_fences_pass() {
        Builder::new()
            .ordering_sensitive(true)
            .check(|| {
                let data = Arc::new(AtomicU64::new(0));
                let flag = Arc::new(AtomicU64::new(0));
                let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
                let w = thread::spawn(move || {
                    d2.store(42, Ordering::Relaxed);
                    fence(Ordering::Release);
                    f2.store(1, Ordering::Relaxed);
                });
                let (d3, f3) = (Arc::clone(&data), Arc::clone(&flag));
                let r = thread::spawn(move || {
                    if f3.load(Ordering::Relaxed) == 1 {
                        fence(Ordering::Acquire);
                        assert_eq!(d3.load(Ordering::Relaxed), 42, "stale data after fences");
                    }
                });
                w.join().unwrap();
                r.join().unwrap();
            })
            .unwrap();
    }

    /// A waiter that is never notified deadlocks; the checker must report
    /// it rather than hang (lost-wakeup detection).
    #[test]
    fn lost_wakeup_reported_as_deadlock() {
        let err = Builder::new()
            .check(|| {
                let flag = Arc::new(AtomicU64::new(0));
                let pair = Arc::new((Mutex::new(()), Condvar::new()));
                let (f2, p2) = (Arc::clone(&flag), Arc::clone(&pair));
                let waiter = thread::spawn(move || {
                    let (m, cv) = &*p2;
                    // BUG: predicate checked before taking the mutex — the
                    // notification can land between the check and the
                    // wait, and is then lost forever.
                    if f2.load(Ordering::SeqCst) == 0 {
                        let g = m.lock().unwrap();
                        drop(cv.wait(g).unwrap());
                    }
                    assert_eq!(f2.load(Ordering::SeqCst), 1);
                });
                let (f3, p3) = (Arc::clone(&flag), Arc::clone(&pair));
                let notifier = thread::spawn(move || {
                    let (_m, cv) = &*p3;
                    f3.store(1, Ordering::SeqCst);
                    cv.notify_one();
                });
                waiter.join().unwrap();
                notifier.join().unwrap();
            })
            .expect_err("lost wakeup not detected");
        assert!(err.message.contains("deadlock"), "message: {}", err.message);
    }

    /// The standard predicate-loop condvar protocol passes, including the
    /// wait_timeout variant (timeouts fire only at quiescence).
    #[test]
    fn condvar_predicate_loop_passes() {
        let report = model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let waiter = thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut ready = m.lock().unwrap();
                while !*ready {
                    let (g, _timed_out) = cv
                        .wait_timeout(ready, std::time::Duration::from_millis(50))
                        .unwrap();
                    ready = g;
                }
            });
            let p3 = Arc::clone(&pair);
            let notifier = thread::spawn(move || {
                let (m, cv) = &*p3;
                *m.lock().unwrap() = true;
                cv.notify_one();
            });
            waiter.join().unwrap();
            notifier.join().unwrap();
        });
        assert!(report.executions > 1);
    }

    /// Exploration is deterministic: the same model explores the same
    /// number of executions every time.
    #[test]
    fn deterministic_execution_count() {
        let run = || {
            Builder::new()
                .check(|| {
                    let n = Arc::new(AtomicUsize::new(0));
                    let h: Vec<_> = (0..2)
                        .map(|_| {
                            let n = Arc::clone(&n);
                            thread::spawn(move || {
                                n.fetch_add(1, Ordering::SeqCst);
                            })
                        })
                        .collect();
                    for h in h {
                        h.join().unwrap();
                    }
                })
                .unwrap()
                .executions
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a > 1);
    }

    /// compare_exchange: two CAS-guarded claims — exactly one wins.
    #[test]
    fn cas_single_winner() {
        model(|| {
            let slot = Arc::new(AtomicU64::new(0));
            let wins = Arc::new(AtomicU64::new(0));
            let h: Vec<_> = (1..=2)
                .map(|id| {
                    let slot = Arc::clone(&slot);
                    let wins = Arc::clone(&wins);
                    thread::spawn(move || {
                        if slot
                            .compare_exchange(0, id, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            wins.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in h {
                h.join().unwrap();
            }
            assert_eq!(wins.load(Ordering::SeqCst), 1);
        });
    }

    /// Passthrough sanity: outside a model run the primitives behave as
    /// std (used by the production builds of the facade).
    #[test]
    fn passthrough_outside_model() {
        let n = AtomicU64::new(1);
        assert_eq!(n.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(n.load(Ordering::Acquire), 3);
        let m = Mutex::new(5);
        {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        assert_eq!(*m.lock().unwrap(), 6);
        let h = thread::spawn(|| 7);
        assert_eq!(h.join().unwrap(), 7);
        let cv = Condvar::new();
        let g = m.lock().unwrap();
        let (g, r) = cv
            .wait_timeout(g, std::time::Duration::from_millis(1))
            .unwrap();
        assert!(r.timed_out());
        assert_eq!(*g, 6);
    }
}
