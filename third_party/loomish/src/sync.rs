//! Instrumented drop-in replacements for `std::sync` primitives.
//!
//! Outside a model run every type here is a thin passthrough to the real
//! std primitive, so crates can be built with their `loomish` feature
//! enabled and still behave identically in ordinary tests and binaries.
//! Inside [`crate::model`] / [`crate::Builder::check`], every operation is
//! a scheduling point executed under the deterministic scheduler, and
//! atomic accesses go through the selected memory model (see `crate::rt`
//! module docs).

use crate::rt::{self, op, op_choice, resolve_id, with_state_direct, Blocked, ExecState};
use std::sync::atomic::{
    AtomicBool as StdAtomicBool, AtomicPtr as StdAtomicPtr, AtomicU64 as StdAtomicU64,
    AtomicUsize as StdAtomicUsize, Ordering as StdOrd,
};
use std::sync::{Condvar as StdCondvar, LockResult, Mutex as StdMutex};

pub use std::sync::atomic::Ordering;

/// An atomic memory fence. Instrumented under a model run, the real
/// `std::sync::atomic::fence` otherwise.
pub fn fence(ord: Ordering) {
    assert!(ord != Ordering::Relaxed, "fence(Relaxed) is not allowed");
    if rt::ctx().is_some() {
        op("fence", |st, me| {
            st.mem_fence(me, ord);
            Ok(())
        })
    } else {
        std::sync::atomic::fence(ord);
    }
}

/// Process-wide expedited barrier: the model of
/// `membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED)`. Inside a model run it
/// injects a SeqCst-fence effect into every model thread at the current
/// scheduling point (see `ExecState::mem_membarrier` for why that is a
/// faithful model of the syscall). Outside a model run it is a no-op:
/// production code must issue the real syscall itself — the passthrough
/// here exists only so instrumented code can be exercised by ordinary
/// (non-model) tests, which route their barrier through the real kernel.
pub fn membarrier() {
    if rt::ctx().is_some() {
        op("membarrier", |st, me| {
            st.mem_membarrier(me);
            Ok(())
        })
    }
}

/// Generates an instrumented integer atomic wrapping std atomic `$std`
/// with value type `$t`, converting through u64 for the model.
macro_rules! int_atomic {
    ($name:ident, $std:ident, $t:ty) => {
        pub struct $name {
            v: $std,
            /// Generation-tagged model location id (u64::MAX = unassigned).
            tag: StdAtomicU64,
        }

        impl $name {
            pub const fn new(v: $t) -> Self {
                Self {
                    v: $std::new(v),
                    tag: StdAtomicU64::new(u64::MAX),
                }
            }

            fn loc(&self, st: &mut ExecState) -> usize {
                let init = self.v.load(StdOrd::Relaxed) as u64;
                let gen = rt::ctx().unwrap().gen;
                resolve_id(&self.tag, st, gen, |st| st.alloc_loc(init))
            }

            pub fn load(&self, ord: Ordering) -> $t {
                if rt::ctx().is_none() {
                    return self.v.load(ord);
                }
                op("atomic.load", |st, me| {
                    let loc = self.loc(st);
                    Ok(st.mem_load(me, loc, ord) as $t)
                })
            }

            pub fn store(&self, val: $t, ord: Ordering) {
                if rt::ctx().is_none() {
                    return self.v.store(val, ord);
                }
                op("atomic.store", |st, me| {
                    let loc = self.loc(st);
                    st.mem_store(me, loc, val as u64, ord);
                    Ok(())
                });
                self.v.store(val, StdOrd::Relaxed);
            }

            pub fn swap(&self, val: $t, ord: Ordering) -> $t {
                self.rmw(move |_| val, ord)
            }

            pub fn fetch_add(&self, val: $t, ord: Ordering) -> $t {
                if rt::ctx().is_none() {
                    return self.v.fetch_add(val, ord);
                }
                self.rmw(move |old| old.wrapping_add(val), ord)
            }

            pub fn fetch_sub(&self, val: $t, ord: Ordering) -> $t {
                if rt::ctx().is_none() {
                    return self.v.fetch_sub(val, ord);
                }
                self.rmw(move |old| old.wrapping_sub(val), ord)
            }

            pub fn fetch_or(&self, val: $t, ord: Ordering) -> $t {
                if rt::ctx().is_none() {
                    return self.v.fetch_or(val, ord);
                }
                self.rmw(move |old| old | val, ord)
            }

            pub fn fetch_and(&self, val: $t, ord: Ordering) -> $t {
                if rt::ctx().is_none() {
                    return self.v.fetch_and(val, ord);
                }
                self.rmw(move |old| old & val, ord)
            }

            pub fn fetch_max(&self, val: $t, ord: Ordering) -> $t {
                if rt::ctx().is_none() {
                    return self.v.fetch_max(val, ord);
                }
                self.rmw(move |old| old.max(val), ord)
            }

            fn rmw(&self, f: impl Fn($t) -> $t, ord: Ordering) -> $t {
                if rt::ctx().is_none() {
                    // std has no generic RMW; emulate with a CAS loop.
                    let mut cur = self.v.load(StdOrd::Relaxed);
                    loop {
                        match self
                            .v
                            .compare_exchange_weak(cur, f(cur), ord, StdOrd::Relaxed)
                        {
                            Ok(old) => return old,
                            Err(now) => cur = now,
                        }
                    }
                }
                let old = op("atomic.rmw", |st, me| {
                    let loc = self.loc(st);
                    Ok(st.mem_rmw(me, loc, |old| f(old as $t) as u64, ord) as $t)
                });
                self.v.store(f(old), StdOrd::Relaxed);
                old
            }

            pub fn compare_exchange(
                &self,
                current: $t,
                new: $t,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$t, $t> {
                if rt::ctx().is_none() {
                    return self.v.compare_exchange(current, new, success, failure);
                }
                let r = op("atomic.cas", |st, me| {
                    let loc = self.loc(st);
                    Ok(st
                        .mem_cas(me, loc, current as u64, new as u64, success, failure)
                        .map(|v| v as $t)
                        .map_err(|v| v as $t))
                });
                if r.is_ok() {
                    self.v.store(new, StdOrd::Relaxed);
                }
                r
            }

            pub fn compare_exchange_weak(
                &self,
                current: $t,
                new: $t,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$t, $t> {
                // The model never fails spuriously: spurious failures only
                // add schedules equivalent to the CAS losing a race.
                self.compare_exchange(current, new, success, failure)
            }

            pub fn into_inner(self) -> $t {
                self.v.into_inner()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Reads the mirror value without a scheduling point; kept
                // coherent by the write-through in store/rmw.
                std::fmt::Debug::fmt(&self.v.load(StdOrd::Relaxed), f)
            }
        }
    };
}

int_atomic!(AtomicU64, StdAtomicU64, u64);
int_atomic!(AtomicUsize, StdAtomicUsize, usize);

pub struct AtomicBool {
    v: StdAtomicBool,
    tag: StdAtomicU64,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        Self {
            v: StdAtomicBool::new(v),
            tag: StdAtomicU64::new(u64::MAX),
        }
    }

    fn loc(&self, st: &mut ExecState) -> usize {
        let init = self.v.load(StdOrd::Relaxed) as u64;
        let gen = rt::ctx().unwrap().gen;
        resolve_id(&self.tag, st, gen, |st| st.alloc_loc(init))
    }

    pub fn load(&self, ord: Ordering) -> bool {
        if rt::ctx().is_none() {
            return self.v.load(ord);
        }
        op("atomic.load", |st, me| {
            let loc = self.loc(st);
            Ok(st.mem_load(me, loc, ord) != 0)
        })
    }

    pub fn store(&self, val: bool, ord: Ordering) {
        if rt::ctx().is_none() {
            return self.v.store(val, ord);
        }
        op("atomic.store", |st, me| {
            let loc = self.loc(st);
            st.mem_store(me, loc, val as u64, ord);
            Ok(())
        });
        self.v.store(val, StdOrd::Relaxed);
    }

    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        if rt::ctx().is_none() {
            return self.v.swap(val, ord);
        }
        let old = op("atomic.rmw", |st, me| {
            let loc = self.loc(st);
            Ok(st.mem_rmw(me, loc, |_| val as u64, ord) != 0)
        });
        self.v.store(val, StdOrd::Relaxed);
        old
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        if rt::ctx().is_none() {
            return self.v.compare_exchange(current, new, success, failure);
        }
        let r = op("atomic.cas", |st, me| {
            let loc = self.loc(st);
            Ok(st
                .mem_cas(me, loc, current as u64, new as u64, success, failure)
                .map(|v| v != 0)
                .map_err(|v| v != 0))
        });
        if r.is_ok() {
            self.v.store(new, StdOrd::Relaxed);
        }
        r
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.v.load(StdOrd::Relaxed), f)
    }
}

pub struct AtomicPtr<T> {
    v: StdAtomicPtr<T>,
    tag: StdAtomicU64,
}

impl<T> AtomicPtr<T> {
    pub const fn new(p: *mut T) -> Self {
        Self {
            v: StdAtomicPtr::new(p),
            tag: StdAtomicU64::new(u64::MAX),
        }
    }

    fn loc(&self, st: &mut ExecState) -> usize {
        let init = self.v.load(StdOrd::Relaxed) as u64;
        let gen = rt::ctx().unwrap().gen;
        resolve_id(&self.tag, st, gen, |st| st.alloc_loc(init))
    }

    pub fn load(&self, ord: Ordering) -> *mut T {
        if rt::ctx().is_none() {
            return self.v.load(ord);
        }
        op("atomic.load", |st, me| {
            let loc = self.loc(st);
            // Round-tripping through u64 drops strict provenance; model
            // runs only schedule/visibility-check the pointer values.
            Ok(st.mem_load(me, loc, ord) as usize as *mut T)
        })
    }

    pub fn store(&self, p: *mut T, ord: Ordering) {
        if rt::ctx().is_none() {
            return self.v.store(p, ord);
        }
        op("atomic.store", |st, me| {
            let loc = self.loc(st);
            st.mem_store(me, loc, p as u64, ord);
            Ok(())
        });
        self.v.store(p, StdOrd::Relaxed);
    }

    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        if rt::ctx().is_none() {
            return self.v.swap(p, ord);
        }
        let old = op("atomic.rmw", |st, me| {
            let loc = self.loc(st);
            Ok(st.mem_rmw(me, loc, |_| p as u64, ord) as usize as *mut T)
        });
        self.v.store(p, StdOrd::Relaxed);
        old
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.v.load(StdOrd::Relaxed), f)
    }
}

/// Instrumented mutex. Never poisons (lock always returns `Ok`), which is
/// compatible with the `.lock().unwrap()` idiom used across the codebase.
pub struct Mutex<T: ?Sized> {
    tag: StdAtomicU64,
    data: StdMutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self {
            tag: StdAtomicU64::new(u64::MAX),
            data: StdMutex::new(t),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn mid(&self, st: &mut ExecState) -> usize {
        let gen = rt::ctx().unwrap().gen;
        resolve_id(&self.tag, st, gen, |st| st.alloc_mutex())
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if rt::ctx().is_none() {
            let inner = self.data.lock().unwrap_or_else(|e| e.into_inner());
            return Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
            });
        }
        op("mutex.lock", |st, me| {
            let mid = self.mid(st);
            match st.mutexes[mid].locked_by {
                None => {
                    st.mutexes[mid].locked_by = Some(me);
                    st.mutex_acquire_view(me, mid);
                    Ok(())
                }
                Some(_) => Err(Blocked::Mutex(mid)),
            }
        });
        let inner = self
            .data
            .try_lock()
            .expect("loomish: model says mutex is free but the std mutex is held");
        Ok(MutexGuard {
            lock: self,
            inner: Some(inner),
        })
    }

    pub fn try_lock(
        &self,
    ) -> Result<MutexGuard<'_, T>, std::sync::TryLockError<MutexGuard<'_, T>>> {
        if rt::ctx().is_none() {
            return match self.data.try_lock() {
                Ok(inner) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                }),
                Err(_) => Err(std::sync::TryLockError::WouldBlock),
            };
        }
        let got = op("mutex.try_lock", |st, me| {
            let mid = self.mid(st);
            Ok(match st.mutexes[mid].locked_by {
                None => {
                    st.mutexes[mid].locked_by = Some(me);
                    st.mutex_acquire_view(me, mid);
                    true
                }
                Some(_) => false,
            })
        });
        if got {
            let inner = self
                .data
                .try_lock()
                .expect("loomish: model says mutex is free but the std mutex is held");
            Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
            })
        } else {
            Err(std::sync::TryLockError::WouldBlock)
        }
    }

    /// Model unlock bookkeeping shared by guard drop and condvar wait.
    fn model_unlock(st: &mut ExecState, me: usize, mid: usize) {
        debug_assert_eq!(st.mutexes[mid].locked_by, Some(me));
        st.mutex_release_view(me, mid);
        st.mutexes[mid].locked_by = None;
        rt::wake_mutex_waiters(st, mid);
    }
}

impl<T: ?Sized> MutexGuard<'_, T> {
    /// Release the underlying std lock and return this guard's model mutex
    /// id, leaving the guard disarmed (its Drop is then a no-op). Used by
    /// `Condvar::wait` to give up the lock atomically with enqueueing.
    fn release_for_wait(&mut self, st: &mut ExecState, me: usize) -> usize {
        let mid = self.lock.mid(st);
        Mutex::<T>::model_unlock(st, me, mid);
        mid
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let inner = self.inner.take();
        let Some(inner) = inner else {
            return; // disarmed by Condvar::wait
        };
        drop(inner); // release the real lock before the model op can switch
        if rt::ctx().is_none() {
            return;
        }
        if std::thread::panicking() {
            // Unwinding (user assertion failed or the execution is being
            // aborted): release in the model without a scheduling point —
            // an op here could abort-panic again and that double panic
            // would take the whole process down.
            with_state_direct(|st, me| {
                let mid = self.lock.mid(st);
                Mutex::<T>::model_unlock(st, me, mid);
            });
            return;
        }
        op("mutex.unlock", |st, me| {
            let mid = self.lock.mid(st);
            Mutex::<T>::model_unlock(st, me, mid);
            Ok(())
        });
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard disarmed")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard disarmed")
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("Mutex");
        match self.data.try_lock() {
            Ok(g) => s.field("data", &&*g),
            Err(_) => s.field("data", &"<locked>"),
        };
        s.finish()
    }
}

/// Result of `Condvar::wait_timeout`: mirrors `std::sync::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Instrumented condition variable. Under a model run, `wait_timeout`
/// waiters only time out at quiescence (see the rt module docs) so
/// timed-retry loops stay finite while lost wakeups still show up as
/// deadlocks.
pub struct Condvar {
    tag: StdAtomicU64,
    inner: StdCondvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            tag: StdAtomicU64::new(u64::MAX),
            inner: StdCondvar::new(),
        }
    }

    fn cvid(&self, st: &mut ExecState) -> usize {
        let gen = rt::ctx().unwrap().gen;
        resolve_id(&self.tag, st, gen, |st| st.alloc_condvar())
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (g, _) = self.wait_inner(guard, false);
        Ok(g)
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if rt::ctx().is_none() {
            return Ok(self.wait_inner_std(guard, Some(timeout)));
        }
        Ok(self.wait_inner(guard, true))
    }

    fn wait_inner_std<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Option<std::time::Duration>,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let lock = guard.lock;
        let inner = guard.inner.take().expect("guard disarmed");
        let (inner, timed_out) = match timeout {
            Some(dur) => {
                let (g, r) = self
                    .inner
                    .wait_timeout(inner, dur)
                    .unwrap_or_else(|e| e.into_inner());
                (g, r.timed_out())
            }
            None => (
                self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()),
                false,
            ),
        };
        (
            MutexGuard {
                lock,
                inner: Some(inner),
            },
            WaitTimeoutResult { timed_out },
        )
    }

    fn wait_inner<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: bool,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        if rt::ctx().is_none() {
            return self.wait_inner_std(guard, None);
        }
        let lock = guard.lock;
        // Drop the real lock up front; the model serializes access anyway
        // and the guard is disarmed so its Drop won't double-unlock.
        drop(guard.inner.take().expect("guard disarmed"));
        let mut released = false;
        let timed_out = op("condvar.wait", |st, me| {
            let cv = self.cvid(st);
            if !released {
                released = true;
                let mutex = guard.release_for_wait(st, me);
                return Err(Blocked::Condvar { cv, mutex, timeout });
            }
            // Woken (notify or quiescence timeout): reacquire the mutex.
            let mid = lock.mid(st);
            match st.mutexes[mid].locked_by {
                None => {
                    st.mutexes[mid].locked_by = Some(me);
                    st.mutex_acquire_view(me, mid);
                    Ok(std::mem::take(&mut st.threads[me].timed_out))
                }
                Some(_) => Err(Blocked::Mutex(mid)),
            }
        });
        let inner = lock
            .data
            .try_lock()
            .expect("loomish: model says mutex is free but the std mutex is held");
        (
            MutexGuard {
                lock,
                inner: Some(inner),
            },
            WaitTimeoutResult { timed_out },
        )
    }

    pub fn notify_one(&self) {
        if rt::ctx().is_none() {
            return self.inner.notify_one();
        }
        op("condvar.notify_one", |st, me| {
            let _ = me;
            let cv = self.cvid(st);
            let waiters: Vec<usize> = (0..st.threads.len())
                .filter(|&i| {
                    matches!(st.threads[i].status,
                             rt::Status::BlockedCondvar { cv: c, .. } if c == cv)
                })
                .collect();
            if !waiters.is_empty() {
                // Which waiter wins the wakeup is a scheduling branch.
                let c = op_choice(st, waiters.len());
                rt::wake_condvar_waiter(st, waiters[c], false);
            }
            Ok(())
        })
    }

    pub fn notify_all(&self) {
        if rt::ctx().is_none() {
            return self.inner.notify_all();
        }
        op("condvar.notify_all", |st, me| {
            let _ = me;
            let cv = self.cvid(st);
            let waiters: Vec<usize> = (0..st.threads.len())
                .filter(|&i| {
                    matches!(st.threads[i].status,
                             rt::Status::BlockedCondvar { cv: c, .. } if c == cv)
                })
                .collect();
            for w in waiters {
                rt::wake_condvar_waiter(st, w, false);
            }
            Ok(())
        })
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
