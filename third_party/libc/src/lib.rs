//! Minimal local subset of the `libc` crate.
//!
//! Only the declarations the workspace actually uses are provided: the
//! `memfd_create`/`ftruncate`/`fallocate`/`mmap` family that backs memory
//! rewiring (paper §2). Constants are the Linux generic-ABI values, which are
//! identical on x86_64 and aarch64 for everything declared here.

#![allow(non_camel_case_types)]
// `SYS_membarrier` matches the upstream libc crate's spelling.
#![allow(non_upper_case_globals)]

pub use std::os::raw::{c_char, c_int, c_long, c_uint, c_void};

pub type size_t = usize;
pub type off_t = i64;

// errno values (asm-generic).
pub const EINVAL: c_int = 22;
pub const ENOMEM: c_int = 12;
pub const ENOSYS: c_int = 38;
pub const EOPNOTSUPP: c_int = 95;

// fallocate(2) mode flags.
pub const FALLOC_FL_KEEP_SIZE: c_int = 0x01;
pub const FALLOC_FL_PUNCH_HOLE: c_int = 0x02;

// memfd_create(2) flags.
pub const MFD_HUGETLB: c_uint = 0x0004;
/// `MFD_HUGE_2MB`: select the 2 MB hugetlb pool explicitly (21 << 26).
pub const MFD_HUGE_2MB: c_uint = 21 << 26;

// madvise(2) advice values.
pub const MADV_HUGEPAGE: c_int = 14;

// mmap(2) protection flags.
pub const PROT_NONE: c_int = 0x0;
pub const PROT_READ: c_int = 0x1;
pub const PROT_WRITE: c_int = 0x2;

// mmap(2) mapping flags (asm-generic; identical on x86_64 and aarch64).
pub const MAP_SHARED: c_int = 0x0001;
pub const MAP_PRIVATE: c_int = 0x0002;
pub const MAP_FIXED: c_int = 0x0010;
pub const MAP_ANONYMOUS: c_int = 0x0020;
pub const MAP_NORESERVE: c_int = 0x4000;
pub const MAP_POPULATE: c_int = 0x8000;

/// Error return of `mmap(2)`.
pub const MAP_FAILED: *mut c_void = !0 as *mut c_void;

// sysconf(3) names.
pub const _SC_PAGESIZE: c_int = 30;

// membarrier(2): syscall number (arch-specific) and command flags.
#[cfg(target_arch = "x86_64")]
pub const SYS_membarrier: c_long = 324;
#[cfg(target_arch = "aarch64")]
pub const SYS_membarrier: c_long = 283;

pub const MEMBARRIER_CMD_QUERY: c_int = 0;
pub const MEMBARRIER_CMD_PRIVATE_EXPEDITED: c_int = 1 << 3;
pub const MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED: c_int = 1 << 4;

extern "C" {
    pub fn close(fd: c_int) -> c_int;
    pub fn ftruncate(fd: c_int, length: off_t) -> c_int;
    pub fn fallocate(fd: c_int, mode: c_int, offset: off_t, len: off_t) -> c_int;
    pub fn memfd_create(name: *const c_char, flags: c_uint) -> c_int;
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn madvise(addr: *mut c_void, len: size_t, advice: c_int) -> c_int;
    pub fn sysconf(name: c_int) -> c_long;
    pub fn syscall(num: c_long, ...) -> c_long;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_sane() {
        let ps = unsafe { sysconf(_SC_PAGESIZE) };
        assert!(ps >= 4096, "sysconf(_SC_PAGESIZE) = {ps}");
        assert_eq!(ps & (ps - 1), 0, "page size must be a power of two");
    }

    #[test]
    fn membarrier_query_is_callable() {
        // Query never has side effects: it returns a bitmask of supported
        // commands, or -1 on kernels without the syscall. Either way the
        // shim's number and variadic declaration must not fault.
        let r = unsafe { syscall(SYS_membarrier, MEMBARRIER_CMD_QUERY, 0, 0) };
        assert!(r >= -1, "membarrier query returned {r}");
        if r >= 0 && (r & MEMBARRIER_CMD_PRIVATE_EXPEDITED as c_long) != 0 {
            // A kernel that advertises the expedited command must accept
            // the registration retire.rs performs at pool init.
            let reg = unsafe {
                syscall(
                    SYS_membarrier,
                    MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED,
                    0,
                    0,
                )
            };
            assert_eq!(reg, 0, "advertised registration failed");
        }
    }

    #[test]
    fn memfd_mmap_round_trip() {
        unsafe {
            let name = std::ffi::CString::new("libc-shim-test").unwrap();
            let fd = memfd_create(name.as_ptr(), 0);
            assert!(fd >= 0);
            assert_eq!(ftruncate(fd, 4096), 0);
            let p = mmap(
                std::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            *(p as *mut u64) = 0xfeed;
            assert_eq!(*(p as *const u64), 0xfeed);
            assert_eq!(munmap(p, 4096), 0);
            assert_eq!(close(fd), 0);
        }
    }
}
