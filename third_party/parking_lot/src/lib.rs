//! Minimal local subset of `parking_lot`: a non-poisoning `Mutex`, a
//! `Condvar` whose `wait_for` takes the guard by `&mut` (the parking_lot
//! signature), and a non-poisoning `RwLock`, all layered over the std
//! primitives.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// Mutex whose `lock` never returns a poison error: a panic while holding
/// the lock simply passes the data on (parking_lot semantics).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // Ignore poisoning: parking_lot mutexes do not poison.
            inner: Some(self.inner.lock().unwrap_or_else(|p| p.into_inner())),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Guard returned by [`Mutex::lock`]. The inner `Option` exists so
/// [`Condvar::wait_for`] can temporarily take the std guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Result of a timed wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on [`MutexGuard`]s by `&mut` reference.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Reader-writer lock whose acquisitions never return poison errors: a
/// panic while holding the lock passes the data on (parking_lot
/// semantics).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|p| p.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|p| p.into_inner()),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(0);
        *m.lock() += 41;
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        // The guard is usable (and re-locked) after the wait.
        drop(g);
        let _ = m.lock();
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait_for(&mut done, Duration::from_secs(5));
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
            assert!(l.try_write().is_none(), "readers block the writer");
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
        let mut l = l;
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 9);
    }

    #[test]
    fn rwlock_no_poisoning_after_panic() {
        let l = Arc::new(RwLock::new(3));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 3, "lock must survive a panicking holder");
        *l.write() = 4;
        assert_eq!(*l.read(), 4);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock must survive a panicking holder");
    }
}
