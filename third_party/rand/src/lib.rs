//! Minimal local subset of the `rand` crate (0.9-style API).
//!
//! Provides exactly what the workspace consumes: `StdRng::seed_from_u64`,
//! `Rng::{random, random_range}`, and `SliceRandom::shuffle`. The generator
//! is xoshiro256** seeded through splitmix64 — deterministic, fast, and
//! statistically solid for workload generation (not for cryptography).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform 64-bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its "standard" distribution (uniform over
    /// the whole type for integers, `[0, 1)` for floats).
    fn random<T: StandardDist>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding entry points (only the `u64` convenience form is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable via [`Rng::random`].
pub trait StandardDist: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardDist for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardDist for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardDist for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardDist for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo reduction: bias is negligible for span << 2^64 and
                // irrelevant for workload generation.
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via splitmix64 (the reference seeding procedure).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (RngCore::next_u64(rng) % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..32).map(|_| r.random()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..32).map(|_| r.random()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(2);
            (0..32).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: usize = r.random_range(0..7);
            assert!(x < 7);
            let y: u32 = r.random_range(5..=9);
            assert!((5..=9).contains(&y));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity (astronomically unlikely)"
        );
    }
}
