//! Minimal local subset of `criterion`.
//!
//! Supports the workspace's bench files: `criterion_group!`/`criterion_main!`
//! with the `name/config/targets` form, `Criterion::{default, sample_size,
//! bench_function, benchmark_group}`, groups with `bench_function` /
//! `bench_with_input` / `sample_size` / `finish`, and benchers with `iter` /
//! `iter_batched`. Measurement is a simple warmup + N timed samples with a
//! median/mean/min report — no outlier analysis, no HTML.
//!
//! CLI behavior: a single positional argument filters benchmarks by
//! substring; `--test` (passed by `cargo test`) runs every benchmark once
//! for a smoke check; `--bench` (passed by `cargo bench`) is accepted and
//! ignored.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo or the real criterion CLI may pass; ignored.
                "--bench" | "--verbose" | "-n" | "--noplot" | "--quiet" => {}
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            sample_size: 20,
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (builder-style, like criterion).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            id,
            self.sample_size,
            self.filter.as_deref(),
            self.test_mode,
            &mut f,
        );
        self
    }

    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: group_name.to_string(),
            sample_size: None,
        }
    }

    /// Printed by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.parent.sample_size)
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(
            &id,
            self.effective_samples(),
            self.parent.filter.as_deref(),
            self.parent.test_mode,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(
            &id,
            self.effective_samples(),
            self.parent.filter.as_deref(),
            self.parent.test_mode,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifier carrying a function name and a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// How `iter_batched` amortizes setup cost. The shim always runs one routine
/// call per setup call, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Measures one benchmark body.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    /// Collected per-sample durations (each sample = one routine call).
    results: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warmup: stabilize caches/branch predictors and fault-in pages.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }

    /// Like `iter_batched`, but the routine takes the input by reference.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }
}

fn run_one(
    id: &str,
    samples: usize,
    filter: Option<&str>,
    test_mode: bool,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    let mut b = Bencher {
        samples,
        test_mode,
        results: Vec::with_capacity(samples),
    };
    f(&mut b);
    if test_mode {
        println!("test {id} ... ok (bench smoke)");
        return;
    }
    if b.results.is_empty() {
        println!("{id:<48} (no measurement recorded)");
        return;
    }
    let mut sorted = b.results.clone();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "{id:<48} median {:>12} | mean {:>12} | min {:>12} | {} samples",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(min),
        sorted.len()
    );
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Define a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the bench binary's `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_quiet(samples: usize, f: &mut dyn FnMut(&mut Bencher)) -> Vec<Duration> {
        let mut b = Bencher {
            samples,
            test_mode: false,
            results: Vec::new(),
        };
        f(&mut b);
        b.results
    }

    #[test]
    fn iter_records_one_duration_per_sample() {
        let mut calls = 0u32;
        let results = run_quiet(5, &mut |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert_eq!(results.len(), 5);
        assert_eq!(calls, 6, "5 samples + 1 warmup");
    }

    #[test]
    fn iter_batched_fresh_input_per_sample() {
        let mut setups = 0u32;
        let results = run_quiet(4, &mut |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 64]
                },
                |v| v.len(),
                BatchSize::PerIteration,
            )
        });
        assert_eq!(results.len(), 4);
        assert_eq!(setups, 5, "4 samples + 1 warmup");
    }

    #[test]
    fn benchmark_id_formats_name_and_parameter() {
        let id = BenchmarkId::new("lookup", 4096);
        assert_eq!(id.into_benchmark_id(), "lookup/4096");
        assert_eq!(BenchmarkId::from_parameter(7).into_benchmark_id(), "7");
    }
}
