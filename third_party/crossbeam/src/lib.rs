//! Minimal local subset of `crossbeam`: an unbounded MPMC FIFO queue with
//! the `SegQueue` API. Backed by `Mutex<VecDeque>` rather than a lock-free
//! segment list — identical observable semantics, lower peak throughput.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue.
    #[derive(Debug)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.inner.lock().unwrap().push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_front()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        assert_eq!(q.len(), 10);
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_producers_consumers() {
        let q = Arc::new(SegQueue::new());
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        q.push(t * 1000 + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(v) = q.pop() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), 4000);
    }
}
