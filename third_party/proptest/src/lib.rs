//! Minimal local subset of `proptest`.
//!
//! Implements the API surface the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map` and `boxed`, implemented for integer
//!   ranges, tuples (arity 2–6), [`Just`], and boxed/mapped combinators;
//! * `any::<T>()` over a tiny [`Arbitrary`];
//! * [`collection::vec`] and [`collection::btree_map`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros;
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: inputs are generated from a fixed
//! per-test seed (fully deterministic across runs), and failing cases are
//! reported verbatim rather than shrunk to a minimal counterexample.

use std::fmt;
use std::ops::Range;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Error carried out of a failing test case by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-block configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic input generator (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (the test name), deterministically.
    pub fn deterministic(label: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (what `prop_oneof!` arms are stored as).
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types with a canonical "anything goes" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (uniform over the type).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Weighted union of same-valued strategies; built by [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap` with a target size drawn from `size`.
    ///
    /// Like the real crate, key collisions can leave the map smaller than
    /// the drawn target; generation is capped rather than looping forever
    /// when the key space is narrower than the target.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut map = BTreeMap::new();
            let mut attempts = 0usize;
            while map.len() < target && attempts < target.saturating_mul(16).max(64) {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+), l, r
        );
    }};
}

/// Fail the current test case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: both sides are `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}: both sides are `{:?}`",
            format!($($fmt)+), l
        );
    }};
}

/// Weighted choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)` runs
/// `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(usize),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 3usize..17, pair in (0u64..4, any::<bool>())) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn oneof_vec_respects_weights_and_len(
            ops in crate::collection::vec(
                prop_oneof![
                    3 => (0usize..10).prop_map(Op::A),
                    1 => Just(Op::B),
                ],
                1..50,
            )
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 50);
            for op in &ops {
                if let Op::A(n) = op {
                    prop_assert!(*n < 10);
                }
            }
        }

        #[test]
        fn btree_map_sizes(m in crate::collection::btree_map(0usize..100, 0u64..5, 1..20)) {
            prop_assert!(m.len() < 20);
            for (k, v) in &m {
                prop_assert!(*k < 100 && *v < 5);
            }
        }
    }

    #[test]
    fn question_mark_works_in_helpers() {
        fn helper(x: u32) -> Result<(), TestCaseError> {
            prop_assert_eq!(x, 1, "x was {}", x);
            prop_assert_ne!(x, 2);
            Ok(())
        }
        assert!(helper(1).is_ok());
        let err = helper(3).unwrap_err();
        assert!(err.to_string().contains("x was 3"), "{err}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("label");
        let mut b = crate::TestRng::deterministic("label");
        let s = crate::collection::vec(0u64..1000, 1..30);
        use crate::Strategy;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
