//! Figure 6, animated: watch extendible hashing split buckets and double
//! its directory, and watch the shortcut directory replay it all.
//!
//! ```bash
//! cargo run --release --example eh_splits
//! ```

use std::time::Duration;
use taking_the_shortcut::exhash::{
    EhConfig, ExtendibleHash, Index, IndexError, ShortcutEh, ShortcutEhConfig,
};

fn dump(eh: &ExtendibleHash, label: &str) {
    println!(
        "{label}: global depth {} | {} slots | {} buckets | avg fan-in {:.2}",
        eh.global_depth(),
        eh.dir_slots(),
        eh.bucket_count(),
        eh.avg_fanin()
    );
}

fn main() -> Result<(), IndexError> {
    // Plain EH first: show the doubling cadence.
    let mut eh = ExtendibleHash::try_new(EhConfig::default())?;
    dump(&eh, "fresh        ");
    let mut inserted = 0u64;
    for round in 1..=6 {
        let target_splits = eh.stats().splits + 3;
        while eh.stats().splits < target_splits {
            eh.insert(inserted.wrapping_mul(0x9E37_79B9_7F4A_7C15), inserted)?;
            inserted += 1;
        }
        dump(&eh, &format!("after round {round}"));
    }
    println!(
        "=> {} inserts caused {} splits and {} directory doublings\n",
        inserted,
        eh.stats().splits,
        eh.stats().doublings
    );

    // Now Shortcut-EH: the same structural events, replayed asynchronously
    // into the page table by the mapper thread.
    let mut sceh = ShortcutEh::try_new(ShortcutEhConfig::default())?;
    for k in 0..200_000u64 {
        sceh.insert(k, k)?;
    }
    let (tv_before, sv_before) = sceh.versions();
    println!(
        "Shortcut-EH right after the insert storm: traditional v{tv_before}, shortcut v{sv_before} ({}✓)",
        if tv_before == sv_before { "in sync " } else { "catching up " }
    );
    sceh.wait_sync(Duration::from_secs(30));
    let (tv, sv) = sceh.versions();
    let m = sceh.maint_metrics();
    println!("after the mapper caught up: traditional v{tv}, shortcut v{sv}");
    println!(
        "mapper work: {} rebuilds (directory doublings), {} slot remaps, {} superseded updates discarded",
        m.creates_applied, m.updates_applied, m.updates_discarded
    );
    println!(
        "rebuild efficiency: {} slots rewired with {} mmap calls (coalescing contiguous runs)",
        m.slots_rewired, m.create_mmap_calls
    );

    // Every key still answers, through whichever directory routing picks.
    for k in (0..200_000u64).step_by(7919) {
        assert_eq!(sceh.get(k), Some(k));
    }
    let s = sceh.stats();
    println!(
        "verification lookups: {} via shortcut, {} via traditional",
        s.shortcut_lookups, s.traditional_lookups
    );
    Ok(())
}
