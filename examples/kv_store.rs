//! A small session-store scenario: the workload class the paper's intro
//! motivates (point lookups dominating, bursts of new sessions, strict
//! latency budget on reads).
//!
//! Sessions map a 64-bit session id to a packed (user id, expiry) value.
//! Reads outnumber writes 50:1; expired sessions get deleted in sweeps.
//!
//! ```bash
//! cargo run --release --example kv_store
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use taking_the_shortcut::exhash::{KvIndex, ShortcutEh};

/// Pack (user id, expiry tick) into the stored u64.
fn pack(user: u32, expiry_tick: u32) -> u64 {
    ((user as u64) << 32) | expiry_tick as u64
}

fn expiry_of(v: u64) -> u32 {
    v as u32
}

fn main() {
    let mut store = ShortcutEh::with_defaults();
    let mut rng = StdRng::seed_from_u64(7);
    let mut live_sessions: Vec<u64> = Vec::new();
    let mut tick: u32 = 0;

    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut read_time = Duration::ZERO;

    println!("simulating 30 bursts of session traffic…");
    let start = Instant::now();
    for burst in 0..30 {
        tick += 1;

        // Burst of new sessions (writes).
        let new_sessions = 20_000;
        for _ in 0..new_sessions {
            let sid: u64 = rng.random();
            let user: u32 = rng.random_range(0..1_000_000);
            store.insert(sid, pack(user, tick + 10));
            live_sessions.push(sid);
            writes += 1;
        }

        // Read-heavy phase: 50 reads per write.
        let t0 = Instant::now();
        let mut hits = 0u64;
        for _ in 0..new_sessions * 50 {
            let sid = live_sessions[rng.random_range(0..live_sessions.len())];
            if store.get(sid).is_some() {
                hits += 1;
            }
            reads += 1;
        }
        read_time += t0.elapsed();
        assert_eq!(hits, new_sessions as u64 * 50, "session store lost entries");

        // Expiry sweep every 10 bursts: delete sessions past their expiry.
        if burst % 10 == 9 {
            let before = store.len();
            live_sessions.retain(|sid| {
                let keep = store
                    .get(*sid)
                    .map(|v| expiry_of(v) > tick)
                    .unwrap_or(false);
                if !keep {
                    store.remove(*sid);
                }
                keep
            });
            println!(
                "  burst {:2}: expiry sweep {} -> {} sessions",
                burst + 1,
                before,
                store.len()
            );
        }
    }

    let s = store.stats();
    println!(
        "\n{} writes, {} reads in {:?}",
        writes,
        reads,
        start.elapsed()
    );
    println!(
        "read latency: {:.0} ns/lookup average",
        read_time.as_nanos() as f64 / reads as f64
    );
    println!(
        "directory: 2^{} slots, {} buckets, fan-in {:.2}; lookups: {} shortcut / {} traditional",
        store.global_depth(),
        store.bucket_count(),
        store.avg_fanin(),
        s.shortcut_lookups,
        s.traditional_lookups
    );
    assert!(store.maint_error().is_none());
}
