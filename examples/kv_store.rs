//! A small session-store scenario: the workload class the paper's intro
//! motivates (point lookups dominating, bursts of new sessions, strict
//! latency budget on reads).
//!
//! Sessions map a 64-bit session id to a packed (user id, expiry) value.
//! Reads outnumber writes 50:1; expired sessions get deleted in sweeps.
//! Writes go through the fallible API — a store that outgrows its pool
//! gets a typed error, not a panic mid-request.
//!
//! ```bash
//! cargo run --release --example kv_store
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use taking_the_shortcut::{IndexError, ShortcutIndex};

/// Pack (user id, expiry tick) into the stored u64.
fn pack(user: u32, expiry_tick: u32) -> u64 {
    ((user as u64) << 32) | expiry_tick as u64
}

fn expiry_of(v: u64) -> u32 {
    v as u32
}

fn main() -> Result<(), IndexError> {
    let mut store = ShortcutIndex::builder().capacity(700_000).build()?;
    let mut rng = StdRng::seed_from_u64(7);
    let mut live_sessions: Vec<u64> = Vec::new();

    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut read_time = Duration::ZERO;

    println!("simulating 30 bursts of session traffic…");
    let start = Instant::now();
    for burst in 0u32..30 {
        let tick = burst + 1;

        // Burst of new sessions, written as one batch (events are relayed
        // to the mapper once per batch instead of once per session).
        let new_sessions = 20_000;
        let batch: Vec<(u64, u64)> = (0..new_sessions)
            .map(|_| {
                let sid: u64 = rng.random();
                let user: u32 = rng.random_range(0..1_000_000);
                (sid, pack(user, tick + 10))
            })
            .collect();
        store.insert_batch(&batch)?;
        live_sessions.extend(batch.iter().map(|(sid, _)| *sid));
        writes += new_sessions as u64;

        // Read-heavy phase: 50 reads per write, through &self.
        let t0 = Instant::now();
        let mut hits = 0u64;
        for _ in 0..new_sessions * 50 {
            let sid = live_sessions[rng.random_range(0..live_sessions.len())];
            if store.get(sid).is_some() {
                hits += 1;
            }
            reads += 1;
        }
        read_time += t0.elapsed();
        assert_eq!(hits, new_sessions as u64 * 50, "session store lost entries");

        // Expiry sweep every 10 bursts: delete sessions past their expiry.
        if burst % 10 == 9 {
            let before = store.len();
            let mut expired: Vec<u64> = Vec::new();
            live_sessions.retain(|sid| {
                let keep = store
                    .get(*sid)
                    .map(|v| expiry_of(v) > tick)
                    .unwrap_or(false);
                if !keep {
                    expired.push(*sid);
                }
                keep
            });
            for sid in expired {
                store.remove(sid)?;
            }
            println!(
                "  burst {:2}: expiry sweep {} -> {} sessions",
                burst + 1,
                before,
                store.len()
            );
        }
    }

    let s = store.stats();
    println!(
        "\n{} writes, {} reads in {:?}",
        writes,
        reads,
        start.elapsed()
    );
    println!(
        "read latency: {:.0} ns/lookup average",
        read_time.as_nanos() as f64 / reads as f64
    );
    println!(
        "directory: 2^{} slots, {} buckets, fan-in {:.2}; lookups: {} shortcut / {} traditional",
        s.global_depth,
        s.bucket_count,
        s.avg_fanin,
        s.index.shortcut_lookups,
        s.index.traditional_lookups
    );
    assert!(store.maint_error().is_none());
    Ok(())
}
