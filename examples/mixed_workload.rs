//! A live view of Figure 8's dynamics: fire waves of inserts at a loaded
//! [`ShortcutIndex`] and watch the shortcut directory fall out of sync and
//! catch up, wave after wave.
//!
//! ```bash
//! cargo run --release --example mixed_workload
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use taking_the_shortcut::{IndexError, ShortcutIndex};

fn main() -> Result<(), IndexError> {
    let mut index = ShortcutIndex::builder().capacity(2_200_000).build()?;
    let mut rng = StdRng::seed_from_u64(99);

    // 2M entries reach directory depth 15–16 (~50k+ mappings). Retired
    // directories are reclaimed as the index grows, and if the live
    // directory itself outgrows the vm.max_map_count budget the shortcut
    // suspends (lookups fall back to the traditional directory) instead of
    // tripping the kernel limit mid-demo; see README "VMA budgeting".
    println!("bulk-loading 2M entries…");
    let mut keys: Vec<u64> = Vec::with_capacity(2_000_000);
    for _ in 0..2_000_000 {
        let k: u64 = rng.random();
        index.insert(k, k)?;
        keys.push(k);
    }
    let mut synced = index.wait_sync(Duration::from_secs(60));
    if !synced && !index.shortcut_suspended() {
        // A transient suspension resolved between wait_sync giving up and
        // the check above (deferred rebuild applied); settle it.
        synced = index.wait_sync(Duration::from_secs(10));
    }
    if index.shortcut_suspended() {
        println!(
            "bulk load done; directory exceeds the VMA budget — shortcut \
             suspended, serving traditionally ({:?})\n",
            index.stats().vma
        );
    } else {
        assert!(
            synced,
            "initial sync failed (mapper error: {:?})",
            index.maint_error()
        );
        println!("bulk load done, shortcut in sync: {:?}\n", index.versions());
    }

    for wave in 1..=4 {
        // Insert burst: 1% of a 400k-access wave, as one batch.
        let burst: Vec<(u64, u64)> = (0..4_000)
            .map(|_| {
                let k: u64 = rng.random();
                (k, k)
            })
            .collect();
        index.insert_batch(&burst)?;
        keys.extend(burst.iter().map(|(k, _)| *k));
        let (tv, sv) = index.versions();
        println!(
            "wave {wave}: insert burst done — versions t={tv} s={sv} ({})",
            if tv == sv { "in sync" } else { "OUT OF SYNC" }
        );

        // Lookup phase, reporting sync status + latency in slices.
        let slices = 8;
        let per_slice = 49_500;
        for slice in 0..slices {
            let t0 = Instant::now();
            for _ in 0..per_slice {
                let k = keys[rng.random_range(0..keys.len())];
                assert!(index.get(k).is_some());
            }
            let (tv, sv) = index.versions();
            let ns = t0.elapsed().as_nanos() as f64 / per_slice as f64;
            println!(
                "  slice {slice}: {ns:6.0} ns/lookup   versions t={tv} s={sv} {}",
                if tv == sv {
                    "✓ shortcut"
                } else if index.shortcut_suspended() {
                    "… traditional (VMA budget)"
                } else {
                    "… traditional (catching up)"
                }
            );
        }
        println!();
    }

    let s = index.stats();
    println!(
        "totals: {} shortcut lookups, {} traditional lookups, {} discarded races",
        s.index.shortcut_lookups, s.index.traditional_lookups, s.index.shortcut_retries
    );
    println!(
        "vma: {} in use of {} budget, {} directories retired, {} reclaimed",
        s.vma.in_use, s.vma.limit, s.vma.areas_retired, s.vma.areas_reclaimed
    );
    assert!(index.maint_error().is_none());
    assert!(
        s.vma.in_use <= s.vma.limit,
        "VMA estimate exceeds the budget: {:?}",
        s.vma
    );
    Ok(())
}
