//! A live view of Figure 8's dynamics: fire waves of inserts at a loaded
//! [`ShortcutIndex`] and watch the shortcut directory fall out of sync and
//! catch up, wave after wave.
//!
//! ```bash
//! cargo run --release --example mixed_workload
//! # scale and policy knobs (CI stress uses 4M + compaction + assert):
//! MIXED_WORKLOAD_ENTRIES=4000000 MIXED_WORKLOAD_ASSERT_SHORTCUT=1 \
//!     cargo run --release --example mixed_workload
//! MIXED_WORKLOAD_COMPACTION=off cargo run --release --example mixed_workload
//! # physical slot size: 2^k base pages per bucket (k = 0..9)
//! MIXED_WORKLOAD_SLOT_PAGES=4 cargo run --release --example mixed_workload
//! # assert the exit live-VMA count stays under a bound (CI slot-size leg)
//! MIXED_WORKLOAD_MAX_LIVE_VMAS=2000 cargo run --release --example mixed_workload
//! # shard the index (power-of-two count; bulk load becomes one writer
//! # thread per shard through the shared-write API)
//! MIXED_WORKLOAD_SHARDS=4 cargo run --release --example mixed_workload
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use taking_the_shortcut::{CompactionPolicy, IndexError, ShortcutIndex};

fn main() -> Result<(), IndexError> {
    let entries: u64 = std::env::var("MIXED_WORKLOAD_ENTRIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    // Directory-order compaction is on by default: it is what keeps the
    // directory's mapping footprint inside the stock vm.max_map_count
    // budget at millions of keys. `off` restores the PR 3 behavior
    // (worst-case admission; large directories suspend the shortcut).
    let compaction = match std::env::var("MIXED_WORKLOAD_COMPACTION").as_deref() {
        Ok("off") => CompactionPolicy::disabled(),
        _ => CompactionPolicy::on(),
    };
    let assert_shortcut = std::env::var("MIXED_WORKLOAD_ASSERT_SHORTCUT").as_deref() == Ok("1");
    let slot_pages: u32 = std::env::var("MIXED_WORKLOAD_SLOT_PAGES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let max_live_vmas: Option<u64> = std::env::var("MIXED_WORKLOAD_MAX_LIVE_VMAS")
        .ok()
        .and_then(|s| s.parse().ok());
    let shards: usize = std::env::var("MIXED_WORKLOAD_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    assert!(
        shards.is_power_of_two(),
        "MIXED_WORKLOAD_SHARDS must be a power of two, got {shards}"
    );

    let mut index = ShortcutIndex::builder()
        .capacity(entries as usize + entries as usize / 10)
        .compaction(compaction)
        .slot_pages(slot_pages)
        .shards(shards.trailing_zeros())
        .build()?;
    let mut rng = StdRng::seed_from_u64(99);

    {
        let s = index.stats();
        println!(
            "bulk-loading {entries} entries (compaction {}, slot 2^{slot_pages} pages = {} KB, \
             bucket capacity {}, {} shard{})…",
            if compaction.enabled() { "on" } else { "off" },
            s.slot_bytes / 1024,
            s.bucket_capacity,
            shards,
            if shards == 1 { "" } else { "s" }
        );
    }
    let mut keys: Vec<u64> = (0..entries).map(|_| rng.random()).collect();
    if shards > 1 {
        // True multi-writer bulk load: partition the keys by owning shard
        // and run one writer thread per shard through the shared-write
        // API — writers on different shards never contend.
        let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); index.shard_count()];
        for &k in &keys {
            per_shard[index.shard_of(k)].push(k);
        }
        std::thread::scope(|scope| {
            for part in &per_shard {
                let index = &index;
                scope.spawn(move || {
                    for chunk in part.chunks(4096) {
                        let batch: Vec<(u64, u64)> = chunk.iter().map(|&k| (k, k)).collect();
                        index.insert_batch_shared(&batch).unwrap();
                    }
                });
            }
        });
    } else {
        for &k in &keys {
            index.insert(k, k)?;
        }
    }
    let mut synced = index.wait_sync(Duration::from_secs(120));
    if !synced && !index.shortcut_suspended() {
        // A transient suspension resolved between wait_sync giving up and
        // the check above (deferred rebuild applied); settle it.
        synced = index.wait_sync(Duration::from_secs(10));
    }
    if index.shortcut_suspended() {
        println!(
            "bulk load done; directory exceeds the VMA budget — shortcut \
             suspended, serving traditionally ({:?})\n",
            index.stats().vma
        );
    } else {
        assert!(
            synced,
            "initial sync failed (mapper error: {:?})",
            index.maint_error()
        );
        println!("bulk load done, shortcut in sync: {:?}\n", index.versions());
    }

    for wave in 1..=4 {
        // Insert burst: 1% of a 400k-access wave, as one batch.
        let burst: Vec<(u64, u64)> = (0..4_000)
            .map(|_| {
                let k: u64 = rng.random();
                (k, k)
            })
            .collect();
        index.insert_batch(&burst)?;
        keys.extend(burst.iter().map(|(k, _)| *k));
        let (tv, sv) = index.versions();
        println!(
            "wave {wave}: insert burst done — versions t={tv} s={sv} ({})",
            if tv == sv { "in sync" } else { "OUT OF SYNC" }
        );

        // Lookup phase, reporting sync status + latency in slices.
        let slices = 8;
        let per_slice = 49_500;
        for slice in 0..slices {
            let t0 = Instant::now();
            for _ in 0..per_slice {
                let k = keys[rng.random_range(0..keys.len())];
                assert!(index.get(k).is_some());
            }
            let (tv, sv) = index.versions();
            let ns = t0.elapsed().as_nanos() as f64 / per_slice as f64;
            println!(
                "  slice {slice}: {ns:6.0} ns/lookup   versions t={tv} s={sv} {}",
                if tv == sv {
                    "✓ shortcut"
                } else if index.shortcut_suspended() {
                    "… traditional (VMA budget)"
                } else {
                    "… traditional (catching up)"
                }
            );
        }
        println!();
    }

    let s = index.stats();
    // The exit report is the snapshot's stable rendering (shared with the
    // server's INFO reply and the `all` driver), plus the layout estimates
    // the snapshot does not carry.
    print!("{s}");
    println!(
        "compaction_layout: planned={} ideal={}",
        index.layout_vmas()?,
        index.ideal_layout_vmas(),
    );
    // Parseable for the CI slot-size comparison leg.
    println!("final live VMAs: {}", s.vma.live_vmas());
    assert!(index.maint_error().is_none());
    assert!(
        s.vma.in_use <= s.vma.limit,
        "VMA estimate exceeds the budget: {:?}",
        s.vma
    );
    if let Some(bound) = max_live_vmas {
        assert!(
            s.vma.live_vmas() <= bound,
            "live VMAs {} exceed the asserted bound {bound} (slot 2^{slot_pages} pages)",
            s.vma.live_vmas()
        );
        println!("assert: live VMAs {} <= {bound} ✓", s.vma.live_vmas());
    }
    if assert_shortcut {
        // The CI stress contract: with compaction on, this scale must end
        // fully shortcut-served under the stock vm.max_map_count.
        assert!(
            !index.shortcut_suspended(),
            "shortcut suspended at exit: vma={:?} maint={:?}",
            s.vma,
            s.maint
        );
        let final_sync = index.wait_sync(Duration::from_secs(60));
        assert!(
            final_sync,
            "shortcut never converged: {:?}",
            index.versions()
        );
        // Per shard, not just in aggregate: every shard must end
        // shortcut-served (the sharded CI leg's contract).
        for i in 0..index.shard_count() {
            index.with_shard(i, |s| {
                assert!(!s.shortcut_suspended(), "shard {i} suspended at exit");
                assert!(s.in_sync(), "shard {i} not in sync at exit");
            });
        }
        println!(
            "assert: shortcut serving on all {} shard(s) at exit ✓",
            index.shard_count()
        );
    }
    Ok(())
}
