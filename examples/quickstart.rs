//! Quickstart: build a Shortcut-EH index, insert, look up, inspect.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use std::time::{Duration, Instant};
use taking_the_shortcut::exhash::{KvIndex, ShortcutEh};

fn main() {
    // A shortcut-enhanced extendible hash table with the paper's defaults:
    // 4 KB buckets from a rewirable page pool, load factor 0.35, an async
    // mapper thread polling every 25 ms, fan-in routing threshold 8.
    let mut index = ShortcutEh::with_defaults();

    println!("inserting 1M entries…");
    let t0 = Instant::now();
    for k in 0..1_000_000u64 {
        index.insert(k, k * 2);
    }
    println!("  inserted in {:?}", t0.elapsed());
    println!(
        "  directory: 2^{} slots over {} buckets (avg fan-in {:.2})",
        index.global_depth(),
        index.bucket_count(),
        index.avg_fanin()
    );

    // Let the shortcut directory catch up with the splits and doublings.
    let synced = index.wait_sync(Duration::from_secs(30));
    let (tver, sver) = index.versions();
    println!("  shortcut in sync: {synced} (versions: traditional {tver}, shortcut {sver})");

    println!("looking up 1M entries…");
    let t0 = Instant::now();
    let mut hits = 0u64;
    for k in 0..1_000_000u64 {
        if index.get(k) == Some(k * 2) {
            hits += 1;
        }
    }
    println!("  {} hits in {:?}", hits, t0.elapsed());

    let s = index.stats();
    println!(
        "  routed via shortcut: {} | via traditional: {} | discarded races: {}",
        s.shortcut_lookups, s.traditional_lookups, s.shortcut_retries
    );
    let m = index.maint_metrics();
    println!(
        "  mapper: {} slot updates, {} rebuilds, {} slots rewired, {} pages populated",
        m.updates_applied, m.creates_applied, m.slots_rewired, m.pages_populated
    );

    assert_eq!(hits, 1_000_000);
    assert!(index.maint_error().is_none());
    println!("done.");
}
