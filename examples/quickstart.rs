//! Quickstart: build a [`ShortcutIndex`] with the builder, insert, look
//! up (single and batched), and read the merged statistics snapshot.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use std::time::{Duration, Instant};
use taking_the_shortcut::{IndexError, ShortcutIndex};

fn main() -> Result<(), IndexError> {
    // A shortcut-enhanced extendible hash table: 4 KB buckets from a
    // rewirable page pool sized for the expected entry count, load factor
    // 0.35, an async mapper thread polling every 25 ms, and the paper's
    // fan-in routing threshold of 8.
    let mut index = ShortcutIndex::builder()
        .capacity(1_000_000)
        .fanin_threshold(8.0)
        .poll_interval(Duration::from_millis(25))
        .build()?;

    println!("inserting 1M entries…");
    let t0 = Instant::now();
    for k in 0..1_000_000u64 {
        index.insert(k, k * 2)?;
    }
    println!("  inserted in {:?}", t0.elapsed());

    let s = index.stats();
    println!(
        "  directory: 2^{} slots over {} buckets (avg fan-in {:.2})",
        s.global_depth, s.bucket_count, s.avg_fanin
    );

    // Let the shortcut directory catch up with the splits and doublings.
    let synced = index.wait_sync(Duration::from_secs(30));
    let (tver, sver) = index.versions();
    println!("  shortcut in sync: {synced} (versions: traditional {tver}, shortcut {sver})");

    println!("looking up 1M entries (batches of 1024)…");
    let t0 = Instant::now();
    let mut hits = 0u64;
    let keys: Vec<u64> = (0..1_000_000u64).collect();
    for chunk in keys.chunks(1024) {
        // One seqlock ticket per batch instead of per key.
        for (i, v) in index.get_many(chunk).into_iter().enumerate() {
            if v == Some(chunk[i] * 2) {
                hits += 1;
            }
        }
    }
    println!("  {} hits in {:?}", hits, t0.elapsed());

    let s = index.stats();
    println!(
        "  routed via shortcut: {} | via traditional: {} | discarded races: {}",
        s.index.shortcut_lookups, s.index.traditional_lookups, s.index.shortcut_retries
    );
    println!(
        "  mapper: {} slot updates, {} rebuilds, {} slots rewired, {} pages populated",
        s.maint.updates_applied,
        s.maint.creates_applied,
        s.maint.slots_rewired,
        s.maint.pages_populated
    );
    println!(
        "  pool: {} mmap calls, {} pages allocated, {} grows",
        s.rewire.mmap_calls, s.rewire.pages_allocated, s.rewire.pool_grows
    );

    assert_eq!(hits, 1_000_000);
    assert!(index.maint_error().is_none());
    println!("done.");
    Ok(())
}
