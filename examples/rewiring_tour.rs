//! A guided tour of the rewiring substrate — the mechanics of the paper's
//! Figures 1 and 3, narrated.
//!
//! ```bash
//! cargo run --release --example rewiring_tour
//! ```

use taking_the_shortcut::core::{ShortcutNode, TraditionalNode};
use taking_the_shortcut::rewire::{PagePool, PoolConfig};

fn main() {
    // ── The pool of physical pages (one main-memory file) ────────────────
    let mut pool = PagePool::new(PoolConfig {
        initial_pages: 4,
        ..PoolConfig::default()
    })
    .expect("pool");
    println!(
        "created a page pool backed by memfd; {} pages",
        pool.file_pages()
    );

    // Allocate three "leaf nodes" (ppage0, ppage1, ppage3 in the paper's
    // Figure 3 — we simply take what the free queue hands us).
    let leaf_a = pool.alloc_page().unwrap();
    let leaf_b = pool.alloc_page().unwrap();
    let leaf_c = pool.alloc_page().unwrap();
    println!("allocated leaves at pool pages {leaf_a}, {leaf_b}, {leaf_c}");

    // Write into the leaves through the linear pool view (v_pool).
    unsafe {
        *(pool.page_ptr(leaf_a) as *mut u64) = 0xAAAA;
        *(pool.page_ptr(leaf_b) as *mut u64) = 0xBBBB;
        *(pool.page_ptr(leaf_c) as *mut u64) = 0xCCCC;
    }

    // ── The traditional inner node (Figure 1a): explicit pointers ───────
    let mut trad = TraditionalNode::new(4);
    trad.set_slot(0, pool.page_ptr(leaf_a));
    trad.set_slot(1, pool.page_ptr(leaf_b));
    trad.set_slot(2, pool.page_ptr(leaf_c));
    println!("\ntraditional node: 4 slots, 3 pointers set, slot 3 = null");
    for i in 0..4 {
        match trad.follow(i) {
            Some(p) => unsafe {
                println!("  slot {i} -> {:#x}", *(p as *const u64));
            },
            None => println!("  slot {i} -> null"),
        }
    }

    // ── The shortcut inner node (Figure 1b): page-table indirections ────
    // Reserve 4 virtual pages; rewire slots 0..3 straight onto the leaves'
    // physical pages. Slot 3 stays anonymous ("not mapped to the pool").
    let handle = pool.handle();
    let mut shortcut = ShortcutNode::new(4).expect("reserve");
    shortcut.set_slot(0, &handle, leaf_a).unwrap();
    shortcut.set_slot(1, &handle, leaf_b).unwrap();
    shortcut.set_slot(2, &handle, leaf_c).unwrap();
    println!("\nshortcut node: slot i IS virtual page i of one mmap'd area");
    for i in 0..4 {
        let v = unsafe { *(shortcut.slot_ptr(i) as *const u64) };
        println!("  slot {i} ({:?}) reads {:#x}", shortcut.slot_mapping(i), v);
    }

    // ── The aliasing property that makes maintenance free ───────────────
    // Writing through the shortcut is writing the leaf: the pool view and
    // any other shortcut referencing the same page see it instantly.
    unsafe {
        *(shortcut.slot_ptr(1) as *mut u64) = 0xB00B;
    }
    let through_pool = unsafe { *(pool.page_ptr(leaf_b) as *const u64) };
    println!("\nwrote 0xB00B via shortcut slot 1; pool view reads {through_pool:#x}");

    // ── Updating an indirection = one mmap, no data copied ──────────────
    shortcut.set_slot(0, &handle, leaf_c).unwrap();
    let v = unsafe { *(shortcut.slot_ptr(0) as *const u64) };
    println!("remapped slot 0 to {leaf_c}; it now reads {v:#x} (no bytes moved)");

    println!(
        "\nmmap calls spent by the shortcut node in total: {}",
        shortcut.mmap_calls()
    );
    println!("pool stats: {:?}", pool.stats());
}
