//! Parallel read-only phases: multiple threads share `&ShortcutEh` and look
//! up concurrently via `get_ref`. Rust's aliasing rules make this sound —
//! no `&mut` (writer) can coexist with the shared borrows.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use taking_the_shortcut::exhash::{KvIndex, ShortcutEh};

#[test]
fn concurrent_readers_see_every_key() {
    let mut index = ShortcutEh::with_defaults();
    let n = 100_000u64;
    for k in 0..n {
        index.insert(k, k ^ 0xABCD);
    }
    assert!(index.wait_sync(Duration::from_secs(30)));

    let hits = AtomicU64::new(0);
    let readers = 4;
    std::thread::scope(|s| {
        for r in 0..readers {
            let index = &index; // shared borrow: no writes possible anywhere
            let hits = &hits;
            s.spawn(move || {
                let mut local = 0u64;
                // Each reader strides differently through the key space.
                let mut k = r as u64;
                while k < n {
                    if index.get_ref(k) == Some(k ^ 0xABCD) {
                        local += 1;
                    }
                    k += readers as u64;
                }
                hits.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(hits.load(Ordering::Relaxed), n);
    assert!(index.maint_error().is_none());
}

#[test]
fn get_ref_agrees_with_get() {
    let mut index = ShortcutEh::with_defaults();
    for k in 0..30_000u64 {
        index.insert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k);
    }
    index.wait_sync(Duration::from_secs(30));
    for k in 0..30_000u64 {
        let key = k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let via_ref = index.get_ref(key);
        let via_mut = index.get(key);
        assert_eq!(via_ref, via_mut, "key {k}");
        assert_eq!(index.get_ref(key ^ 0xF0F0), index.get(key ^ 0xF0F0));
    }
}

#[test]
fn readers_fall_back_while_out_of_sync() {
    // Build the index but never give the mapper a chance to catch up: the
    // shared-reference path must still answer via the traditional fallback.
    let mut index = ShortcutEh::new(taking_the_shortcut::exhash::ShortcutEhConfig {
        maint: taking_the_shortcut::core::MaintConfig {
            poll_interval: Duration::from_secs(3600), // effectively never
            ..Default::default()
        },
        ..Default::default()
    });
    for k in 0..20_000u64 {
        index.insert(k, k + 1);
    }
    std::thread::scope(|s| {
        let index = &index;
        for _ in 0..2 {
            s.spawn(move || {
                for k in 0..20_000u64 {
                    assert_eq!(index.get_ref(k), Some(k + 1));
                }
            });
        }
    });
}
