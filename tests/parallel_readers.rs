//! Parallel read-only phases through the redesigned API: multiple threads
//! share `&ShortcutIndex` / `&ShortcutEh` and call `Index::get` /
//! `Index::get_many` — which take `&self` — concurrently. Rust's aliasing
//! rules make this sound: no `&mut` (writer) can coexist with the shared
//! borrows, and the routing statistics are atomics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use taking_the_shortcut::{Index, ShortcutIndex};

#[test]
fn concurrent_readers_see_every_key() {
    let mut index = ShortcutIndex::with_defaults().unwrap();
    let n = 100_000u64;
    for k in 0..n {
        index.insert(k, k ^ 0xABCD).unwrap();
    }
    assert!(index.wait_sync(Duration::from_secs(30)));

    let hits = AtomicU64::new(0);
    let readers = 4;
    std::thread::scope(|s| {
        for r in 0..readers {
            let index = &index; // shared borrow: no writes possible anywhere
            let hits = &hits;
            s.spawn(move || {
                let mut local = 0u64;
                // Each reader strides differently through the key space.
                let mut k = r as u64;
                while k < n {
                    if index.get(k) == Some(k ^ 0xABCD) {
                        local += 1;
                    }
                    k += readers as u64;
                }
                hits.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(hits.load(Ordering::Relaxed), n);
    assert!(index.maint_error().is_none());
    // Reader traffic must be visible in the (atomic) routing counters.
    let s = index.stats();
    assert_eq!(
        s.index.shortcut_lookups + s.index.traditional_lookups,
        n,
        "every concurrent lookup must be accounted"
    );
}

#[test]
fn concurrent_batched_readers_see_every_key() {
    let mut index = ShortcutIndex::builder().capacity(60_000).build().unwrap();
    let n = 60_000u64;
    let entries: Vec<(u64, u64)> = (0..n).map(|k| (k, !k)).collect();
    index.insert_batch(&entries).unwrap();
    assert!(index.wait_sync(Duration::from_secs(30)));

    let hits = AtomicU64::new(0);
    let readers = 4;
    std::thread::scope(|s| {
        for r in 0..readers {
            let index = &index;
            let hits = &hits;
            s.spawn(move || {
                let mut local = 0u64;
                let keys: Vec<u64> = (0..n).filter(|k| k % readers == r).collect();
                for chunk in keys.chunks(512) {
                    // One seqlock ticket per chunk.
                    for (i, v) in index.get_many(chunk).into_iter().enumerate() {
                        if v == Some(!chunk[i]) {
                            local += 1;
                        }
                    }
                }
                hits.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(hits.load(Ordering::Relaxed), n);
    assert!(index.maint_error().is_none());
}

#[test]
fn readers_race_a_writer_free_index_through_the_trait_object() {
    // The same hammering, but through &dyn Index — the type a storage
    // engine would hold — to pin down that the trait's &self contract
    // composes with threads.
    let mut index = ShortcutIndex::with_defaults().unwrap();
    for k in 0..30_000u64 {
        index
            .insert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k)
            .unwrap();
    }
    index.wait_sync(Duration::from_secs(30));
    let dyn_index: &(dyn Index + Sync) = &index;
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(move || {
                for k in 0..30_000u64 {
                    let key = k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    assert_eq!(dyn_index.get(key), Some(k), "key {k}");
                }
            });
        }
    });
}

#[test]
fn get_many_agrees_with_get() {
    let mut index = ShortcutIndex::with_defaults().unwrap();
    for k in 0..30_000u64 {
        index
            .insert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k)
            .unwrap();
    }
    index.wait_sync(Duration::from_secs(30));
    let keys: Vec<u64> = (0..30_000u64)
        .map(|k| k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let batched = index.get_many(&keys);
    let miss_probes: Vec<u64> = keys.iter().map(|k| k ^ 0xF0F0).collect();
    let batched_misses = index.get_many(&miss_probes);
    for (i, &key) in keys.iter().enumerate() {
        assert_eq!(batched[i], index.get(key), "key index {i}");
        assert_eq!(
            batched_misses[i],
            index.get(miss_probes[i]),
            "miss probe {i}"
        );
    }
}

#[test]
fn sharded_writers_and_readers_run_concurrently() {
    // True multi-writer: 4 shards, one writer thread per shard going
    // through the shared-write API (`&self` + per-shard write locks),
    // racing 4 reader threads. Writers on different shards never contend;
    // a reader's hit must always be the exact value.
    let index = ShortcutIndex::builder()
        .capacity(80_000)
        .shards(2)
        .vma_budget(1_000_000)
        .build()
        .unwrap();
    assert_eq!(index.shard_count(), 4);
    let n = 80_000u64;
    // Partition the key space by owning shard: one writer thread each.
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); index.shard_count()];
    for k in 0..n {
        per_shard[index.shard_of(k)].push(k);
    }
    std::thread::scope(|s| {
        for keys in &per_shard {
            let index = &index;
            s.spawn(move || {
                for chunk in keys.chunks(1024) {
                    let batch: Vec<(u64, u64)> = chunk.iter().map(|&k| (k, k ^ 0xABCD)).collect();
                    index.insert_batch_shared(&batch).unwrap();
                }
            });
        }
        for r in 0..4u64 {
            let index = &index;
            s.spawn(move || {
                for k in (r..n).step_by(7) {
                    if let Some(v) = index.get(k) {
                        assert_eq!(v, k ^ 0xABCD, "racing reader saw a foreign value");
                    }
                }
            });
        }
    });
    assert_eq!(index.len() as u64, n);
    assert!(index.wait_sync(Duration::from_secs(30)));
    for k in 0..n {
        assert_eq!(index.get(k), Some(k ^ 0xABCD), "key {k}");
    }
    let s = index.stats();
    assert_eq!(s.shards, 4);
    assert_eq!(s.len as u64, n);
    assert!(index.maint_error().is_none());
}

#[test]
fn readers_fall_back_while_out_of_sync() {
    // Build the index but never give the mapper a chance to catch up: the
    // shared-reference path must still answer via the traditional fallback.
    let mut index = ShortcutIndex::builder()
        .poll_interval(Duration::from_secs(3600)) // effectively never
        .build()
        .unwrap();
    for k in 0..20_000u64 {
        index.insert(k, k + 1).unwrap();
    }
    std::thread::scope(|s| {
        let index = &index;
        for _ in 0..2 {
            s.spawn(move || {
                for k in 0..20_000u64 {
                    assert_eq!(index.get(k), Some(k + 1));
                }
                // Batched fallback too.
                let keys: Vec<u64> = (0..20_000u64).collect();
                for (k, v) in keys.iter().zip(index.get_many(&keys)) {
                    assert_eq!(v, Some(k + 1));
                }
            });
        }
    });
    // No sync-state assertion here: on a single-core host the mapper's
    // first drain can swallow the whole insert backlog in one pass and
    // end in sync despite the huge poll interval. What is deterministic
    // is that every lookup was answered and accounted on some path.
    let s = index.stats();
    assert_eq!(
        s.index.shortcut_lookups + s.index.traditional_lookups,
        2 * 2 * 20_000,
        "every lookup (2 threads x single+batched sweeps) must be accounted"
    );
}
