//! The sharded index end to end: proptest-generated interleavings of
//! inserts, removals, and lookups across 4 shards — applied by one
//! concurrent writer thread **per shard** while 4 reader threads hammer
//! the index — must agree with a sequential `ChainedHash` oracle; and a
//! shard driven deep enough to outgrow a shared VMA budget must never
//! suspend its siblings' shortcut maintenance (fair-share admission).

use proptest::prelude::*;
use std::time::Duration;
use taking_the_shortcut::exhash::{ChConfig, ChainedHash};
use taking_the_shortcut::{Index, ShortcutIndex};

/// Value derivation shared by index, oracle, and racing readers: with the
/// value a pure function of the key, a reader racing the writers can
/// assert every hit it sees is exact (misses are legitimate while the
/// owning writer has not reached that key yet).
fn val(k: u64) -> u64 {
    k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5
}

fn build() -> ShortcutIndex {
    ShortcutIndex::builder()
        .capacity(20_000)
        .shards(2) // 4 shards, one writer thread each
        .poll_interval(Duration::from_millis(1))
        // Private budget: isolate accounting from other tests sharing the
        // process-global budget (all 4 shards still share THIS budget).
        .vma_budget(1_000_000)
        .build()
        .unwrap()
}

fn oracle() -> ChainedHash {
    ChainedHash::try_new(ChConfig {
        table_slots: 1 << 12,
    })
    .unwrap()
}

/// One step of a generated interleaving. Keys are drawn from a small
/// domain so inserts, re-inserts, and removals of the same key collide
/// across ops (the interesting orderings).
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64),
    Remove(u64),
    Get(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            6 => (0u64..1500).prop_map(Op::Insert),
            2 => (0u64..1500).prop_map(Op::Remove),
            2 => (0u64..2000).prop_map(Op::Get),
        ],
        50..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Partition a generated op sequence by owning shard (keys route by
    // their top hash bits, so a key's ops all land in one partition and
    // keep their relative order). One writer thread per shard applies its
    // partition through the shared-write API while 4 reader threads race
    // them; afterwards the final state must equal a sequential replay
    // into the oracle — shard-local order is all the sequential replay
    // depends on, so the concurrent execution must be indistinguishable.
    #[test]
    fn concurrent_shard_writers_agree_with_a_sequential_oracle(ops in ops()) {
        let index = build();
        prop_assert_eq!(index.shard_count(), 4);

        // Scatter the sequence by owning shard, preserving relative order.
        let mut per_shard: Vec<Vec<Op>> = vec![Vec::new(); index.shard_count()];
        for &op in &ops {
            let k = match op {
                Op::Insert(k) | Op::Remove(k) | Op::Get(k) => k,
            };
            per_shard[index.shard_of(k)].push(op);
        }

        std::thread::scope(|s| {
            for shard_ops in &per_shard {
                let index = &index;
                s.spawn(move || {
                    for &op in shard_ops {
                        match op {
                            Op::Insert(k) => index.insert_shared(k, val(k)).unwrap(),
                            Op::Remove(k) => {
                                let got = index.remove_shared(k).unwrap();
                                if let Some(v) = got {
                                    assert_eq!(v, val(k), "remove({k}) returned a foreign value");
                                }
                            }
                            Op::Get(k) => {
                                if let Some(v) = index.get(k) {
                                    assert_eq!(v, val(k), "get({k}) returned a foreign value");
                                }
                            }
                        }
                    }
                });
            }
            // 4 readers race the writers over the whole key domain: every
            // hit must be exact, through both `get` and `get_many`.
            for r in 0..4u64 {
                let index = &index;
                s.spawn(move || {
                    let keys: Vec<u64> = (r * 500..r * 500 + 500).collect();
                    for pass in 0..3 {
                        for &k in &keys {
                            if let Some(v) = index.get(k) {
                                assert_eq!(v, val(k), "racing get({k}) pass {pass}");
                            }
                        }
                        for (i, got) in index.get_many(&keys).into_iter().enumerate() {
                            if let Some(v) = got {
                                assert_eq!(v, val(keys[i]), "racing get_many pass {pass}");
                            }
                        }
                    }
                });
            }
        });

        // Sequential replay: the oracle sees the ops in original order.
        // Keys never cross shards and shard-local order was preserved, so
        // the final states must coincide.
        let mut oracle = oracle();
        for &op in &ops {
            match op {
                Op::Insert(k) => oracle.insert(k, val(k)).unwrap(),
                Op::Remove(k) => {
                    oracle.remove(k).unwrap();
                }
                Op::Get(_) => {}
            }
        }
        for k in 0..2000u64 {
            prop_assert_eq!(index.get(k), oracle.get(k), "final state diverged at key {}", k);
        }
        let keys: Vec<u64> = (0..2000).collect();
        let want: Vec<Option<u64>> = keys.iter().map(|&k| oracle.get(k)).collect();
        prop_assert_eq!(index.get_many(&keys), want, "final get_many diverged");
        prop_assert_eq!(index.len(), oracle.len());
        prop_assert!(index.maint_error().is_none());
    }
}

/// Fair-share admission on a shared budget: drive one shard's directory
/// deep enough that its exact-depth rebuild cannot fit a small shared VMA
/// budget, while the sibling shards stay small. The siblings must keep
/// full shortcut service — in sync, never suspended — because the hot
/// shard's reservations may not eat into their guaranteed shares.
#[test]
fn deep_shard_cannot_suspend_its_siblings() {
    let index = ShortcutIndex::builder()
        .capacity(20_000)
        .shards(2)
        .poll_interval(Duration::from_millis(1))
        // Small shared budget: usable = 600 - headroom(37) = 563, so each
        // of the 4 fair shards is guaranteed ~140 mappings — plenty for
        // the small siblings, far too little for the hot shard's
        // scattered exact-depth directory (≥ 1024 slots).
        .vma_budget(600)
        .build()
        .unwrap();
    assert_eq!(index.shard_count(), 4);

    // Partition a key range by owning shard.
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); 4];
    for k in 0..200_000u64 {
        per_shard[index.shard_of(k)].push(k);
    }
    let hot = 0usize;

    // Small populations for the siblings, a deep directory for the hot
    // shard (~60k keys → ≥ 1024 directory slots at the default load
    // factor, scattered because compaction is off).
    for (shard, keys) in per_shard.iter().enumerate() {
        let take = if shard == hot { 60_000 } else { 300 };
        for &k in keys.iter().take(take) {
            index.insert_shared(k, val(k)).unwrap();
        }
    }

    // Let every mapper catch up (the hot shard may finish coarse or
    // suspended; the call returns false in that case, which is fine).
    let _ = index.as_sharded().wait_sync(Duration::from_secs(5));
    for i in 0..4 {
        if i == hot {
            continue;
        }
        let synced = index.with_shard(i, |s| s.wait_sync(Duration::from_secs(10)));
        assert!(synced, "sibling shard {i} never got back in sync");
    }

    // The budget is genuinely shared and fair-share is on for all shards.
    let stats = index.stats();
    assert_eq!(
        stats.vma.fair_pools, 4,
        "all shards must fair-share one budget"
    );
    assert!(stats.vma.fair_share > 0);

    // The invariant under test: no sibling was suspended by the hot
    // shard's appetite, and each still answers through its shortcut.
    for i in 0..4 {
        if i == hot {
            continue;
        }
        index.with_shard(i, |s| {
            assert!(
                !s.shortcut_suspended(),
                "sibling shard {i} suspended by the hot shard's reservations"
            );
            assert!(s.in_sync(), "sibling shard {i} out of sync");
            assert_eq!(
                s.maint_metrics().creates_skipped,
                0,
                "sibling shard {i} had rebuilds skipped"
            );
        });
    }

    // The hot shard itself must have felt the budget: its exact-depth
    // directory cannot fit its share, so it either published coarse,
    // deferred, or suspended — and its lookups still answer correctly.
    let hot_pressure = index.with_shard(hot, |s| {
        let m = s.maint_metrics();
        s.shortcut_suspended()
            || m.creates_coarse > 0
            || m.creates_skipped > 0
            || m.creates_deferred > 0
    });
    assert!(
        hot_pressure,
        "hot shard never hit the shared budget — test lost its teeth"
    );

    // Every answer stays correct on all shards, hot one included.
    for (shard, keys) in per_shard.iter().enumerate() {
        let take = if shard == hot { 60_000 } else { 300 };
        for &k in keys.iter().take(take).step_by(97) {
            assert_eq!(index.get(k), Some(val(k)), "key {k} on shard {shard}");
        }
    }
    assert!(index.maint_error().is_none());
}
