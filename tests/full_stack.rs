//! Cross-crate integration tests: the full stack (rewire → core → exhash)
//! exercised together, with the mapper thread live.

use std::collections::HashMap;
use std::time::Duration;
use taking_the_shortcut::core::{ShortcutNode, TraditionalNode};
use taking_the_shortcut::exhash::{EhConfig, ExtendibleHash, Index, ShortcutEh, ShortcutEhConfig};
use taking_the_shortcut::rewire::{PageIdx, PagePool, PoolConfig};

#[test]
fn shortcut_eh_against_oracle_with_live_mapper() {
    let mut index = ShortcutEh::with_defaults().unwrap();
    let mut oracle: HashMap<u64, u64> = HashMap::new();

    // Mixed stream: inserts, updates, lookups, deletes — interleaved so the
    // shortcut repeatedly goes out of and back into sync.
    let mut x = 0x243F_6A88_85A3_08D3u64; // xorshift state
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for i in 0..120_000u64 {
        let r = next();
        let key = r % 30_000; // dense key space -> plenty of updates/hits
        match r % 10 {
            0..=5 => {
                index.insert(key, i).expect("insert failed");
                oracle.insert(key, i);
            }
            6..=8 => {
                assert_eq!(
                    index.get(key),
                    oracle.get(&key).copied(),
                    "get({key}) at op {i}"
                );
            }
            _ => {
                assert_eq!(
                    index.remove(key).expect("remove failed"),
                    oracle.remove(&key),
                    "remove({key}) at op {i}"
                );
            }
        }
        if i % 10_000 == 0 {
            assert_eq!(index.len(), oracle.len());
        }
    }

    // Quiesce and verify everything once more, now through the shortcut.
    assert!(index.wait_sync(Duration::from_secs(30)));
    for (&k, &v) in &oracle {
        assert_eq!(index.get(k), Some(v), "final get({k})");
    }
    assert!(index.maint_error().is_none());
    let s = index.stats();
    assert!(s.shortcut_lookups > 0, "shortcut path never exercised");
    assert!(s.traditional_lookups > 0, "fallback path never exercised");
}

#[test]
fn eh_and_shortcut_eh_agree_exactly() {
    let mut eh = ExtendibleHash::try_new(EhConfig::default()).unwrap();
    let mut sceh = ShortcutEh::try_new(ShortcutEhConfig::default()).unwrap();
    for k in 0..50_000u64 {
        let key = k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        eh.insert(key, k).unwrap();
        sceh.insert(key, k).unwrap();
    }
    sceh.wait_sync(Duration::from_secs(30));
    for k in 0..50_000u64 {
        let key = k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        assert_eq!(eh.get(key), sceh.get(key), "key {k}");
        assert_eq!(eh.get(key ^ 1), sceh.get(key ^ 1), "miss probe {k}");
    }
    assert_eq!(eh.len(), sceh.len());
}

#[test]
fn traditional_and_shortcut_nodes_read_identical_leaves() {
    // Figure 2's setup as a correctness statement: both node kinds must
    // observe the same leaf bytes for every slot, including after leaf
    // mutations and slot remaps.
    let slots = 512;
    let mut pool = PagePool::new(PoolConfig {
        initial_pages: 0,
        min_growth_pages: slots,
        view_capacity_pages: slots + 64,
        ..PoolConfig::default()
    })
    .unwrap();
    let handle = pool.handle();
    let run = pool.alloc_run(slots).unwrap();
    for i in 0..slots {
        unsafe {
            *(pool.page_ptr(PageIdx(run.0 + i)) as *mut u64) = 7000 + i as u64;
        }
    }
    let mut trad = TraditionalNode::new(slots);
    let mut short = ShortcutNode::new_populated(slots).unwrap();
    for i in 0..slots {
        trad.set_slot(i, pool.page_ptr(PageIdx(run.0 + i)));
        short.set_slot(i, &handle, PageIdx(run.0 + i)).unwrap();
    }

    let read = |t: &TraditionalNode, s: &ShortcutNode, i: usize| -> (u64, u64) {
        unsafe { (*(t.get(i) as *const u64), *(s.slot_ptr(i) as *const u64)) }
    };
    for i in 0..slots {
        let (a, b) = read(&trad, &short, i);
        assert_eq!(a, b, "slot {i} diverged");
    }
    // Mutate a leaf through the pool view: both see it.
    unsafe {
        *(pool.page_ptr(PageIdx(run.0 + 42)) as *mut u64) = 1;
    }
    let (a, b) = read(&trad, &short, 42);
    assert_eq!(a, 1);
    assert_eq!(b, 1);
    // Remap slot 0 on both: still identical.
    trad.set_slot(0, pool.page_ptr(PageIdx(run.0 + 99)));
    short.set_slot(0, &handle, PageIdx(run.0 + 99)).unwrap();
    let (a, b) = read(&trad, &short, 0);
    assert_eq!(a, b);
    assert_eq!(a, 7099);
}

#[test]
fn vmsim_agrees_with_real_rewiring_on_remap_scripts() {
    // The same remap script applied to (a) the real OS substrate and
    // (b) the vmsim model must produce the same observable slot -> leaf
    // mapping. Leaves are identified by a stamp in their first word (real)
    // and by their file page (model).
    use taking_the_shortcut::vmsim::{AddressSpace, VirtAddr};

    let slots = 16usize;
    let leaves = 8usize;

    // Real side.
    let mut pool = PagePool::new(PoolConfig {
        initial_pages: leaves,
        view_capacity_pages: 64,
        ..PoolConfig::default()
    })
    .unwrap();
    let handle = pool.handle();
    let pages: Vec<PageIdx> = (0..leaves).map(|_| pool.alloc_page().unwrap()).collect();
    for (i, p) in pages.iter().enumerate() {
        unsafe {
            *(pool.page_ptr(*p) as *mut u64) = i as u64;
        }
    }
    let mut area = ShortcutNode::new(slots).unwrap();

    // Model side.
    let mut aspace = AddressSpace::new();
    let file = aspace.create_file();
    aspace.resize_file(file, leaves).unwrap();
    let addr = aspace.mmap_anon(slots);

    // Deterministic pseudo-random script.
    let mut x = 0xB7E1_5162_8AED_2A6Au64;
    for _ in 0..200 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let slot = (x % slots as u64) as usize;
        let leaf = ((x >> 8) % leaves as u64) as usize;
        area.set_slot(slot, &handle, pages[leaf]).unwrap();
        aspace
            .mmap_file_fixed(VirtAddr(addr.0 + (slot as u64) * 4096), 1, file, leaf, true)
            .unwrap();

        // Compare observable state across all slots.
        for s in 0..slots {
            let real: Option<u64> = area
                .slot_mapping(s)
                .map(|_| unsafe { *(area.slot_ptr(s) as *const u64) });
            let model: Option<u64> = match aspace
                .backing_of(VirtAddr(addr.0 + (s as u64) * 4096).vpn())
            {
                Some(taking_the_shortcut::vmsim::MapKind::File { page, .. }) => Some(page as u64),
                _ => None,
            };
            assert_eq!(real, model, "slot {s} diverged between OS and model");
        }
    }
}
