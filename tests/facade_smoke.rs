//! Smoke test for the `taking_the_shortcut` facade: every re-exported
//! module path resolves, and a trivial end-to-end round-trip works through
//! the facade alone (no direct `shortcut_*` dependencies).

use taking_the_shortcut::{core, exhash, rewire, vmsim};

#[test]
fn facade_reexports_resolve() {
    // One load-bearing item per re-exported crate: referencing them through
    // the facade fails to compile if a re-export goes missing or renames.
    let _page: rewire::PageIdx = rewire::PageIdx(0);
    let _policy = core::RoutePolicy::default();
    let _cfg = exhash::EhConfig::default();
    let _addr = vmsim::VirtAddr(0);
    assert!(rewire::page_size() >= 4096);
    assert_eq!(vmsim::PAGE_SIZE, 4096);
}

#[test]
fn shortcut_node_round_trip_through_facade() {
    let mut pool = rewire::PagePool::new(rewire::PoolConfig {
        initial_pages: 4,
        view_capacity_pages: 64,
        ..rewire::PoolConfig::default()
    })
    .unwrap();
    let handle = pool.handle();
    let leaf = pool.alloc_page().unwrap();
    unsafe {
        *(pool.page_ptr(leaf) as *mut u64) = 0xC1D3_2024;
    }

    let mut node = core::ShortcutNode::new(2).unwrap();
    node.set_slot(0, &handle, leaf).unwrap();
    let got = unsafe { *(node.slot_ptr(0) as *const u64) };
    assert_eq!(got, 0xC1D3_2024, "shortcut slot must alias the pool page");
}

#[test]
fn extendible_hash_round_trip_through_facade() {
    use exhash::Index;

    let mut eh = exhash::ExtendibleHash::try_new(exhash::EhConfig::default()).unwrap();
    for k in 0..1000u64 {
        eh.insert(k, k * 7).unwrap();
    }
    assert_eq!(eh.len(), 1000);
    for k in 0..1000u64 {
        assert_eq!(eh.get(k), Some(k * 7));
    }
    assert_eq!(eh.remove(500).unwrap(), Some(3500));
    assert_eq!(eh.get(500), None);
    assert_eq!(eh.len(), 999);
}

#[test]
fn shortcut_index_round_trip_through_facade() {
    let mut idx = taking_the_shortcut::ShortcutIndex::builder()
        .capacity(2_000)
        .build()
        .unwrap();
    for k in 0..2000u64 {
        idx.insert(k, !k).unwrap();
    }
    idx.wait_sync(std::time::Duration::from_secs(5));
    for k in 0..2000u64 {
        assert_eq!(idx.get(k), Some(!k));
    }
    let s = idx.stats();
    assert_eq!(s.len, 2000);
    assert!(s.versions.0 > 0, "structural versions must have advanced");
    assert!(
        s.rewire.pages_allocated > 0,
        "pool counters must be merged into the snapshot"
    );
    assert!(idx.maint_error().is_none());
}

#[test]
fn index_trait_covers_every_scheme() {
    // The one remaining index surface (the 0.2.0 `KvIndex` shim and the
    // panicking constructors were removed in 0.3.0): shared-reader gets,
    // fallible writes, for all five schemes.
    fn roundtrip<T: exhash::Index>(t: &mut T) {
        t.insert(1, 11).unwrap();
        t.insert(2, 22).unwrap();
        assert_eq!(t.get(1), Some(11));
        assert_eq!(t.remove(2).unwrap(), Some(22));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
    roundtrip(&mut exhash::HashTable::with_defaults().unwrap());
    roundtrip(&mut exhash::IncrementalHashTable::with_defaults().unwrap());
    roundtrip(&mut exhash::ChainedHash::try_new(exhash::ChConfig { table_slots: 64 }).unwrap());
    roundtrip(&mut exhash::ExtendibleHash::with_defaults().unwrap());
    roundtrip(&mut exhash::ShortcutEh::with_defaults().unwrap());
}

#[test]
fn vmsim_round_trip_through_facade() {
    let mut aspace = vmsim::AddressSpace::new();
    let addr = aspace.mmap_anon(4);
    let mut mmu = vmsim::Mmu::with_defaults();
    let out = mmu.access(&mut aspace, addr).unwrap();
    assert!(out.ns > 0.0, "an access must cost something");
    assert!(mmu.stats.total_accesses() > 0);
}
