//! Hugepage backing is **opt-in with graceful degradation**: requesting
//! 2 MB hugetlb-backed slots on a host without reserved hugepages (the
//! common CI / sandbox case, `/proc/sys/vm/nr_hugepages == 0`) must fall
//! back to plain 4 KB-page slots at pool creation — same answers, same
//! layout arithmetic, a visible `StatsSnapshot` flag — never a SIGBUS or
//! an `mmap` error at first access.

use std::time::Duration;
use taking_the_shortcut::{ShortcutIndex, SlotLayout};

fn reserved_hugepages() -> usize {
    std::fs::read_to_string("/proc/sys/vm/nr_hugepages")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

#[test]
fn huge_request_without_hugepages_falls_back_to_4k_slots() {
    // k = 9: 2 MB slots, the hugetlb boundary.
    let mut index = ShortcutIndex::builder()
        .capacity(200_000)
        .poll_interval(Duration::from_millis(1))
        .vma_budget(1_000_000)
        .slot_pages(SlotLayout::MAX_SLOT_POWER)
        .huge_pages(true)
        .build()
        .expect("huge request must never fail pool creation");

    let s = index.stats();
    assert!(s.huge_pages_requested);
    assert_eq!(s.slot_bytes, 2 << 20);
    assert_eq!(s.pages_per_slot, 512);
    if reserved_hugepages() == 0 {
        assert!(
            !s.huge_pages_active,
            "no reserved hugepages: the pool must report the 4 KB fallback"
        );
    }
    // A 2 MB bucket holds >100k entries; this workload fits in a handful
    // of buckets and must behave exactly like any other layout.
    let n = 50_000u64;
    let entries: Vec<(u64, u64)> = (0..n).map(|k| (k, k.rotate_left(17))).collect();
    index.insert_batch(&entries).unwrap();
    assert!(index.wait_sync(Duration::from_secs(30)), "never synced");
    for k in (0..n).step_by(97) {
        assert_eq!(index.get(k), Some(k.rotate_left(17)), "key {k}");
    }
    let keys: Vec<u64> = (0..1_000).collect();
    let got = index.get_many(&keys);
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(got[i], Some(k.rotate_left(17)));
    }
    assert!(index.maint_error().is_none());
    assert_eq!(index.stats().bucket_capacity, s.bucket_capacity);
    assert!(
        s.bucket_capacity > 100_000,
        "2 MB buckets must hold >100k entries, got {}",
        s.bucket_capacity
    );
}

#[test]
fn huge_request_below_boundary_is_plain_with_flag() {
    // k = 2 (16 KB) is below the 2 MB boundary: the request is recorded,
    // hugetlb stays off (MADV_HUGEPAGE advice only), everything works.
    let mut index = ShortcutIndex::builder()
        .capacity(50_000)
        .poll_interval(Duration::from_millis(1))
        .vma_budget(1_000_000)
        .slot_pages(2)
        .huge_pages(true)
        .build()
        .unwrap();
    let s = index.stats();
    assert!(s.huge_pages_requested);
    assert!(!s.huge_pages_active);
    assert_eq!(s.slot_bytes, 16 * 1024);
    for k in 0..20_000u64 {
        index.insert(k, !k).unwrap();
    }
    assert!(index.wait_sync(Duration::from_secs(30)));
    for k in (0..20_000u64).step_by(61) {
        assert_eq!(index.get(k), Some(!k));
    }
}

#[test]
fn oversized_slot_power_is_a_typed_config_error() {
    let err = match ShortcutIndex::builder()
        .capacity(1_000)
        .slot_pages(SlotLayout::MAX_SLOT_POWER + 1)
        .build()
    {
        Err(e) => e,
        Ok(_) => panic!("slot power past the 2 MB boundary must be rejected"),
    };
    let msg = err.to_string();
    assert!(msg.contains("slot power"), "unexpected error: {msg}");
}
