//! Lifecycle of retired shortcut directories: after repeated directory
//! doublings the mapping count must plateau (retired areas reclaimed once
//! readers drain) instead of growing monotonically as in the seed, and a
//! small injected VMA budget must suspend the shortcut gracefully instead
//! of leaking mappings until `vm.max_map_count` kills the process.

use std::time::{Duration, Instant};
use taking_the_shortcut::{ShortcutIndex, StatsSnapshot};

/// Insert `chunk`-sized batches until the index reports at least `target`
/// doublings, pacing with `wait_sync` so the mapper applies (rather than
/// supersedes) intermediate directories. Returns the number of entries.
fn grow_to_doublings(index: &mut ShortcutIndex, target: u64, chunk: u64) -> u64 {
    let mut k = 0u64;
    while index.stats().index.doublings < target {
        index
            .insert_batch(
                &(k..k + chunk)
                    .map(|x| (x, x.wrapping_mul(7)))
                    .collect::<Vec<_>>(),
            )
            .expect("insert failed");
        k += chunk;
        if !index.shortcut_suspended() {
            let _ = index.wait_sync(Duration::from_secs(30));
        }
        assert!(k < 10_000_000, "never reached {target} doublings");
    }
    k
}

/// Poll until no retired areas remain (the mapper reclaims on poll ticks).
fn drain_retired(index: &ShortcutIndex, timeout: Duration) -> StatsSnapshot {
    let deadline = Instant::now() + timeout;
    loop {
        let s = index.stats();
        if s.vma.retired_areas == 0 || Instant::now() > deadline {
            return s;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn mapping_count_plateaus_after_doublings() {
    let mut index = ShortcutIndex::builder()
        .capacity(300_000)
        .poll_interval(Duration::from_millis(1))
        // Private budget: `in_use` assertions must not see the charges of
        // other tests running concurrently against the global budget.
        .vma_budget(1_000_000)
        .build()
        .unwrap();

    // Small chunks: several early doublings land inside the first chunks
    // (and are superseded in one create), but from depth ~3 on each
    // doubling gets its own synced window and therefore its own
    // retire-and-reclaim cycle.
    let n = grow_to_doublings(&mut index, 8, 100);
    assert!(index.wait_sync(Duration::from_secs(60)), "never synced");

    // With no live readers, every retired directory must drain.
    let s = drain_retired(&index, Duration::from_secs(10));
    assert!(s.index.doublings >= 8);
    assert_eq!(s.vma.retired_areas, 0, "retired areas leaked: {:?}", s.vma);
    assert!(s.vma.areas_retired >= 5, "{:?}", s.vma);
    assert_eq!(
        s.vma.areas_retired, s.vma.areas_reclaimed,
        "every retired directory must be reclaimed: {:?}",
        s.vma
    );

    // Plateau: the live mapping estimate is bounded by the current
    // directory (≤ one VMA per slot) plus small constants — NOT by the
    // sum of all directories ever built (≈ 2x slots), which is what the
    // seed's keep-forever policy accumulated.
    let dir_slots = 1u64 << s.global_depth;
    assert!(
        s.vma.in_use <= dir_slots + 16,
        "mapping count did not plateau: {} VMAs for a {}-slot directory",
        s.vma.in_use,
        dir_slots
    );

    // And lookups still answer correctly through whatever path routing picks.
    for k in (0..n).step_by(997) {
        assert_eq!(index.get(k), Some(k.wrapping_mul(7)), "key {k}");
    }
}

#[test]
fn forced_dekker_fallback_reclaims_exactly_like_the_default() {
    // The fallback half of the pin-strategy matrix, end to end through
    // the facade: a builder-forced Dekker index (what membarrier-less
    // kernels get) must show the same retire-and-reclaim lifecycle as the
    // auto-detected default — every retired directory reclaimed, mapping
    // count plateaued, lookups correct.
    use taking_the_shortcut::PinStrategy;
    let mut index = ShortcutIndex::builder()
        .capacity(200_000)
        .poll_interval(Duration::from_millis(1))
        .vma_budget(1_000_000) // private: isolate `in_use` accounting
        .pin_strategy(PinStrategy::Dekker)
        .build()
        .unwrap();
    assert_eq!(index.stats().pin_strategy, PinStrategy::Dekker);

    let n = grow_to_doublings(&mut index, 6, 100);
    assert!(index.wait_sync(Duration::from_secs(60)), "never synced");
    let s = drain_retired(&index, Duration::from_secs(10));
    assert_eq!(s.vma.retired_areas, 0, "retired areas leaked: {:?}", s.vma);
    assert!(s.vma.areas_retired >= 3, "{:?}", s.vma);
    assert_eq!(
        s.vma.areas_retired, s.vma.areas_reclaimed,
        "every retired directory must be reclaimed: {:?}",
        s.vma
    );
    let dir_slots = 1u64 << s.global_depth;
    assert!(
        s.vma.in_use <= dir_slots + 16,
        "mapping count did not plateau under Dekker: {} VMAs for {} slots",
        s.vma.in_use,
        dir_slots
    );
    for k in (0..n).step_by(991) {
        assert_eq!(index.get(k), Some(k.wrapping_mul(7)), "key {k}");
    }
}

#[test]
fn plateau_scales_down_with_slot_size() {
    // Same entries, 2^k-page slots: buckets hold ~2^k times more entries,
    // the directory is ~2^k times shallower, and the post-reclamation
    // mapping plateau must scale down accordingly. Assert ≥ 2x at k = 2
    // (the exact ratio is ~4x, but the doubling quantizes depths).
    let build = |k: u32| {
        ShortcutIndex::builder()
            .capacity(300_000)
            .poll_interval(Duration::from_millis(1))
            .vma_budget(1_000_000) // private: isolate `in_use` accounting
            .slot_pages(k)
            .build()
            .unwrap()
    };
    let n = 250_000u64;
    let fill = |index: &mut ShortcutIndex| {
        let mut k = 0u64;
        while k < n {
            index
                .insert_batch(&(k..k + 5_000).map(|x| (x, x ^ 0xDEAD)).collect::<Vec<_>>())
                .expect("insert failed");
            k += 5_000;
            let _ = index.wait_sync(Duration::from_secs(30));
        }
    };
    let mut base = build(0);
    let mut big = build(2);
    fill(&mut base);
    fill(&mut big);
    assert!(base.wait_sync(Duration::from_secs(60)));
    assert!(big.wait_sync(Duration::from_secs(60)));
    let sb = drain_retired(&base, Duration::from_secs(10));
    let sg = drain_retired(&big, Duration::from_secs(10));
    assert_eq!(sg.len, sb.len);
    assert_eq!(sg.pages_per_slot, 4);
    assert!(
        sg.global_depth + 2 <= sb.global_depth,
        "k=2 directory not shallower: {} vs {}",
        sg.global_depth,
        sb.global_depth
    );
    assert!(
        sg.vma.live_vmas() * 2 <= sb.vma.live_vmas(),
        "plateau did not scale with the slot size: k=0 {} vs k=2 {} live VMAs",
        sb.vma.live_vmas(),
        sg.vma.live_vmas()
    );
    // Both answer everything.
    for k in (0..n).step_by(997) {
        assert_eq!(big.get(k), Some(k ^ 0xDEAD), "key {k}");
    }
}

#[test]
fn growth_without_reclamation_accumulates_retired_areas() {
    // A/B the knob on identical workloads: `reclamation(false)` restores
    // the seed's keep-everything-mapped behavior, so its mapping estimate
    // must exceed the reclaiming index's by at least the retired
    // directories the latter gave back (each ≥ 1 VMA).
    let build = |reclaim: bool| {
        ShortcutIndex::builder()
            .capacity(300_000)
            .poll_interval(Duration::from_millis(1))
            .reclamation(reclaim)
            .vma_budget(1_000_000) // private: isolate `in_use` accounting
            .build()
            .unwrap()
    };
    let mut leaky = build(false);
    let mut tidy = build(true);
    grow_to_doublings(&mut leaky, 8, 100);
    grow_to_doublings(&mut tidy, 8, 100);
    assert!(leaky.wait_sync(Duration::from_secs(60)));
    assert!(tidy.wait_sync(Duration::from_secs(60)));
    let tidy_stats = drain_retired(&tidy, Duration::from_secs(10));
    let leaky_stats = leaky.stats();

    // Legacy mode never hands areas to the pool's retire list.
    assert_eq!(leaky_stats.vma.areas_retired, 0);
    assert_eq!(leaky_stats.vma.areas_reclaimed, 0);
    assert!(tidy_stats.vma.areas_reclaimed >= 5);
    // Identical workload and final directory (same keys, same sync
    // points), but the legacy engine still holds every superseded
    // directory it applied — its mapping footprint must exceed the
    // reclaiming index's.
    assert_eq!(leaky_stats.global_depth, tidy_stats.global_depth);
    assert!(
        leaky_stats.vma.in_use > tidy_stats.vma.in_use,
        "legacy {:?} vs reclaiming {:?}",
        leaky_stats.vma,
        tidy_stats.vma
    );
}

#[test]
fn tiny_budget_suspends_instead_of_dying() {
    // Simulate a kernel with a ~300-mapping budget (the stress CI job's
    // configuration): growth must continue past the point where the
    // directory stops fitting, with the shortcut suspended and the
    // mapping estimate bounded — the seed died in mmap(ENOMEM) here.
    let mut index = ShortcutIndex::builder()
        .capacity(300_000)
        .poll_interval(Duration::from_millis(1))
        .vma_budget(300)
        .build()
        .unwrap();
    let n = grow_to_doublings(&mut index, 10, 2_000);

    assert!(index.shortcut_suspended(), "budget never suspended");
    assert!(index.maint_error().is_none(), "{:?}", index.maint_error());
    let s = drain_retired(&index, Duration::from_secs(10));
    assert!(s.maint.creates_skipped > 0);
    assert!(s.vma.in_use <= s.vma.limit, "budget exceeded: {:?}", s.vma);
    assert_eq!(s.vma.retired_areas, 0, "retired areas leaked: {:?}", s.vma);

    // Every answer still correct via the traditional directory.
    for k in (0..n).step_by(991) {
        assert_eq!(index.get(k), Some(k.wrapping_mul(7)), "key {k}");
    }
    let keys: Vec<u64> = (0..1_000).collect();
    let got = index.get_many(&keys);
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(got[i], Some(k.wrapping_mul(7)));
    }
}
