//! Directory-order physical compaction, end to end: relocating bucket
//! pages out from under a live `ShortcutIndex` must never change an
//! answer (checked against a `ChainedHash` oracle, with 4 concurrent
//! reader threads hammering the index between mutation phases), and each
//! full pass must bring the planned-VMA layout estimate down to its
//! fan-in-determined ideal.

use proptest::prelude::*;
use std::time::Duration;
use taking_the_shortcut::exhash::{ChConfig, ChainedHash};
use taking_the_shortcut::{CompactionPolicy, Index, ShortcutIndex};

fn build(policy: CompactionPolicy, slot_power: u32) -> ShortcutIndex {
    ShortcutIndex::builder()
        .capacity(150_000)
        .poll_interval(Duration::from_millis(1))
        // Private budget: isolate `in_use` accounting from other tests
        // sharing the process-global budget.
        .vma_budget(1_000_000)
        .compaction(policy)
        .slot_pages(slot_power)
        .build()
        .unwrap()
}

fn oracle() -> ChainedHash {
    ChainedHash::try_new(ChConfig {
        table_slots: 1 << 12,
    })
    .unwrap()
}

/// Value derivation shared by index and oracle.
fn val(k: u64) -> u64 {
    k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5
}

/// One mutation-or-check step of the interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Insert the next `n` keys (batched — drives splits and doublings,
    /// and steps any in-flight incremental plan per entry).
    Insert(usize),
    /// Remove every `stride`-th key inserted so far.
    Remove(usize),
    /// Explicit full compaction pass.
    Compact,
    /// 4 concurrent reader threads verify a sample against the oracle.
    ReadPhase,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            5 => (64usize..1200).prop_map(Op::Insert),
            1 => (7usize..31).prop_map(Op::Remove),
            2 => Just(Op::Compact),
            2 => Just(Op::ReadPhase),
        ],
        4..24,
    )
}

fn policies() -> impl Strategy<Value = CompactionPolicy> {
    prop_oneof![
        Just(CompactionPolicy::disabled()),
        Just(CompactionPolicy::on()),
        Just(CompactionPolicy {
            on_rebuild: false,
            background_moves: 4,
            trigger_fraction: 0.25,
        }),
    ]
}

/// Spawn 4 reader threads over `&index`, each checking every sampled key
/// (plus guaranteed misses) against the oracle's expected values, through
/// both `get` and `get_many`.
fn read_phase(index: &ShortcutIndex, oracle: &ChainedHash, next_key: u64) {
    let step = (next_key / 256).max(1);
    let keys: Vec<u64> = (0..next_key)
        .step_by(step as usize)
        .chain([next_key + 1, next_key + 1_000_003])
        .collect();
    let expected: Vec<Option<u64>> = keys.iter().map(|&k| oracle.get(k)).collect();
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for (k, want) in keys.iter().zip(&expected) {
                    assert_eq!(index.get(*k), *want, "key {k}");
                }
                assert_eq!(index.get_many(&keys), expected, "get_many diverged");
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Interleave inserts (→ splits, doublings), removals, explicit
    // compaction passes, and background compaction ticks against 4
    // concurrent reader threads; every lookup must match the chained-hash
    // oracle, and after each full compaction the layout estimate must
    // have dropped to the ideal (never increased). Runs at both the
    // paper's 4 KB slots (k = 0) and 16 KB slots (k = 2): relocation,
    // the VMA closed forms, and the published-directory arithmetic must
    // be layout-independent.
    #[test]
    fn relocation_never_changes_an_answer(
        ops in ops(),
        policy in policies(),
        slot_power in prop_oneof![Just(0u32), Just(2u32)],
    ) {
        let mut index = build(policy, slot_power);
        let mut oracle = oracle();
        let mut next_key = 0u64;

        for op in ops {
            match op {
                Op::Insert(n) => {
                    let batch: Vec<(u64, u64)> =
                        (next_key..next_key + n as u64).map(|k| (k, val(k))).collect();
                    index.insert_batch(&batch).unwrap();
                    for &(k, v) in &batch {
                        oracle.insert(k, v).unwrap();
                    }
                    next_key += n as u64;
                }
                Op::Remove(stride) => {
                    for k in (0..next_key).step_by(stride) {
                        let got = index.remove(k).unwrap();
                        let want = oracle.remove(k).unwrap();
                        prop_assert_eq!(got, want, "remove({}) diverged", k);
                    }
                }
                Op::Compact => {
                    let before = index.layout_vmas().unwrap();
                    let out = index.compact().unwrap();
                    prop_assert_eq!(out.vmas_before, before);
                    // Monotone non-increasing across the pass, and exactly
                    // the fan-in-determined ideal afterwards.
                    prop_assert!(out.vmas_after <= out.vmas_before);
                    prop_assert_eq!(out.vmas_after, index.ideal_layout_vmas());
                    prop_assert_eq!(index.layout_vmas().unwrap(), out.vmas_after);
                }
                Op::ReadPhase => read_phase(&index, &oracle, next_key),
            }
        }

        // Final full verification: every key ever touched, plus misses.
        assert!(index.wait_sync(Duration::from_secs(30)), "never synced");
        read_phase(&index, &oracle, next_key);
        prop_assert_eq!(index.len(), oracle.len());
        assert!(index.maint_error().is_none());
        let stats = index.stats();
        prop_assert_eq!(stats.pages_per_slot, 1usize << slot_power);
        let vma = stats.vma;
        prop_assert!(vma.in_use <= vma.limit, "budget exceeded: {:?}", vma);
    }
}

/// The headline acceptance number: compacting a mature directory (fan-in
/// near 1, scattered by split-order allocation) collapses the live VMA
/// estimate by at least 10x at unchanged depth.
#[test]
fn compaction_collapses_live_vmas_by_10x() {
    let mut index = ShortcutIndex::builder()
        .capacity(400_000)
        .poll_interval(Duration::from_millis(1))
        .vma_budget(1_000_000)
        .slot_pages(0)
        .build()
        .unwrap();

    // Grow until the directory is mature: deep enough to matter and late
    // enough in its depth's life that fan-in approaches 1 (right before
    // the next doubling) — the point where directory order pays most.
    let mut k = 0u64;
    loop {
        let batch: Vec<(u64, u64)> = (k..k + 10_000).map(|x| (x, val(x))).collect();
        index.insert_batch(&batch).unwrap();
        k += 10_000;
        let s = index.stats();
        if s.global_depth >= 11 && s.avg_fanin <= 1.10 {
            break;
        }
        assert!(k < 3_000_000, "never reached a mature directory");
    }
    assert!(index.wait_sync(Duration::from_secs(60)), "never synced");

    // Settle retired directories so `live ≈ in_use` before measuring.
    let drain = |index: &ShortcutIndex| {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while index.stats().vma.retired_areas > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        index.stats()
    };
    let before = drain(&index);
    let depth_before = before.global_depth;
    let live_before = before.vma.live_vmas();
    let layout_before = index.layout_vmas().unwrap();

    let out = index.compact().unwrap();
    assert!(
        index.wait_sync(Duration::from_secs(60)),
        "rebuild never applied"
    );
    let after = drain(&index);

    assert_eq!(after.global_depth, depth_before, "depth must not change");
    assert_eq!(out.vmas_before, layout_before);
    assert_eq!(out.vmas_after, index.ideal_layout_vmas());
    assert!(
        after.vma.live_vmas() * 10 <= live_before,
        "live VMAs only dropped {} -> {} (layout {} -> {})",
        live_before,
        after.vma.live_vmas(),
        out.vmas_before,
        out.vmas_after
    );
    assert!(after.maint.pages_moved > 0);
    assert_eq!(after.maint.compactions, 1);

    // Everything still answers, shortcut-served once synced.
    for key in (0..k).step_by(4_093) {
        assert_eq!(index.get(key), Some(val(key)), "key {key}");
    }
    assert!(index.maint_error().is_none());
}
