//! Failure injection across crate boundaries: exhausted pools, bogus
//! maintenance requests, invalid rewirings — errors must surface cleanly
//! and never corrupt index answers.

use std::time::Duration;
use taking_the_shortcut::core::{
    MaintConfig, MaintRequest, Maintainer, MapperEngine, ShortcutNode,
};
use taking_the_shortcut::rewire::{Error, PageIdx, PagePool, PinStrategy, PoolConfig, VirtArea};

#[test]
fn pool_exhaustion_is_an_error_not_a_crash() {
    let mut pool = PagePool::new(PoolConfig {
        initial_pages: 2,
        min_growth_pages: 1,
        view_capacity_pages: 4,
        ..PoolConfig::default()
    })
    .unwrap();
    let mut held = Vec::new();
    loop {
        match pool.alloc_page() {
            Ok(p) => held.push(p),
            Err(Error::BadResize { current, .. }) => {
                assert_eq!(current, 4);
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert_eq!(held.len(), 4);
    // Freeing makes allocation possible again.
    pool.free_page(held.pop().unwrap()).unwrap();
    assert!(pool.alloc_page().is_ok());
}

#[test]
fn rewiring_beyond_the_file_is_rejected_up_front() {
    let pool = PagePool::new(PoolConfig {
        initial_pages: 2,
        view_capacity_pages: 8,
        ..PoolConfig::default()
    })
    .unwrap();
    let handle = pool.handle();
    let mut area = VirtArea::reserve(1).unwrap();
    // Offset far past EOF: must fail as InvalidArg, not SIGBUS later.
    let err = area.rewire(0, &handle, PageIdx(1000)).unwrap_err();
    assert!(matches!(err, Error::InvalidArg { .. }), "{err}");
}

#[test]
fn mapper_surfaces_bad_requests_as_errors() {
    let pool = PagePool::new(PoolConfig {
        initial_pages: 2,
        view_capacity_pages: 8,
        ..PoolConfig::default()
    })
    .unwrap();
    let maint = Maintainer::spawn(
        pool.handle(),
        MaintConfig {
            poll_interval: Duration::from_millis(1),
            ..MaintConfig::default()
        },
    );
    let v = maint.state().bump_traditional();
    // Create referencing a pool page that does not exist.
    maint.submit(MaintRequest::Create {
        slots: 2,
        assignments: vec![(0, PageIdx(0)), (1, PageIdx(12345))],
        version: v,
    });
    // The mapper must record the failure (and stop), never publish sync.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while maint.error().is_none() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let err = maint.error().expect("mapper swallowed the failure");
    assert!(matches!(err, Error::InvalidArg { .. }), "{err}");
    assert!(!maint.state().in_sync());
}

#[test]
fn shortcut_node_bounds_are_enforced() {
    let mut pool = PagePool::new(PoolConfig {
        initial_pages: 2,
        view_capacity_pages: 8,
        ..PoolConfig::default()
    })
    .unwrap();
    let handle = pool.handle();
    let leaf = pool.alloc_page().unwrap();
    let mut node = ShortcutNode::new(2).unwrap();
    assert!(node.set_slot(2, &handle, leaf).is_err());
    assert!(node.set_run(1, &handle, leaf, 2).is_err());
    assert!(node.clear_slot(5).is_err());
    // In-bounds still works after the failed attempts.
    node.set_slot(1, &handle, leaf).unwrap();
    assert_eq!(node.slot_mapping(1), Some(leaf));
}

#[test]
fn double_free_and_foreign_pointer_detection() {
    let mut pool = PagePool::new(PoolConfig {
        initial_pages: 2,
        view_capacity_pages: 8,
        ..PoolConfig::default()
    })
    .unwrap();
    let p = pool.alloc_page().unwrap();
    pool.free_page(p).unwrap();
    assert!(matches!(
        pool.free_page(p),
        Err(Error::BadPageRef {
            what: "double free",
            ..
        })
    ));
    // A pointer that is not inside the pool view is rejected.
    let foreign = Box::new(0u8);
    assert!(pool.page_of_ptr(&*foreign as *const u8).is_err());
}

#[test]
fn reclamation_never_unmaps_under_a_stale_read_ticket() {
    // A reader obtains a seqlock ticket, is "preempted" mid-read, and a
    // directory rebuild retires the area its ticket points into. As long
    // as the reader's pin is outstanding, reclamation must leave the
    // retired area mapped (the stale read completes, then gets discarded
    // by ticket validation); once the pin drops, the area is reclaimed.
    use std::sync::Arc;
    use taking_the_shortcut::core::{MaintMetrics, SharedDirectoryState};

    let mut pool = PagePool::new(PoolConfig {
        initial_pages: 8,
        view_capacity_pages: 64,
        ..PoolConfig::default()
    })
    .unwrap();
    let handle = pool.handle();
    let state = Arc::new(SharedDirectoryState::new());
    let metrics = Arc::new(MaintMetrics::default());
    let mut engine = MapperEngine::new(
        handle.clone(),
        Arc::clone(&state),
        metrics,
        MaintConfig::default(),
    );
    let l0 = pool.alloc_page().unwrap();
    let l1 = pool.alloc_page().unwrap();
    unsafe {
        *(pool.page_ptr(l0) as *mut u64) = 0xDEAD_0001;
    }

    let v1 = state.bump_traditional();
    engine
        .apply_batch(vec![MaintRequest::Create {
            slots: 1,
            assignments: vec![(0, l0)],
            version: v1,
        }])
        .unwrap();

    // Reader pins and takes its ticket, then stalls before dereferencing.
    let pin = handle.retire_list().pin();
    let ticket = state.begin_read().expect("in sync");

    // A rebuild retires the 1-slot directory under the stalled reader.
    let v2 = state.bump_traditional();
    engine
        .apply_batch(vec![MaintRequest::Create {
            slots: 2,
            assignments: vec![(0, l0), (1, l1)],
            version: v2,
        }])
        .unwrap();
    assert_eq!(handle.retire_list().retired_count(), 1);

    // Reclamation runs while the stale ticket is outstanding: it must not
    // unmap the area the ticket points into.
    assert_eq!(engine.reclaim_tick().unwrap(), 0);
    assert_eq!(handle.retire_list().retired_count(), 1);

    // The stalled reader resumes: the load must succeed (stale but
    // mapped), and validation must discard the result.
    let stale = unsafe { *(ticket.base as *const u64) };
    assert_eq!(stale, 0xDEAD_0001);
    assert!(!state.still_valid(ticket), "raced read must be discarded");
    drop(pin);

    // With the reader drained, the next tick reclaims the retired area.
    assert_eq!(engine.reclaim_tick().unwrap(), 1);
    assert_eq!(handle.retire_list().retired_count(), 0);
    assert_eq!(handle.vma_snapshot().areas_reclaimed, 1);
}

#[test]
fn stale_ticket_protection_is_identical_under_forced_dekker_fallback() {
    // The ENOSYS/unsupported-kernel path: a pool configured with the
    // Dekker fallback (what auto-detection degrades to when membarrier
    // registration fails) must give stale read tickets exactly the
    // protection the asymmetric strategy gives them — same deferral under
    // a pin, same reclaim once drained.
    use std::sync::Arc;
    use taking_the_shortcut::core::{MaintMetrics, SharedDirectoryState};

    let mut pool = PagePool::new(PoolConfig {
        initial_pages: 8,
        view_capacity_pages: 64,
        pin_strategy: Some(PinStrategy::Dekker),
        ..PoolConfig::default()
    })
    .unwrap();
    let handle = pool.handle();
    assert_eq!(handle.retire_list().pin_strategy(), PinStrategy::Dekker);
    let state = Arc::new(SharedDirectoryState::new());
    let metrics = Arc::new(MaintMetrics::default());
    let mut engine = MapperEngine::new(
        handle.clone(),
        Arc::clone(&state),
        metrics,
        MaintConfig::default(),
    );
    let l0 = pool.alloc_page().unwrap();
    let l1 = pool.alloc_page().unwrap();
    unsafe {
        *(pool.page_ptr(l0) as *mut u64) = 0xDEAD_0002;
    }

    let v1 = state.bump_traditional();
    engine
        .apply_batch(vec![MaintRequest::Create {
            slots: 1,
            assignments: vec![(0, l0)],
            version: v1,
        }])
        .unwrap();

    let pin = handle.retire_list().pin();
    let ticket = state.begin_read().expect("in sync");

    let v2 = state.bump_traditional();
    engine
        .apply_batch(vec![MaintRequest::Create {
            slots: 2,
            assignments: vec![(0, l0), (1, l1)],
            version: v2,
        }])
        .unwrap();
    assert_eq!(handle.retire_list().retired_count(), 1);

    // Identical PR 3 semantics: no unmap under the outstanding pin...
    assert_eq!(engine.reclaim_tick().unwrap(), 0);
    assert_eq!(handle.retire_list().retired_count(), 1);
    let stale = unsafe { *(ticket.base as *const u64) };
    assert_eq!(stale, 0xDEAD_0002);
    assert!(!state.still_valid(ticket), "raced read must be discarded");
    drop(pin);

    // ...and reclamation on the next tick once the reader drained.
    assert_eq!(engine.reclaim_tick().unwrap(), 1);
    assert_eq!(handle.retire_list().retired_count(), 0);
    assert_eq!(handle.vma_snapshot().areas_reclaimed, 1);
}

#[test]
fn index_survives_pathological_key_patterns() {
    use taking_the_shortcut::exhash::{Index, ShortcutEh};
    let mut index = ShortcutEh::with_defaults().unwrap();
    // Keys crafted to collide in the *bucket* hash (same low bits), plus
    // keys dense in the directory hash's top bits. (Start at 1: for i = 0
    // the two patterns would be the same key.)
    for i in 1..5_000u64 {
        index.insert(i << 32, i).unwrap();
        index.insert(i, !i).unwrap();
    }
    for i in 1..5_000u64 {
        assert_eq!(index.get(i << 32), Some(i));
        assert_eq!(index.get(i), Some(!i));
    }
    assert!(index.maint_error().is_none());
}

#[test]
fn facade_surfaces_pool_exhaustion_as_typed_error() {
    use taking_the_shortcut::{IndexError, PoolConfig, ShortcutIndex};
    // A pool whose fixed reservation holds only 8 bucket pages: the
    // facade must hand back IndexError::Pool once splitting outgrows it —
    // no panic — and keep the applied prefix readable.
    let mut index = ShortcutIndex::builder()
        .pool(PoolConfig {
            initial_pages: 1,
            min_growth_pages: 1,
            view_capacity_pages: 8,
            ..PoolConfig::default()
        })
        .build()
        .unwrap();
    let mut applied = 0u64;
    let err = loop {
        match index.insert(applied, applied * 3) {
            Ok(()) => applied += 1,
            Err(e) => break e,
        }
        assert!(applied < 100_000, "exhaustion never surfaced");
    };
    assert!(matches!(err, IndexError::Pool(_)), "{err}");
    assert!(applied > 0);
    for k in 0..applied {
        assert_eq!(index.get(k), Some(k * 3), "entry {k} lost after error");
    }
    // A zero reservation is rejected at build time, typed as well.
    assert!(matches!(
        ShortcutIndex::builder()
            .pool(PoolConfig {
                view_capacity_pages: 0,
                ..PoolConfig::default()
            })
            .build(),
        Err(IndexError::Pool(_))
    ));
}
