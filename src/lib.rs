//! # taking-the-shortcut
//!
//! Facade crate re-exporting the whole *Taking the Shortcut* (CIDR 2024)
//! reproduction stack:
//!
//! * [`rewire`] — memory-rewiring substrate (memfd + mmap page remapping).
//! * [`vmsim`] — software virtual-memory simulator (page table, TLBs,
//!   shootdowns) used for deterministic modeling of the paper's
//!   hardware-dependent experiments.
//! * [`core`] — shortcut inner nodes with asynchronous maintenance.
//! * [`exhash`] — the five hashing schemes of the paper's evaluation,
//!   including Shortcut-EH.

pub use shortcut_core as core;
pub use shortcut_exhash as exhash;
pub use shortcut_rewire as rewire;
pub use shortcut_vmsim as vmsim;
