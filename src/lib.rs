//! # taking-the-shortcut
//!
//! Facade crate for the *Taking the Shortcut* (CIDR 2024) reproduction
//! stack. The front door is [`ShortcutIndex`]: a shortcut-enhanced
//! extendible hash table with an asynchronous mapper thread, concurrent
//! `&self` reads, typed errors, and one merged statistics snapshot.
//!
//! ```
//! use taking_the_shortcut::{Index, ShortcutIndex};
//!
//! # fn main() -> Result<(), taking_the_shortcut::IndexError> {
//! let mut index = ShortcutIndex::builder()
//!     .capacity(10_000)          // size the page pool for ~10k entries
//!     .fanin_threshold(8.0)      // paper §3.2 routing bound
//!     .build()?;
//!
//! index.insert(42, 1000)?;
//! index.insert_batch(&[(7, 70), (8, 80)])?;
//! assert_eq!(index.get(42), Some(1000));       // reads take &self
//! assert_eq!(index.get_many(&[7, 8, 9]), vec![Some(70), Some(80), None]);
//!
//! let stats = index.stats();
//! assert_eq!(stats.len, 3);
//! # Ok(())
//! # }
//! ```
//!
//! Because [`Index::get`] takes `&self` (Shortcut-EH reads go through a
//! seqlock-validated shortcut directory), any number of threads may share
//! `&ShortcutIndex` and look up concurrently — e.g. via
//! `std::thread::scope` — while the borrow checker guarantees no writer
//! coexists.
//!
//! ## VMA budgeting and reclamation
//!
//! Every non-coalescible shortcut slot costs the kernel one virtual
//! memory area, and processes are capped at `vm.max_map_count` mappings
//! (65 530 by default). The index manages that resource instead of
//! leaking it:
//!
//! * Superseded shortcut directories are **retired** and reclaimed
//!   (unmapped) once every reader that could still touch them has
//!   drained — VMA use plateaus at roughly the live directory instead of
//!   growing with every doubling.
//! * Directory rebuilds are admission-checked against a
//!   [`VmaBudget`] fed by `vm.max_map_count`. A directory too large for
//!   the budget **suspends** the shortcut
//!   ([`ShortcutIndex::shortcut_suspended`]) — lookups keep working
//!   through the traditional directory, and nothing dies inside `mmap`.
//! * With [`IndexBuilder::compaction`] enabled, bucket pages are
//!   physically **relocated into directory order** (at doublings, and
//!   incrementally when the mapper's trigger fires), so rebuilds map
//!   identity runs the kernel merges into a handful of VMAs — rebuild
//!   admission then reserves the exact layout footprint instead of the
//!   worst case, and shortcut-served lookups scale to millions of keys
//!   on a stock kernel. [`ShortcutIndex::compact`] runs a pass
//!   explicitly.
//! * [`IndexBuilder::slot_pages`] sizes the physical slot (the bucket
//!   and rewiring unit) as `2^k` base pages: larger slots hold `~2^k`
//!   more entries per bucket, so the directory is `~2^k` shallower and
//!   the mapping/TLB footprint shrinks by the same factor.
//!   [`IndexBuilder::huge_pages`] opts into `MFD_HUGETLB` backing at the
//!   2 MB boundary (`k = 9`), with a creation-time probe and clean
//!   fallback to 4 KB-page slots
//!   (`StatsSnapshot::huge_pages_active`).
//! * [`IndexBuilder::vma_budget`] injects a private limit (tests, CI
//!   stress); [`IndexBuilder::reclamation`] can disable the lifecycle for
//!   A/B comparisons; [`StatsSnapshot::vma`] reports the live/retired
//!   mapping split ([`VmaSnapshot::live_vmas`]), the limit, and
//!   reclamation totals, and [`ShortcutIndex::layout_vmas`] /
//!   [`ShortcutIndex::ideal_layout_vmas`] expose the layout estimates.
//!
//! The underlying layers remain available:
//!
//! * [`rewire`] — memory-rewiring substrate (memfd + mmap page remapping).
//! * [`vmsim`] — software virtual-memory simulator (page table, TLBs,
//!   shootdowns) used for deterministic modeling of the paper's
//!   hardware-dependent experiments.
//! * [`core`] — shortcut inner nodes with asynchronous maintenance.
//! * [`exhash`] — the five hashing schemes of the paper's evaluation,
//!   including Shortcut-EH.

pub use shortcut_core as core;
pub use shortcut_exhash as exhash;
pub use shortcut_rewire as rewire;
pub use shortcut_vmsim as vmsim;

pub use shortcut_core::{CompactionPolicy, MaintConfig, RoutePolicy};
pub use shortcut_exhash::{probe_backend, ProbeBackend};
pub use shortcut_exhash::{BucketLayout, CompactionOutcome, Index, IndexError, IndexStats};
pub use shortcut_rewire::{
    max_map_count, PinStrategy, PoolConfig, SlotLayout, VmaBudget, VmaSnapshot,
};

pub use shortcut_exhash::{ShardedIndex, MAX_SHARD_BITS};

use shortcut_core::metrics::MaintSnapshot;
use shortcut_exhash::{EhConfig, ShortcutEh, ShortcutEhConfig};
use std::time::Duration;

/// Builder for [`ShortcutIndex`]: capacity-driven pool sizing, routing
/// policy, and mapper configuration in one place.
///
/// Obtained via [`ShortcutIndex::builder`]; finished with
/// [`IndexBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct IndexBuilder {
    capacity: Option<usize>,
    pool: Option<PoolConfig>,
    max_load_factor: Option<f64>,
    policy: RoutePolicy,
    maint: MaintConfig,
    vma_budget_limit: Option<usize>,
    reclaim: Option<bool>,
    slot_power: Option<u32>,
    huge_pages: bool,
    shard_bits: u32,
    pin_strategy: Option<PinStrategy>,
}

impl IndexBuilder {
    /// Size the page pool for roughly `entries` live entries.
    ///
    /// Buckets hold ≤ 87 entries at the default load factor; with
    /// splitting churn the steady state is ~40 entries per bucket, so the
    /// virtual reservation gets generous headroom on top of that estimate.
    /// Ignored if an explicit [`IndexBuilder::pool`] is set.
    pub fn capacity(mut self, entries: usize) -> Self {
        self.capacity = Some(entries);
        self
    }

    /// Use an explicit pool configuration (overrides
    /// [`IndexBuilder::capacity`]).
    pub fn pool(mut self, pool: PoolConfig) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Maximum bucket load factor before splitting (paper: 0.35).
    pub fn max_load_factor(mut self, f: f64) -> Self {
        self.max_load_factor = Some(f);
        self
    }

    /// Full routing policy (see [`RoutePolicy`]).
    pub fn route_policy(mut self, policy: RoutePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Shorthand: route through the shortcut only while the average fan-in
    /// is at most `threshold` (paper §3.2; default 8).
    pub fn fanin_threshold(mut self, threshold: f64) -> Self {
        self.policy = RoutePolicy::with_threshold(threshold);
        self
    }

    /// Full mapper-thread configuration (see [`MaintConfig`]).
    pub fn maint(mut self, maint: MaintConfig) -> Self {
        self.maint = maint;
        self
    }

    /// Shorthand: the mapper thread's queue polling interval (paper: 25 ms).
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.maint.poll_interval = interval;
        self
    }

    /// Shorthand: whether rewirings eagerly populate the page table before
    /// the shortcut version is stamped (the paper's default).
    pub fn eager_populate(mut self, eager: bool) -> Self {
        self.maint.eager_populate = eager;
        self
    }

    /// Give the index a **private** VMA budget with this mapping limit
    /// instead of the process-global one fed by `vm.max_map_count`.
    /// Directory rebuilds whose mapping footprint would not fit are
    /// skipped (the shortcut suspends, lookups fall back to the
    /// traditional directory); retired directories count against the
    /// budget until reclaimed. Useful to simulate a small
    /// `vm.max_map_count` in tests and CI without the sysctl. Admission
    /// reserves 1/16 of the limit (capped at 1024 mappings) as headroom
    /// for mappings the budget does not track.
    pub fn vma_budget(mut self, limit: usize) -> Self {
        self.vma_budget_limit = Some(limit);
        self
    }

    /// Whether superseded shortcut directories are retired and reclaimed
    /// once outstanding readers drain (default `true`). `false` restores
    /// the keep-everything-mapped behavior of early versions — VMA use
    /// then grows with every directory doubling.
    pub fn reclamation(mut self, enabled: bool) -> Self {
        self.reclaim = Some(enabled);
        self
    }

    /// Size the physical slot — the bucket and the rewiring unit — as
    /// `2^k` base pages (default `k = 0`, the paper's 4 KB buckets).
    /// Larger slots hold `~2^k` times more entries per bucket, so the
    /// directory is `~2^k` times shallower and the mapping footprint
    /// (live VMAs against `vm.max_map_count`) shrinks by about the same
    /// factor, at the cost of coarser-grained splits and more bytes
    /// copied per relocation. `k = 9` (2 MB) reaches the hardware
    /// hugepage boundary — combine with [`IndexBuilder::huge_pages`].
    /// Applied on top of an explicit [`IndexBuilder::pool`] config too.
    ///
    /// # Errors
    ///
    /// `k > 9` is rejected at [`IndexBuilder::build`] time.
    pub fn slot_pages(mut self, k: u32) -> Self {
        self.slot_power = Some(k);
        self
    }

    /// Opt into hugepage backing for the pool (effective at the 2 MB slot
    /// boundary, i.e. [`IndexBuilder::slot_pages`]`(9)`): the pool tries
    /// an `MFD_HUGETLB` memfd, probes that hugepages are actually
    /// reserved, and falls back cleanly to plain 4 KB-page slots
    /// otherwise (reported by `StatsSnapshot::huge_pages_active`). Below
    /// the boundary the pool merely advises `MADV_HUGEPAGE`,
    /// best-effort.
    pub fn huge_pages(mut self, enabled: bool) -> Self {
        self.huge_pages = enabled;
        self
    }

    /// Force the reader-pin pairing of every shard's retire list instead
    /// of auto-detecting. The default (`None`) probes `membarrier(2)` once
    /// per process and uses [`PinStrategy::Asymmetric`] — load/store-only
    /// reader pins, the reclaimer pays the barrier — when registration
    /// succeeds, degrading to the [`PinStrategy::Dekker`] RMW pairing
    /// otherwise. Forcing `Dekker` exercises the fallback path on hosts
    /// where membarrier works (the fallback-matrix tests do exactly
    /// that). Forcing `Asymmetric` on a host whose kernel rejects the
    /// barrier stays safe but disables reclamation (every reclaim tick
    /// aborts before its scan), so retired directories accumulate —
    /// normally leave this alone. Surfaced in
    /// `StatsSnapshot::pin_strategy`.
    pub fn pin_strategy(mut self, strategy: PinStrategy) -> Self {
        self.pin_strategy = Some(strategy);
        self
    }

    /// Partition the index into `2^s` **shards**, each a full Shortcut-EH
    /// with its own page pool, mapper thread, and retirement lifecycle,
    /// routed by the top `s` bits of the key hash (each shard's directory
    /// consumes the next bits down, so per-shard depth semantics are
    /// untouched). Default `s = 0` — a single shard, behaviorally
    /// identical to the unsharded index.
    ///
    /// Sharding buys **write parallelism**: one writer thread per shard
    /// runs concurrently through [`ShortcutIndex::insert_shared`] /
    /// [`ShortcutIndex::remove_shared`], while readers stay concurrent as
    /// before. All shards share one VMA budget (the process-global one,
    /// or the private [`IndexBuilder::vma_budget`] limit) under
    /// fair-share admission, so one shard's deep directory cannot
    /// suspend its siblings' shortcut maintenance. The capacity estimate
    /// is divided evenly across shards; per-shard mapper poll intervals
    /// are staggered so co-spawned mappers do not tick in lockstep.
    ///
    /// ```
    /// use taking_the_shortcut::{Index, ShortcutIndex};
    ///
    /// # fn main() -> Result<(), taking_the_shortcut::IndexError> {
    /// let mut index = ShortcutIndex::builder()
    ///     .capacity(10_000)
    ///     .shards(2) // 2^2 = 4 shards
    ///     .build()?;
    /// assert_eq!(index.shard_count(), 4);
    ///
    /// index.insert(7, 70)?; // routed to the owning shard
    /// assert_eq!(index.get(7), Some(70));
    /// assert_eq!(index.stats().shards, 4); // aggregated snapshot
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// `s > `[`MAX_SHARD_BITS`] is rejected at [`IndexBuilder::build`]
    /// time.
    pub fn shards(mut self, s: u32) -> Self {
        self.shard_bits = s;
        self
    }

    /// Physical bucket-layout compaction policy (default
    /// [`CompactionPolicy::disabled`]; use [`CompactionPolicy::on`] for
    /// the recommended production setting). With compaction the bucket
    /// pages are relocated into directory order, so rebuilds map identity
    /// runs the kernel merges into a handful of VMAs — this is what lets
    /// shortcut-served lookups scale past the `vm.max_map_count` ceiling
    /// (millions of keys on a stock kernel) instead of suspending.
    pub fn compaction(mut self, policy: CompactionPolicy) -> Self {
        self.maint.compaction = policy;
        self
    }

    /// Build the index and spawn its mapper thread.
    ///
    /// # Errors
    ///
    /// Propagates pool creation failure (memfd, `mmap`,
    /// `vm.max_map_count`) and configuration rejection as [`IndexError`].
    pub fn build(self) -> Result<ShortcutIndex, IndexError> {
        if self.shard_bits > MAX_SHARD_BITS {
            return Err(IndexError::Config {
                what: format!(
                    "shards({}) exceeds the cap of {MAX_SHARD_BITS} (2^{MAX_SHARD_BITS} shards)",
                    self.shard_bits
                ),
            });
        }
        let shard_count = 1usize << self.shard_bits;
        let layout = match self.slot_power {
            Some(k) => SlotLayout::new(k).map_err(IndexError::Pool)?,
            None => self
                .pool
                .as_ref()
                .map(|p| p.slot_layout)
                .unwrap_or_default(),
        };
        let load = self.max_load_factor.unwrap_or(0.35);
        let entries_per_slot = BucketLayout::for_slot(layout).steady_entries(load);
        // Compaction passes transiently hold live buckets + the target run
        // + not-yet-reclaimed sources, so give the fixed reservation extra
        // room (virtual address space is effectively free; physical pages
        // are hole-punched back as passes retire their sources).
        let view_multiplier = if self.maint.compaction.enabled() {
            5
        } else {
            2
        };
        let mut pool = self.pool.unwrap_or_else(|| match self.capacity {
            Some(entries) => {
                // Each shard gets its own pool, so the capacity estimate
                // is divided evenly across them (the multiplicative hash
                // spreads keys uniformly over shards).
                let slots_needed = (entries.div_ceil(shard_count) / entries_per_slot).max(1);
                // Growth amortization floors scale by bytes, not slots:
                // ~256 KB per ftruncate and a 16 MB virtual-view minimum
                // at any slot size (the historical 64/4096-page values at
                // k = 0).
                let growth_floor = layout.slots_for_bytes(1 << 18);
                let view_floor = layout.slots_for_bytes(1 << 24).max(64);
                PoolConfig {
                    initial_pages: 1,
                    min_growth_pages: slots_needed.clamp(growth_floor, 4096), // audit:allow(page-literal): growth clamp in pages (a count), not a byte size
                    view_capacity_pages: ((slots_needed * view_multiplier).max(view_floor))
                        .next_power_of_two(),
                    ..PoolConfig::default()
                }
            }
            None => PoolConfig::default(),
        });
        pool.slot_layout = layout;
        if self.huge_pages {
            pool.huge_pages = true;
        }
        if let Some(strategy) = self.pin_strategy {
            pool.pin_strategy = Some(strategy);
        }
        if let Some(limit) = self.vma_budget_limit {
            // One Arc, cloned into every shard's pool config: all shards
            // account against (and fair-share) the same budget. Without a
            // private limit the pools resolve to the process-global budget,
            // which is likewise one shared instance.
            pool.vma_budget = Some(VmaBudget::with_limit(limit));
        }
        let mut eh = EhConfig {
            pool,
            ..EhConfig::default()
        };
        if let Some(f) = self.max_load_factor {
            eh.max_load_factor = f;
        }
        let mut maint = self.maint;
        if let Some(reclaim) = self.reclaim {
            maint.reclaim = reclaim;
        }
        Ok(ShortcutIndex {
            inner: ShardedIndex::try_new(
                self.shard_bits,
                ShortcutEhConfig {
                    eh,
                    maint,
                    policy: self.policy,
                },
            )?,
        })
    }
}

/// One merged, point-in-time view over everything the stack counts:
/// structural index statistics, mapper-thread maintenance counters, and
/// the page pool's rewiring counters.
#[derive(Debug, Clone, Copy)]
pub struct StatsSnapshot {
    /// Number of shards this snapshot aggregates (1 for a per-shard or
    /// unsharded snapshot; [`StatsSnapshot::merge`] sums it).
    pub shards: usize,
    /// Live entries.
    pub len: usize,
    /// Global depth of the traditional directory.
    pub global_depth: u32,
    /// Number of distinct buckets.
    pub bucket_count: usize,
    /// Average directory fan-in (`slots / buckets`, the routing input).
    pub avg_fanin: f64,
    /// Whether the shortcut directory was in sync at snapshot time.
    pub in_sync: bool,
    /// `(traditional, shortcut)` version numbers (Figure 8's quantities).
    pub versions: (u64, u64),
    /// Whether shortcut maintenance is suspended by the VMA budget
    /// (lookups fall back to the traditional directory).
    pub shortcut_suspended: bool,
    /// Base pages per physical slot — the **count** `2^k`, not the log2
    /// knob passed to [`IndexBuilder::slot_pages`].
    pub pages_per_slot: usize,
    /// Bytes per physical slot (= bytes per bucket).
    pub slot_bytes: usize,
    /// Entry capacity of one bucket at this slot size.
    pub bucket_capacity: usize,
    /// Whether hugepage backing was requested
    /// ([`IndexBuilder::huge_pages`]).
    pub huge_pages_requested: bool,
    /// Whether the hugetlb backend is actually active;
    /// `huge_pages_requested && !huge_pages_active` means the pool fell
    /// back cleanly to plain 4 KB-page slots (no hugepages reserved, or
    /// the slot size is below the 2 MB boundary).
    pub huge_pages_active: bool,
    /// Reader-pin pairing of the retire list:
    /// [`PinStrategy::Asymmetric`] (membarrier-paired load/store pins) or
    /// the [`PinStrategy::Dekker`] RMW fallback.
    pub pin_strategy: PinStrategy,
    /// Name of the bucket-probe key-compare kernel in use
    /// (`"avx2"`/`"sse2"`/`"scalar"`; `"mixed"` only in a merged snapshot
    /// whose shards somehow disagree).
    pub probe_backend: &'static str,
    /// Structural + routing statistics of the index.
    pub index: IndexStats,
    /// Counters of the asynchronous mapper thread.
    pub maint: MaintSnapshot,
    /// Operation counters of the backing page pool.
    pub rewire: rewire::StatsSnapshot,
    /// VMA budget and retired-directory lifecycle counters: how many
    /// mappings the index holds (live + retired + pool view), the budget
    /// limit (`vm.max_map_count` unless overridden), and how many retired
    /// directories were reclaimed. Experiments read this instead of
    /// hand-deriving slot caps from the sysctl.
    pub vma: VmaSnapshot,
}

impl StatsSnapshot {
    /// Merge two shards' snapshots into one aggregate (commutative;
    /// [`ShortcutIndex::stats`] folds the per-shard snapshots with it).
    /// Field-by-field semantics:
    ///
    /// * **Counters sum**: `shards`, `len`, `bucket_count`, `versions`
    ///   (both halves), and the nested counter blocks via their own
    ///   documented merges ([`IndexStats::merge`],
    ///   `MaintSnapshot::merge`, `rewire::StatsSnapshot::merge`,
    ///   [`VmaSnapshot::merge`]).
    /// * **Gauges take the honest extreme**: `global_depth` is the
    ///   deepest shard (max); `avg_fanin` is re-weighted by bucket count
    ///   (total slots over total buckets, not a mean of means);
    ///   `in_sync` and `huge_pages_active` hold only if **every** shard
    ///   holds (and); `shortcut_suspended` and `huge_pages_requested`
    ///   hold if **any** shard holds (or); the layout gauges
    ///   (`pages_per_slot`, `slot_bytes`, `bucket_capacity`) take the
    ///   max — shards built by [`IndexBuilder`] are homogeneous, so this
    ///   is the common value; `pin_strategy` is `Asymmetric` only if
    ///   **every** shard runs asymmetric (any Dekker fallback shows);
    ///   `probe_backend` keeps the common name, or `"mixed"` if shards
    ///   ever disagreed.
    pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
        let buckets = self.bucket_count + other.bucket_count;
        StatsSnapshot {
            shards: self.shards + other.shards,
            len: self.len + other.len,
            global_depth: self.global_depth.max(other.global_depth),
            bucket_count: buckets,
            avg_fanin: if buckets == 0 {
                0.0
            } else {
                (self.avg_fanin * self.bucket_count as f64
                    + other.avg_fanin * other.bucket_count as f64)
                    / buckets as f64
            },
            in_sync: self.in_sync && other.in_sync,
            versions: (
                self.versions.0 + other.versions.0,
                self.versions.1 + other.versions.1,
            ),
            shortcut_suspended: self.shortcut_suspended || other.shortcut_suspended,
            pages_per_slot: self.pages_per_slot.max(other.pages_per_slot),
            slot_bytes: self.slot_bytes.max(other.slot_bytes),
            bucket_capacity: self.bucket_capacity.max(other.bucket_capacity),
            huge_pages_requested: self.huge_pages_requested || other.huge_pages_requested,
            huge_pages_active: self.huge_pages_active && other.huge_pages_active,
            pin_strategy: if self.pin_strategy == PinStrategy::Asymmetric
                && other.pin_strategy == PinStrategy::Asymmetric
            {
                PinStrategy::Asymmetric
            } else {
                PinStrategy::Dekker
            },
            probe_backend: if self.probe_backend == other.probe_backend {
                self.probe_backend
            } else {
                "mixed"
            },
            index: self.index.merge(&other.index),
            maint: self.maint.merge(&other.maint),
            rewire: self.rewire.merge(&other.rewire),
            vma: self.vma.merge(&other.vma),
        }
    }
}

impl StatsSnapshot {
    /// Percentage of lookups answered through the shortcut directory
    /// (0.0 when no lookup was counted yet).
    pub fn shortcut_served_pct(&self) -> f64 {
        let total = self.index.shortcut_lookups + self.index.traditional_lookups;
        if total == 0 {
            0.0
        } else {
            self.index.shortcut_lookups as f64 * 100.0 / total as f64
        }
    }
}

/// The stable text rendering of a snapshot: one `key: value` line per
/// group, identical wherever a snapshot is shown — the server's `INFO`
/// reply, `mixed_workload`'s exit report, and the `all` evaluation
/// driver all print exactly this block instead of hand-formatting their
/// own subsets. Lines are append-only across versions (tooling may grep
/// for a key, so existing keys keep their meaning and format).
impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "index: entries={} shards={} global_depth={} buckets={} avg_fanin={:.2}",
            self.len, self.shards, self.global_depth, self.bucket_count, self.avg_fanin
        )?;
        writeln!(
            f,
            "shortcut: in_sync={} suspended={} versions_traditional={} versions_shortcut={}",
            self.in_sync, self.shortcut_suspended, self.versions.0, self.versions.1
        )?;
        writeln!(
            f,
            "layout: pages_per_slot={} slot_bytes={} bucket_capacity={} \
             hugepages_requested={} hugepages_active={}",
            self.pages_per_slot,
            self.slot_bytes,
            self.bucket_capacity,
            self.huge_pages_requested,
            self.huge_pages_active
        )?;
        writeln!(
            f,
            "lookups: shortcut={} traditional={} retries={} shortcut_served_pct={:.1}",
            self.index.shortcut_lookups,
            self.index.traditional_lookups,
            self.index.shortcut_retries,
            self.shortcut_served_pct()
        )?;
        writeln!(
            f,
            "structure: splits={} doublings={} compactions={} compaction_skipped={} \
             pages_moved={}",
            self.index.splits,
            self.index.doublings,
            self.index.compactions,
            self.index.compaction_skipped,
            self.index.pages_moved
        )?;
        writeln!(
            f,
            "maint: creates={} updates={} creates_skipped={} creates_deferred={} \
             creates_coarse={} vmas_saved={}",
            self.maint.creates_applied,
            self.maint.updates_applied,
            self.maint.creates_skipped,
            self.maint.creates_deferred,
            self.maint.creates_coarse,
            self.maint.vmas_saved
        )?;
        writeln!(
            f,
            "vma: in_use={} live={} retired={} limit={} areas_retired={} areas_reclaimed={}",
            self.vma.in_use,
            self.vma.live_vmas(),
            self.vma.retired_vmas,
            self.vma.limit,
            self.vma.areas_retired,
            self.vma.areas_reclaimed
        )?;
        writeln!(
            f,
            "read_path: pin_strategy={} probe_backend={}",
            self.pin_strategy, self.probe_backend
        )
    }
}

/// The facade index: Shortcut-EH behind a builder, with concurrent
/// `&self` reads, typed errors and a single merged [`StatsSnapshot`].
/// Transparently sharded: [`IndexBuilder::shards`] partitions it into
/// `2^s` independent Shortcut-EH shards (default 1 — unsharded), each
/// with its own pool and mapper thread, with every entry point routing
/// or aggregating across them.
///
/// See the [crate docs](crate) for a usage example. All [`Index`] methods
/// are also available inherently, so the trait import is optional.
#[derive(Debug)]
pub struct ShortcutIndex {
    inner: ShardedIndex,
}

impl ShortcutIndex {
    /// Start building an index.
    pub fn builder() -> IndexBuilder {
        IndexBuilder::default()
    }

    /// Build with the paper's defaults (load factor 0.35, fan-in
    /// threshold 8, 25 ms mapper poll interval).
    ///
    /// # Errors
    ///
    /// Propagates pool creation failure as [`IndexError`].
    pub fn with_defaults() -> Result<Self, IndexError> {
        Self::builder().build()
    }

    /// Insert or update a key.
    ///
    /// # Errors
    ///
    /// Surfaces pool growth / directory-doubling failure as a typed
    /// [`IndexError`]; applied entries stay readable.
    pub fn insert(&mut self, key: u64, value: u64) -> Result<(), IndexError> {
        Index::insert(&mut self.inner, key, value)
    }

    /// Look up a key. Takes `&self`: concurrent readers are safe.
    pub fn get(&self, key: u64) -> Option<u64> {
        Index::get(&self.inner, key)
    }

    /// Batched lookup; validates one seqlock ticket for the whole batch.
    pub fn get_many(&self, keys: &[u64]) -> Vec<Option<u64>> {
        Index::get_many(&self.inner, keys)
    }

    /// Insert a batch, relaying directory events to the mapper once.
    ///
    /// # Errors
    ///
    /// Propagates the first failing insert; entries before it are applied.
    pub fn insert_batch(&mut self, entries: &[(u64, u64)]) -> Result<(), IndexError> {
        Index::insert_batch(&mut self.inner, entries)
    }

    /// Remove a key, returning its value.
    ///
    /// # Errors
    ///
    /// Never fails today; fallible per the [`Index`] write contract.
    pub fn remove(&mut self, key: u64) -> Result<Option<u64>, IndexError> {
        Index::remove(&mut self.inner, key)
    }

    /// Remove a batch of keys; `out[i]` is the value `keys[i]` held.
    /// Scattered per shard like [`ShortcutIndex::insert_batch`].
    ///
    /// # Errors
    ///
    /// Propagates the first failing shard's error; completed shards keep
    /// their removals.
    pub fn remove_batch(&mut self, keys: &[u64]) -> Result<Vec<Option<u64>>, IndexError> {
        Index::remove_batch(&mut self.inner, keys)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        Index::len(&self.inner)
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the shortcut directory is currently in sync.
    pub fn in_sync(&self) -> bool {
        self.inner.in_sync()
    }

    /// Whether shortcut maintenance is suspended because the directory no
    /// longer fits the VMA budget. The index keeps answering every lookup
    /// (through the traditional directory); raise `vm.max_map_count` or
    /// [`IndexBuilder::vma_budget`] for shortcut service at this scale.
    pub fn shortcut_suspended(&self) -> bool {
        self.inner.shortcut_suspended()
    }

    /// Current `(traditional, shortcut)` version numbers.
    pub fn versions(&self) -> (u64, u64) {
        self.inner.versions()
    }

    /// Block until the shortcut catches up (test/bench helper; production
    /// readers never wait, they fall back to the traditional directory).
    pub fn wait_sync(&self, timeout: Duration) -> bool {
        self.inner.wait_sync(timeout)
    }

    /// Relocate every bucket page into directory order in one synchronous
    /// pass and hand the resulting identity rebuild to the mapper. After
    /// the mapper applies it (and retired mappings drain), the live VMA
    /// footprint collapses from one-per-scattered-slot to one per fan-in
    /// cluster. Automatic passes run per the
    /// [`IndexBuilder::compaction`] policy; this entry point is for
    /// explicit maintenance windows.
    ///
    /// # Errors
    ///
    /// Propagates pool failures (typically no room for the contiguous
    /// target run); the index stays consistent and keeps answering.
    pub fn compact(&mut self) -> Result<CompactionOutcome, IndexError> {
        self.inner.compact()
    }

    /// Planned-VMA estimate of the current bucket layout, as a fresh
    /// shortcut rebuild would map it (`O(slots)` — diagnostics).
    ///
    /// # Errors
    ///
    /// Propagates directory-invariant violations as [`IndexError`].
    pub fn layout_vmas(&self) -> Result<usize, IndexError> {
        self.inner.layout_vmas()
    }

    /// `slots − buckets + 1`: the irreducible footprint of a perfectly
    /// compacted layout (one VMA plus one per aliased fan-in > 1 slot).
    pub fn ideal_layout_vmas(&self) -> usize {
        self.inner.ideal_layout_vmas()
    }

    /// First error the mapper thread hit, if any.
    pub fn maint_error(&self) -> Option<IndexError> {
        self.inner.maint_error()
    }

    /// Number of shards (`2^s` per [`IndexBuilder::shards`]; 1 unsharded).
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// `s`: the number of top hash bits consumed by shard routing.
    pub fn shard_bits(&self) -> u32 {
        self.inner.shard_bits()
    }

    /// The shard index `key` routes to (always 0 when unsharded).
    pub fn shard_of(&self, key: u64) -> usize {
        self.inner.shard_of(key)
    }

    /// Insert through a per-shard write lock — the **shared-writer**
    /// discipline: safe from many threads (`&self`); writers on
    /// *different* shards run in parallel, writers on the same shard
    /// serialize on its lock. Pair one writer thread per shard
    /// (partition keys with [`ShortcutIndex::shard_of`]) for contention-free
    /// scaling.
    ///
    /// # Errors
    ///
    /// Same contract as [`ShortcutIndex::insert`].
    pub fn insert_shared(&self, key: u64, value: u64) -> Result<(), IndexError> {
        self.inner.insert_shared(key, value)
    }

    /// Remove through a per-shard write lock (shared-writer discipline;
    /// see [`ShortcutIndex::insert_shared`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`ShortcutIndex::remove`].
    pub fn remove_shared(&self, key: u64) -> Result<Option<u64>, IndexError> {
        self.inner.remove_shared(key)
    }

    /// Batched insert through per-shard write locks: splits the batch by
    /// shard and applies each group under one lock acquisition.
    ///
    /// # Errors
    ///
    /// Propagates the first failing shard's error; completed shards keep
    /// their groups, the failing shard keeps its applied prefix.
    pub fn insert_batch_shared(&self, entries: &[(u64, u64)]) -> Result<(), IndexError> {
        self.inner.insert_batch_shared(entries)
    }

    /// Batched remove through per-shard write locks: splits the batch by
    /// shard, applies each group under one lock acquisition, and
    /// reassembles the answers in caller order (`out[i]` answers
    /// `keys[i]`). The shared-writer counterpart of
    /// [`ShortcutIndex::remove_batch`] — this is what a multi-key `DEL`
    /// over the network funnels into.
    ///
    /// # Errors
    ///
    /// Propagates the first failing shard's error; completed shards keep
    /// their removals.
    pub fn remove_batch_shared(&self, keys: &[u64]) -> Result<Vec<Option<u64>>, IndexError> {
        self.inner.remove_batch_shared(keys)
    }

    /// One merged snapshot of index, maintenance, and pool counters,
    /// aggregated over all shards with the documented
    /// [`StatsSnapshot::merge`] semantics. Per-shard snapshots are taken
    /// one shard at a time (not atomically across shards).
    pub fn stats(&self) -> StatsSnapshot {
        (0..self.shard_count())
            .map(|i| self.shard_stats(i))
            .reduce(|a, b| a.merge(&b))
            .expect("at least one shard")
    }

    /// The per-shard breakdown behind [`ShortcutIndex::stats`]: shard
    /// `i`'s own snapshot (`shards == 1`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    pub fn shard_stats(&self, i: usize) -> StatsSnapshot {
        self.inner.with_shard(i, |s| StatsSnapshot {
            shards: 1,
            len: s.len(),
            global_depth: s.global_depth(),
            bucket_count: s.bucket_count(),
            avg_fanin: s.avg_fanin(),
            in_sync: s.in_sync(),
            versions: s.versions(),
            shortcut_suspended: s.shortcut_suspended(),
            pages_per_slot: s.slot_layout().pages_per_slot(),
            slot_bytes: s.slot_layout().slot_bytes(),
            bucket_capacity: s.bucket_layout().capacity(),
            huge_pages_requested: s.huge_requested(),
            huge_pages_active: s.huge_active(),
            pin_strategy: s.pin_strategy(),
            probe_backend: probe_backend().name(),
            index: s.stats(),
            maint: s.maint_metrics(),
            rewire: s.pool_stats(),
            vma: s.vma_stats(),
        })
    }

    /// The wrapped sharded scheme, for paper-level experiments that need
    /// direct access (per-shard probes, version plumbing, published
    /// shortcut state via [`ShardedIndex::with_shard`]).
    pub fn as_sharded(&self) -> &ShardedIndex {
        &self.inner
    }

    /// Run `f` against shard `i`'s [`ShortcutEh`] under a read lock — the
    /// sharded replacement for the former `as_shortcut_eh` accessor.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    pub fn with_shard<R>(&self, i: usize, f: impl FnOnce(&ShortcutEh) -> R) -> R {
        self.inner.with_shard(i, f)
    }
}

impl Index for ShortcutIndex {
    fn insert(&mut self, key: u64, value: u64) -> Result<(), IndexError> {
        ShortcutIndex::insert(self, key, value)
    }

    fn get(&self, key: u64) -> Option<u64> {
        ShortcutIndex::get(self, key)
    }

    fn remove(&mut self, key: u64) -> Result<Option<u64>, IndexError> {
        ShortcutIndex::remove(self, key)
    }

    fn len(&self) -> usize {
        ShortcutIndex::len(self)
    }

    fn name(&self) -> &'static str {
        Index::name(&self.inner)
    }

    fn get_many(&self, keys: &[u64]) -> Vec<Option<u64>> {
        ShortcutIndex::get_many(self, keys)
    }

    fn insert_batch(&mut self, entries: &[(u64, u64)]) -> Result<(), IndexError> {
        ShortcutIndex::insert_batch(self, entries)
    }

    fn remove_batch(&mut self, keys: &[u64]) -> Result<Vec<Option<u64>>, IndexError> {
        ShortcutIndex::remove_batch(self, keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(len: usize, depth: u32, buckets: usize, fanin: f64, in_sync: bool) -> StatsSnapshot {
        StatsSnapshot {
            shards: 1,
            len,
            global_depth: depth,
            bucket_count: buckets,
            avg_fanin: fanin,
            in_sync,
            versions: (len as u64, len as u64),
            shortcut_suspended: false,
            pages_per_slot: 1,
            slot_bytes: rewire::PAGE_SIZE_4K,
            bucket_capacity: 87,
            huge_pages_requested: false,
            huge_pages_active: true,
            pin_strategy: PinStrategy::Asymmetric,
            probe_backend: "scalar",
            index: IndexStats::default(),
            maint: MaintSnapshot::default(),
            rewire: rewire::StatsSnapshot::default(),
            vma: VmaSnapshot::default(),
        }
    }

    #[test]
    fn snapshot_merge_sums_counters_and_takes_honest_gauges() {
        let mut a = snap(100, 5, 10, 2.0, true);
        a.index.splits = 4;
        a.maint.coarse_service_pct = 100;
        let mut b = snap(50, 7, 30, 1.0, false);
        b.index.splits = 1;
        b.shortcut_suspended = true;
        b.maint.coarse_service_pct = 80;
        let m = a.merge(&b);
        assert_eq!(m.shards, 2);
        assert_eq!(m.len, 150);
        assert_eq!(m.global_depth, 7, "gauge: deepest shard");
        assert_eq!(m.bucket_count, 40);
        // Re-weighted by bucket count: (2.0*10 + 1.0*30) / 40.
        assert!((m.avg_fanin - 1.25).abs() < 1e-9, "got {}", m.avg_fanin);
        assert!(!m.in_sync, "in_sync only if every shard is");
        assert!(m.shortcut_suspended, "suspended if any shard is");
        assert_eq!(m.versions, (150, 150));
        assert_eq!(m.index.splits, 5);
        assert_eq!(m.maint.coarse_service_pct, 80, "worst-served shard");
        // Commutative.
        let n = b.merge(&a);
        assert_eq!(n.len, m.len);
        assert_eq!(n.global_depth, m.global_depth);
        assert!((n.avg_fanin - m.avg_fanin).abs() < 1e-12);
    }

    #[test]
    fn snapshot_merge_with_empty_shard_keeps_fanin_finite() {
        let a = snap(0, 0, 0, 0.0, true);
        let b = snap(10, 1, 2, 1.5, true);
        let m = a.merge(&b);
        assert_eq!(m.bucket_count, 2);
        assert!((m.avg_fanin - 1.5).abs() < 1e-9);
        let empty = a.merge(&snap(0, 0, 0, 0.0, true));
        assert_eq!(empty.avg_fanin, 0.0, "0 buckets must not divide by zero");
    }

    #[test]
    fn snapshot_display_is_stable_and_greppable() {
        let mut s = snap(150, 5, 10, 2.0, true);
        s.index.shortcut_lookups = 190;
        s.index.traditional_lookups = 10;
        let text = s.to_string();
        // The stable contract: every group line starts with its key, and
        // the key=value pairs are parseable (INFO and CI grep for these).
        for key in [
            "index: entries=150 ",
            "shortcut: in_sync=true ",
            "layout: pages_per_slot=1 ",
            "lookups: shortcut=190 traditional=10 retries=0 shortcut_served_pct=95.0",
            "structure: splits=0 ",
            "maint: creates=0 ",
            "vma: in_use=0 ",
            "read_path: pin_strategy=asymmetric probe_backend=scalar",
        ] {
            assert!(text.contains(key), "missing `{key}` in:\n{text}");
        }
        assert!((s.shortcut_served_pct() - 95.0).abs() < 1e-9);
        assert_eq!(snap(0, 0, 0, 0.0, true).shortcut_served_pct(), 0.0);
    }

    #[test]
    fn snapshot_merge_read_path_takes_the_honest_extreme() {
        let asym = snap(1, 0, 1, 1.0, true);
        let mut dekker = snap(1, 0, 1, 1.0, true);
        dekker.pin_strategy = PinStrategy::Dekker;
        assert_eq!(
            asym.merge(&asym).pin_strategy,
            PinStrategy::Asymmetric,
            "all-asymmetric shards stay asymmetric"
        );
        assert_eq!(
            asym.merge(&dekker).pin_strategy,
            PinStrategy::Dekker,
            "any Dekker fallback must show in the aggregate"
        );
        let mut simd = snap(1, 0, 1, 1.0, true);
        simd.probe_backend = "avx2";
        assert_eq!(asym.merge(&asym).probe_backend, "scalar");
        assert_eq!(asym.merge(&simd).probe_backend, "mixed");
    }

    #[test]
    fn remove_batch_matches_sequential_removes_through_the_facade() {
        let mut idx = ShortcutIndex::builder()
            .capacity(2_000)
            .shards(1)
            .vma_budget(100_000)
            .build()
            .unwrap();
        for k in 0..1_000u64 {
            idx.insert(k, k + 7).unwrap();
        }
        let keys: Vec<u64> = vec![3, 5_000, 3, 999];
        let got = idx.remove_batch(&keys).unwrap();
        assert_eq!(got, vec![Some(10), None, None, Some(1_006)]);
        // Shared-writer variant on the remaining keys.
        let rest: Vec<u64> = (0..1_000).filter(|&k| k != 3 && k != 999).collect();
        let got = idx.remove_batch_shared(&rest).unwrap();
        assert!(got.iter().all(|v| v.is_some()));
        assert!(idx.is_empty());
    }

    #[test]
    fn builder_rejects_shard_bits_above_the_cap() {
        let err = ShortcutIndex::builder()
            .shards(MAX_SHARD_BITS + 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, IndexError::Config { .. }), "got {err:?}");
    }

    #[test]
    fn sharded_facade_routes_and_aggregates() {
        let mut idx = ShortcutIndex::builder()
            .capacity(4_000)
            .shards(2)
            .vma_budget(100_000)
            .build()
            .unwrap();
        assert_eq!(idx.shard_count(), 4);
        for k in 0..4_000u64 {
            idx.insert(k, k ^ 0xFF).unwrap();
        }
        assert_eq!(idx.len(), 4_000);
        let s = idx.stats();
        assert_eq!(s.shards, 4);
        assert_eq!(s.len, 4_000);
        let per_shard: usize = (0..4).map(|i| idx.shard_stats(i).len).sum();
        assert_eq!(per_shard, 4_000);
        for i in 0..4 {
            assert!(idx.shard_stats(i).len > 500, "shard {i} nearly empty");
        }
        for k in (0..4_000u64).step_by(13) {
            assert_eq!(idx.get(k), Some(k ^ 0xFF));
        }
        assert!(idx.maint_error().is_none());
    }
}
