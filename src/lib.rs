//! # taking-the-shortcut
//!
//! Facade crate for the *Taking the Shortcut* (CIDR 2024) reproduction
//! stack. The front door is [`ShortcutIndex`]: a shortcut-enhanced
//! extendible hash table with an asynchronous mapper thread, concurrent
//! `&self` reads, typed errors, and one merged statistics snapshot.
//!
//! ```
//! use taking_the_shortcut::{Index, ShortcutIndex};
//!
//! # fn main() -> Result<(), taking_the_shortcut::IndexError> {
//! let mut index = ShortcutIndex::builder()
//!     .capacity(10_000)          // size the page pool for ~10k entries
//!     .fanin_threshold(8.0)      // paper §3.2 routing bound
//!     .build()?;
//!
//! index.insert(42, 1000)?;
//! index.insert_batch(&[(7, 70), (8, 80)])?;
//! assert_eq!(index.get(42), Some(1000));       // reads take &self
//! assert_eq!(index.get_many(&[7, 8, 9]), vec![Some(70), Some(80), None]);
//!
//! let stats = index.stats();
//! assert_eq!(stats.len, 3);
//! # Ok(())
//! # }
//! ```
//!
//! Because [`Index::get`] takes `&self` (Shortcut-EH reads go through a
//! seqlock-validated shortcut directory), any number of threads may share
//! `&ShortcutIndex` and look up concurrently — e.g. via
//! `std::thread::scope` — while the borrow checker guarantees no writer
//! coexists.
//!
//! ## VMA budgeting and reclamation
//!
//! Every non-coalescible shortcut slot costs the kernel one virtual
//! memory area, and processes are capped at `vm.max_map_count` mappings
//! (65 530 by default). The index manages that resource instead of
//! leaking it:
//!
//! * Superseded shortcut directories are **retired** and reclaimed
//!   (unmapped) once every reader that could still touch them has
//!   drained — VMA use plateaus at roughly the live directory instead of
//!   growing with every doubling.
//! * Directory rebuilds are admission-checked against a
//!   [`VmaBudget`] fed by `vm.max_map_count`. A directory too large for
//!   the budget **suspends** the shortcut
//!   ([`ShortcutIndex::shortcut_suspended`]) — lookups keep working
//!   through the traditional directory, and nothing dies inside `mmap`.
//! * With [`IndexBuilder::compaction`] enabled, bucket pages are
//!   physically **relocated into directory order** (at doublings, and
//!   incrementally when the mapper's trigger fires), so rebuilds map
//!   identity runs the kernel merges into a handful of VMAs — rebuild
//!   admission then reserves the exact layout footprint instead of the
//!   worst case, and shortcut-served lookups scale to millions of keys
//!   on a stock kernel. [`ShortcutIndex::compact`] runs a pass
//!   explicitly.
//! * [`IndexBuilder::slot_pages`] sizes the physical slot (the bucket
//!   and rewiring unit) as `2^k` base pages: larger slots hold `~2^k`
//!   more entries per bucket, so the directory is `~2^k` shallower and
//!   the mapping/TLB footprint shrinks by the same factor.
//!   [`IndexBuilder::huge_pages`] opts into `MFD_HUGETLB` backing at the
//!   2 MB boundary (`k = 9`), with a creation-time probe and clean
//!   fallback to 4 KB-page slots
//!   (`StatsSnapshot::huge_pages_active`).
//! * [`IndexBuilder::vma_budget`] injects a private limit (tests, CI
//!   stress); [`IndexBuilder::reclamation`] can disable the lifecycle for
//!   A/B comparisons; [`StatsSnapshot::vma`] reports the live/retired
//!   mapping split ([`VmaSnapshot::live_vmas`]), the limit, and
//!   reclamation totals, and [`ShortcutIndex::layout_vmas`] /
//!   [`ShortcutIndex::ideal_layout_vmas`] expose the layout estimates.
//!
//! The underlying layers remain available:
//!
//! * [`rewire`] — memory-rewiring substrate (memfd + mmap page remapping).
//! * [`vmsim`] — software virtual-memory simulator (page table, TLBs,
//!   shootdowns) used for deterministic modeling of the paper's
//!   hardware-dependent experiments.
//! * [`core`] — shortcut inner nodes with asynchronous maintenance.
//! * [`exhash`] — the five hashing schemes of the paper's evaluation,
//!   including Shortcut-EH.

pub use shortcut_core as core;
pub use shortcut_exhash as exhash;
pub use shortcut_rewire as rewire;
pub use shortcut_vmsim as vmsim;

pub use shortcut_core::{CompactionPolicy, MaintConfig, RoutePolicy};
pub use shortcut_exhash::{BucketLayout, CompactionOutcome, Index, IndexError, IndexStats};
pub use shortcut_rewire::{max_map_count, PoolConfig, SlotLayout, VmaBudget, VmaSnapshot};

use shortcut_core::metrics::MaintSnapshot;
use shortcut_exhash::{EhConfig, ShortcutEh, ShortcutEhConfig};
use std::time::Duration;

/// Builder for [`ShortcutIndex`]: capacity-driven pool sizing, routing
/// policy, and mapper configuration in one place.
///
/// Obtained via [`ShortcutIndex::builder`]; finished with
/// [`IndexBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct IndexBuilder {
    capacity: Option<usize>,
    pool: Option<PoolConfig>,
    max_load_factor: Option<f64>,
    policy: RoutePolicy,
    maint: MaintConfig,
    vma_budget_limit: Option<usize>,
    reclaim: Option<bool>,
    slot_power: Option<u32>,
    huge_pages: bool,
}

impl IndexBuilder {
    /// Size the page pool for roughly `entries` live entries.
    ///
    /// Buckets hold ≤ 87 entries at the default load factor; with
    /// splitting churn the steady state is ~40 entries per bucket, so the
    /// virtual reservation gets generous headroom on top of that estimate.
    /// Ignored if an explicit [`IndexBuilder::pool`] is set.
    pub fn capacity(mut self, entries: usize) -> Self {
        self.capacity = Some(entries);
        self
    }

    /// Use an explicit pool configuration (overrides
    /// [`IndexBuilder::capacity`]).
    pub fn pool(mut self, pool: PoolConfig) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Maximum bucket load factor before splitting (paper: 0.35).
    pub fn max_load_factor(mut self, f: f64) -> Self {
        self.max_load_factor = Some(f);
        self
    }

    /// Full routing policy (see [`RoutePolicy`]).
    pub fn route_policy(mut self, policy: RoutePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Shorthand: route through the shortcut only while the average fan-in
    /// is at most `threshold` (paper §3.2; default 8).
    pub fn fanin_threshold(mut self, threshold: f64) -> Self {
        self.policy = RoutePolicy::with_threshold(threshold);
        self
    }

    /// Full mapper-thread configuration (see [`MaintConfig`]).
    pub fn maint(mut self, maint: MaintConfig) -> Self {
        self.maint = maint;
        self
    }

    /// Shorthand: the mapper thread's queue polling interval (paper: 25 ms).
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.maint.poll_interval = interval;
        self
    }

    /// Shorthand: whether rewirings eagerly populate the page table before
    /// the shortcut version is stamped (the paper's default).
    pub fn eager_populate(mut self, eager: bool) -> Self {
        self.maint.eager_populate = eager;
        self
    }

    /// Give the index a **private** VMA budget with this mapping limit
    /// instead of the process-global one fed by `vm.max_map_count`.
    /// Directory rebuilds whose mapping footprint would not fit are
    /// skipped (the shortcut suspends, lookups fall back to the
    /// traditional directory); retired directories count against the
    /// budget until reclaimed. Useful to simulate a small
    /// `vm.max_map_count` in tests and CI without the sysctl. Admission
    /// reserves 1/16 of the limit (capped at 1024 mappings) as headroom
    /// for mappings the budget does not track.
    pub fn vma_budget(mut self, limit: usize) -> Self {
        self.vma_budget_limit = Some(limit);
        self
    }

    /// Whether superseded shortcut directories are retired and reclaimed
    /// once outstanding readers drain (default `true`). `false` restores
    /// the keep-everything-mapped behavior of early versions — VMA use
    /// then grows with every directory doubling.
    pub fn reclamation(mut self, enabled: bool) -> Self {
        self.reclaim = Some(enabled);
        self
    }

    /// Size the physical slot — the bucket and the rewiring unit — as
    /// `2^k` base pages (default `k = 0`, the paper's 4 KB buckets).
    /// Larger slots hold `~2^k` times more entries per bucket, so the
    /// directory is `~2^k` times shallower and the mapping footprint
    /// (live VMAs against `vm.max_map_count`) shrinks by about the same
    /// factor, at the cost of coarser-grained splits and more bytes
    /// copied per relocation. `k = 9` (2 MB) reaches the hardware
    /// hugepage boundary — combine with [`IndexBuilder::huge_pages`].
    /// Applied on top of an explicit [`IndexBuilder::pool`] config too.
    ///
    /// # Errors
    ///
    /// `k > 9` is rejected at [`IndexBuilder::build`] time.
    pub fn slot_pages(mut self, k: u32) -> Self {
        self.slot_power = Some(k);
        self
    }

    /// Opt into hugepage backing for the pool (effective at the 2 MB slot
    /// boundary, i.e. [`IndexBuilder::slot_pages`]`(9)`): the pool tries
    /// an `MFD_HUGETLB` memfd, probes that hugepages are actually
    /// reserved, and falls back cleanly to plain 4 KB-page slots
    /// otherwise (reported by `StatsSnapshot::huge_pages_active`). Below
    /// the boundary the pool merely advises `MADV_HUGEPAGE`,
    /// best-effort.
    pub fn huge_pages(mut self, enabled: bool) -> Self {
        self.huge_pages = enabled;
        self
    }

    /// Physical bucket-layout compaction policy (default
    /// [`CompactionPolicy::disabled`]; use [`CompactionPolicy::on`] for
    /// the recommended production setting). With compaction the bucket
    /// pages are relocated into directory order, so rebuilds map identity
    /// runs the kernel merges into a handful of VMAs — this is what lets
    /// shortcut-served lookups scale past the `vm.max_map_count` ceiling
    /// (millions of keys on a stock kernel) instead of suspending.
    pub fn compaction(mut self, policy: CompactionPolicy) -> Self {
        self.maint.compaction = policy;
        self
    }

    /// Build the index and spawn its mapper thread.
    ///
    /// # Errors
    ///
    /// Propagates pool creation failure (memfd, `mmap`,
    /// `vm.max_map_count`) and configuration rejection as [`IndexError`].
    pub fn build(self) -> Result<ShortcutIndex, IndexError> {
        let layout = match self.slot_power {
            Some(k) => SlotLayout::new(k).map_err(IndexError::Pool)?,
            None => self
                .pool
                .as_ref()
                .map(|p| p.slot_layout)
                .unwrap_or_default(),
        };
        let load = self.max_load_factor.unwrap_or(0.35);
        let entries_per_slot = BucketLayout::for_slot(layout).steady_entries(load);
        // Compaction passes transiently hold live buckets + the target run
        // + not-yet-reclaimed sources, so give the fixed reservation extra
        // room (virtual address space is effectively free; physical pages
        // are hole-punched back as passes retire their sources).
        let view_multiplier = if self.maint.compaction.enabled() {
            5
        } else {
            2
        };
        let mut pool = self.pool.unwrap_or_else(|| match self.capacity {
            Some(entries) => {
                let slots_needed = (entries / entries_per_slot).max(1);
                // Growth amortization floors scale by bytes, not slots:
                // ~256 KB per ftruncate and a 16 MB virtual-view minimum
                // at any slot size (the historical 64/4096-page values at
                // k = 0).
                let growth_floor = layout.slots_for_bytes(1 << 18);
                let view_floor = layout.slots_for_bytes(1 << 24).max(64);
                PoolConfig {
                    initial_pages: 1,
                    min_growth_pages: slots_needed.clamp(growth_floor, 4096),
                    view_capacity_pages: ((slots_needed * view_multiplier).max(view_floor))
                        .next_power_of_two(),
                    ..PoolConfig::default()
                }
            }
            None => PoolConfig::default(),
        });
        pool.slot_layout = layout;
        if self.huge_pages {
            pool.huge_pages = true;
        }
        if let Some(limit) = self.vma_budget_limit {
            pool.vma_budget = Some(VmaBudget::with_limit(limit));
        }
        let mut eh = EhConfig {
            pool,
            ..EhConfig::default()
        };
        if let Some(f) = self.max_load_factor {
            eh.max_load_factor = f;
        }
        let mut maint = self.maint;
        if let Some(reclaim) = self.reclaim {
            maint.reclaim = reclaim;
        }
        Ok(ShortcutIndex {
            inner: ShortcutEh::try_new(ShortcutEhConfig {
                eh,
                maint,
                policy: self.policy,
            })?,
        })
    }
}

/// One merged, point-in-time view over everything the stack counts:
/// structural index statistics, mapper-thread maintenance counters, and
/// the page pool's rewiring counters.
#[derive(Debug, Clone, Copy)]
pub struct StatsSnapshot {
    /// Live entries.
    pub len: usize,
    /// Global depth of the traditional directory.
    pub global_depth: u32,
    /// Number of distinct buckets.
    pub bucket_count: usize,
    /// Average directory fan-in (`slots / buckets`, the routing input).
    pub avg_fanin: f64,
    /// Whether the shortcut directory was in sync at snapshot time.
    pub in_sync: bool,
    /// `(traditional, shortcut)` version numbers (Figure 8's quantities).
    pub versions: (u64, u64),
    /// Whether shortcut maintenance is suspended by the VMA budget
    /// (lookups fall back to the traditional directory).
    pub shortcut_suspended: bool,
    /// Base pages per physical slot — the **count** `2^k`, not the log2
    /// knob passed to [`IndexBuilder::slot_pages`].
    pub pages_per_slot: usize,
    /// Bytes per physical slot (= bytes per bucket).
    pub slot_bytes: usize,
    /// Entry capacity of one bucket at this slot size.
    pub bucket_capacity: usize,
    /// Whether hugepage backing was requested
    /// ([`IndexBuilder::huge_pages`]).
    pub huge_pages_requested: bool,
    /// Whether the hugetlb backend is actually active;
    /// `huge_pages_requested && !huge_pages_active` means the pool fell
    /// back cleanly to plain 4 KB-page slots (no hugepages reserved, or
    /// the slot size is below the 2 MB boundary).
    pub huge_pages_active: bool,
    /// Structural + routing statistics of the index.
    pub index: IndexStats,
    /// Counters of the asynchronous mapper thread.
    pub maint: MaintSnapshot,
    /// Operation counters of the backing page pool.
    pub rewire: rewire::StatsSnapshot,
    /// VMA budget and retired-directory lifecycle counters: how many
    /// mappings the index holds (live + retired + pool view), the budget
    /// limit (`vm.max_map_count` unless overridden), and how many retired
    /// directories were reclaimed. Experiments read this instead of
    /// hand-deriving slot caps from the sysctl.
    pub vma: VmaSnapshot,
}

/// The facade index: Shortcut-EH behind a builder, with concurrent
/// `&self` reads, typed errors and a single merged [`StatsSnapshot`].
///
/// See the [crate docs](crate) for a usage example. All [`Index`] methods
/// are also available inherently, so the trait import is optional.
pub struct ShortcutIndex {
    inner: ShortcutEh,
}

impl ShortcutIndex {
    /// Start building an index.
    pub fn builder() -> IndexBuilder {
        IndexBuilder::default()
    }

    /// Build with the paper's defaults (load factor 0.35, fan-in
    /// threshold 8, 25 ms mapper poll interval).
    ///
    /// # Errors
    ///
    /// Propagates pool creation failure as [`IndexError`].
    pub fn with_defaults() -> Result<Self, IndexError> {
        Self::builder().build()
    }

    /// Insert or update a key.
    ///
    /// # Errors
    ///
    /// Surfaces pool growth / directory-doubling failure as a typed
    /// [`IndexError`]; applied entries stay readable.
    pub fn insert(&mut self, key: u64, value: u64) -> Result<(), IndexError> {
        Index::insert(&mut self.inner, key, value)
    }

    /// Look up a key. Takes `&self`: concurrent readers are safe.
    pub fn get(&self, key: u64) -> Option<u64> {
        Index::get(&self.inner, key)
    }

    /// Batched lookup; validates one seqlock ticket for the whole batch.
    pub fn get_many(&self, keys: &[u64]) -> Vec<Option<u64>> {
        Index::get_many(&self.inner, keys)
    }

    /// Insert a batch, relaying directory events to the mapper once.
    ///
    /// # Errors
    ///
    /// Propagates the first failing insert; entries before it are applied.
    pub fn insert_batch(&mut self, entries: &[(u64, u64)]) -> Result<(), IndexError> {
        Index::insert_batch(&mut self.inner, entries)
    }

    /// Remove a key, returning its value.
    ///
    /// # Errors
    ///
    /// Never fails today; fallible per the [`Index`] write contract.
    pub fn remove(&mut self, key: u64) -> Result<Option<u64>, IndexError> {
        Index::remove(&mut self.inner, key)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        Index::len(&self.inner)
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the shortcut directory is currently in sync.
    pub fn in_sync(&self) -> bool {
        self.inner.in_sync()
    }

    /// Whether shortcut maintenance is suspended because the directory no
    /// longer fits the VMA budget. The index keeps answering every lookup
    /// (through the traditional directory); raise `vm.max_map_count` or
    /// [`IndexBuilder::vma_budget`] for shortcut service at this scale.
    pub fn shortcut_suspended(&self) -> bool {
        self.inner.shortcut_suspended()
    }

    /// Current `(traditional, shortcut)` version numbers.
    pub fn versions(&self) -> (u64, u64) {
        self.inner.versions()
    }

    /// Block until the shortcut catches up (test/bench helper; production
    /// readers never wait, they fall back to the traditional directory).
    pub fn wait_sync(&self, timeout: Duration) -> bool {
        self.inner.wait_sync(timeout)
    }

    /// Relocate every bucket page into directory order in one synchronous
    /// pass and hand the resulting identity rebuild to the mapper. After
    /// the mapper applies it (and retired mappings drain), the live VMA
    /// footprint collapses from one-per-scattered-slot to one per fan-in
    /// cluster. Automatic passes run per the
    /// [`IndexBuilder::compaction`] policy; this entry point is for
    /// explicit maintenance windows.
    ///
    /// # Errors
    ///
    /// Propagates pool failures (typically no room for the contiguous
    /// target run); the index stays consistent and keeps answering.
    pub fn compact(&mut self) -> Result<CompactionOutcome, IndexError> {
        self.inner.compact()
    }

    /// Planned-VMA estimate of the current bucket layout, as a fresh
    /// shortcut rebuild would map it (`O(slots)` — diagnostics).
    ///
    /// # Errors
    ///
    /// Propagates directory-invariant violations as [`IndexError`].
    pub fn layout_vmas(&self) -> Result<usize, IndexError> {
        self.inner.layout_vmas()
    }

    /// `slots − buckets + 1`: the irreducible footprint of a perfectly
    /// compacted layout (one VMA plus one per aliased fan-in > 1 slot).
    pub fn ideal_layout_vmas(&self) -> usize {
        self.inner.ideal_layout_vmas()
    }

    /// First error the mapper thread hit, if any.
    pub fn maint_error(&self) -> Option<IndexError> {
        self.inner.maint_error()
    }

    /// One merged snapshot of index, maintenance, and pool counters.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            len: self.inner.len(),
            global_depth: self.inner.global_depth(),
            bucket_count: self.inner.bucket_count(),
            avg_fanin: self.inner.avg_fanin(),
            in_sync: self.inner.in_sync(),
            versions: self.inner.versions(),
            shortcut_suspended: self.inner.shortcut_suspended(),
            pages_per_slot: self.inner.slot_layout().pages_per_slot(),
            slot_bytes: self.inner.slot_layout().slot_bytes(),
            bucket_capacity: self.inner.bucket_layout().capacity(),
            huge_pages_requested: self.inner.huge_requested(),
            huge_pages_active: self.inner.huge_active(),
            index: self.inner.stats(),
            maint: self.inner.maint_metrics(),
            rewire: self.inner.pool_stats(),
            vma: self.inner.vma_stats(),
        }
    }

    /// The wrapped scheme, for paper-level experiments that need direct
    /// access (version plumbing, published shortcut state).
    pub fn as_shortcut_eh(&self) -> &ShortcutEh {
        &self.inner
    }
}

impl Index for ShortcutIndex {
    fn insert(&mut self, key: u64, value: u64) -> Result<(), IndexError> {
        ShortcutIndex::insert(self, key, value)
    }

    fn get(&self, key: u64) -> Option<u64> {
        ShortcutIndex::get(self, key)
    }

    fn remove(&mut self, key: u64) -> Result<Option<u64>, IndexError> {
        ShortcutIndex::remove(self, key)
    }

    fn len(&self) -> usize {
        ShortcutIndex::len(self)
    }

    fn name(&self) -> &'static str {
        "Shortcut-EH"
    }

    fn get_many(&self, keys: &[u64]) -> Vec<Option<u64>> {
        ShortcutIndex::get_many(self, keys)
    }

    fn insert_batch(&mut self, entries: &[(u64, u64)]) -> Result<(), IndexError> {
        ShortcutIndex::insert_batch(self, entries)
    }
}
