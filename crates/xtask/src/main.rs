//! Workspace automation entry point (cargo-xtask pattern).

mod audit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => match audit::run(&args[1..]) {
            Ok(summary) => {
                println!("{summary}");
            }
            Err(findings) => {
                eprintln!("{findings}");
                std::process::exit(1);
            }
        },
        _ => {
            eprintln!("usage: cargo run -p xtask -- audit [--root <dir>]");
            std::process::exit(2);
        }
    }
}
