//! Unsafe/ordering/page-literal source audit.
//!
//! A dependency-free (no syn, no proc-macro) token walk over the
//! first-party source tree enforcing three policies:
//!
//! 1. **SAFETY comments** — every `unsafe` keyword (block, fn, impl) must
//!    be preceded by a comment containing `SAFETY:` (or a `# Safety` doc
//!    section for unsafe fns) on the same line or on the comment/attribute
//!    block immediately above.
//! 2. **Atomic-ordering allowlist** — every `Ordering::Relaxed` /
//!    `Ordering::SeqCst` token in `crates/{rewire,core,exhash,server}/src`
//!    must be covered by an entry in `ORDERINGS.toml` (repo root) stating
//!    the pairing rationale, with *exact* per-file counts in both
//!    directions: an uncovered ordering fails, and so does a stale
//!    allowlist entry — so any change to ordering-sensitive code forces a
//!    re-review of the rationale.
//! 3. **Page-size literals** — no bare `4096` / `0x1000` outside the slot
//!    layout (`crates/rewire/src/slot.rs`) and `crates/vmsim`; other
//!    meanings of 4096 (e.g. key-batch sizes) carry an explicit
//!    `audit:allow(page-literal)` waiver comment on the same line.
//!
//! The lexer understands line/nested-block comments, string/raw-string/
//! char literals (vs lifetimes), so tokens inside strings or comments are
//! never miscounted as code.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// One source line, split into its code part (string/char literal
/// contents masked with spaces) and its comment text.
#[derive(Debug, Default)]
struct Line {
    code: String,
    comment: String,
}

/// Lex `source` into per-line code/comment parts.
fn lex(source: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let chars: Vec<char> = source.chars().collect();
    let mut lines = vec![Line::default()];
    let mut st = State::Normal;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == State::LineComment {
                st = State::Normal;
            }
            lines.push(Line::default());
            i += 1;
            continue;
        }
        let line = lines.last_mut().unwrap();
        match st {
            State::Normal => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    st = State::LineComment;
                    line.comment.push_str("//");
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw (byte) strings: r"..", r#".."#, br#".."#.
                let raw_start = |j: usize| -> Option<(usize, usize)> {
                    // Returns (index after opening quote, hash count).
                    if chars.get(j) != Some(&'r') {
                        return None;
                    }
                    let mut k = j + 1;
                    let mut hashes = 0;
                    while chars.get(k) == Some(&'#') {
                        hashes += 1;
                        k += 1;
                    }
                    if chars.get(k) == Some(&'"') {
                        Some((k + 1, hashes))
                    } else {
                        None
                    }
                };
                let from = if c == 'b' { i + 1 } else { i };
                if (c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r')))
                    && raw_start(from).is_some()
                {
                    let (next, hashes) = raw_start(from).unwrap();
                    line.code.push(' ');
                    st = State::RawStr(hashes);
                    i = next;
                    continue;
                }
                if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
                    line.code.push(' ');
                    st = State::Str;
                    i += if c == 'b' { 2 } else { 1 };
                    continue;
                }
                if c == '\'' {
                    // Lifetime (or loop label) vs char literal: 'ident not
                    // followed by a closing quote is a lifetime.
                    let is_lifetime = chars
                        .get(i + 1)
                        .is_some_and(|n| n.is_alphanumeric() || *n == '_')
                        && chars.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        line.code.push(c);
                        i += 1;
                        continue;
                    }
                    line.code.push(' ');
                    st = State::Char;
                    i += 1;
                    continue;
                }
                line.code.push(c);
                i += 1;
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    st = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = State::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                line.comment.push(c);
                i += 1;
            }
            State::Str => {
                if c == '\\' {
                    // A string line-continuation escapes the newline; the
                    // line count must still advance.
                    if chars.get(i + 1) == Some(&'\n') {
                        lines.push(Line::default());
                    }
                    i += 2;
                    continue;
                }
                if c == '"' {
                    st = State::Normal;
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let closes = (0..hashes).all(|h| chars.get(i + 1 + h) == Some(&'#'));
                    if closes {
                        st = State::Normal;
                        i += 1 + hashes;
                        continue;
                    }
                }
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    st = State::Normal;
                }
                i += 1;
            }
        }
    }
    lines
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of standalone occurrences of `word` in `code`.
fn find_word(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap());
        let after = code[at + word.len()..].chars().next();
        let after_ok = after.is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            out.push(at);
        }
        start = at + word.len();
    }
    out
}

/// Does the `unsafe` on line `idx` have a SAFETY comment: on the same
/// line, or on the comment/attribute block immediately above?
fn has_safety_comment(lines: &[Line], idx: usize) -> bool {
    let covered = |l: &Line| l.comment.contains("SAFETY:") || l.comment.contains("# Safety");
    if covered(&lines[idx]) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let code = lines[i].code.trim();
        if code.is_empty() || code.starts_with("#[") || code.starts_with("#![") {
            if covered(&lines[i]) {
                return true;
            }
            continue;
        }
        return false;
    }
    false
}

fn unsafe_findings(display: &str, lines: &[Line], out: &mut Vec<String>) -> usize {
    let mut sites = 0;
    for (idx, line) in lines.iter().enumerate() {
        if find_word(&line.code, "unsafe").is_empty() {
            continue;
        }
        sites += 1;
        if !has_safety_comment(lines, idx) {
            out.push(format!(
                "{}:{}: `unsafe` without a preceding `// SAFETY:` comment",
                display,
                idx + 1
            ));
        }
    }
    sites
}

fn count_orderings(lines: &[Line]) -> (usize, usize) {
    let mut relaxed = 0;
    let mut seqcst = 0;
    for line in lines {
        relaxed += find_word(&line.code, "Ordering::Relaxed").len();
        seqcst += find_word(&line.code, "Ordering::SeqCst").len();
    }
    (relaxed, seqcst)
}

const WAIVER: &str = "audit:allow(page-literal)";

fn page_literal_findings(display: &str, lines: &[Line], out: &mut Vec<String>) -> usize {
    let mut waived = 0;
    for (idx, line) in lines.iter().enumerate() {
        let hits = {
            let mut h = find_word(&line.code, "4096");
            // Hex form: find_word's ident-boundary check handles suffixes;
            // a longer hex literal (0x10000) fails the boundary test via
            // its trailing digit.
            h.extend(find_word(&line.code, "0x1000"));
            h
        };
        if hits.is_empty() {
            continue;
        }
        if line.comment.contains(WAIVER) {
            waived += 1;
            continue;
        }
        out.push(format!(
            "{}:{}: bare page-size literal (use SlotLayout/PAGE_SIZE_4K, or waive with `// {}: <why this 4096 is not a page size>`)",
            display,
            idx + 1,
            WAIVER
        ));
    }
    waived
}

#[derive(Debug, Default, Clone)]
struct OrdEntry {
    path: String,
    relaxed: usize,
    seqcst: usize,
    rationale: String,
    line: usize,
}

fn unquote(v: &str, line: usize) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("ORDERINGS.toml:{line}: expected a quoted string"))
    }
}

/// Minimal parser for the `[[file]]` array-of-tables schema used by
/// ORDERINGS.toml (no general TOML support needed or wanted).
fn parse_orderings_toml(text: &str) -> Result<Vec<OrdEntry>, String> {
    let mut entries: Vec<OrdEntry> = Vec::new();
    let mut cur: Option<OrdEntry> = None;
    for (i, raw) in text.lines().enumerate() {
        let ln = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[file]]" {
            if let Some(e) = cur.take() {
                entries.push(e);
            }
            cur = Some(OrdEntry {
                line: ln,
                ..OrdEntry::default()
            });
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            return Err(format!("ORDERINGS.toml:{ln}: expected `key = value`"));
        };
        let Some(e) = cur.as_mut() else {
            return Err(format!("ORDERINGS.toml:{ln}: key outside a [[file]] table"));
        };
        match k.trim() {
            "path" => e.path = unquote(v, ln)?,
            "rationale" => e.rationale = unquote(v, ln)?,
            "relaxed" => {
                e.relaxed = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("ORDERINGS.toml:{ln}: `relaxed` must be an integer"))?
            }
            "seqcst" => {
                e.seqcst = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("ORDERINGS.toml:{ln}: `seqcst` must be an integer"))?
            }
            other => return Err(format!("ORDERINGS.toml:{ln}: unknown key `{other}`")),
        }
    }
    if let Some(e) = cur.take() {
        entries.push(e);
    }
    for e in &entries {
        if e.path.is_empty() {
            return Err(format!("ORDERINGS.toml:{}: entry without `path`", e.line));
        }
        if e.rationale.trim().is_empty() {
            return Err(format!(
                "ORDERINGS.toml:{}: entry for {} must state a pairing rationale",
                e.line, e.path
            ));
        }
    }
    Ok(entries)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn rel_display(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Run the audit. `Ok(summary)` on a clean tree, `Err(findings)` with one
/// line per violation otherwise.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            other => return Err(format!("unknown audit flag `{other}`")),
        }
    }
    let root = root
        .canonicalize()
        .map_err(|e| format!("bad root {}: {e}", root.display()))?;

    // First-party source scope: the facade's src plus every crates/* src.
    let mut files: Vec<PathBuf> = Vec::new();
    walk_rs(&root.join("src"), &mut files);
    walk_rs(&root.join("crates"), &mut files);
    files.retain(|p| {
        let d = rel_display(&root, p);
        // Only library/binary sources: tests/benches/examples hold no
        // production unsafe and their 4096s are workload parameters.
        d.starts_with("src/") || (d.starts_with("crates/") && d.contains("/src/"))
    });

    const ORDERING_SCOPE: [&str; 4] = [
        "crates/rewire/src/",
        "crates/core/src/",
        "crates/exhash/src/",
        "crates/server/src/",
    ];
    // Files where a bare page-size literal is the point.
    const PAGE_LITERAL_OK: [&str; 2] = ["crates/rewire/src/slot.rs", "crates/vmsim/src/"];

    let mut findings: Vec<String> = Vec::new();
    let mut unsafe_sites = 0;
    let mut waived = 0;
    let mut counted: Vec<(String, (usize, usize))> = Vec::new();
    for path in &files {
        let display = rel_display(&root, path);
        let source = fs::read_to_string(path).map_err(|e| format!("read {display}: {e}"))?;
        let lines = lex(&source);
        unsafe_sites += unsafe_findings(&display, &lines, &mut findings);
        if ORDERING_SCOPE.iter().any(|s| display.starts_with(s)) {
            let (r, s) = count_orderings(&lines);
            if r + s > 0 {
                counted.push((display.clone(), (r, s)));
            }
        }
        if !PAGE_LITERAL_OK.iter().any(|s| display.starts_with(s)) {
            waived += page_literal_findings(&display, &lines, &mut findings);
        }
    }

    // Reconcile orderings against the allowlist, both directions.
    let toml_path = root.join("ORDERINGS.toml");
    let entries = match fs::read_to_string(&toml_path) {
        Ok(text) => parse_orderings_toml(&text)?,
        Err(e) => return Err(format!("read ORDERINGS.toml: {e}")),
    };
    for (file, (r, s)) in &counted {
        match entries.iter().find(|e| &e.path == file) {
            None => findings.push(format!(
                "{file}: {r} Ordering::Relaxed + {s} Ordering::SeqCst with no ORDERINGS.toml entry"
            )),
            Some(e) if e.relaxed != *r || e.seqcst != *s => findings.push(format!(
                "{file}: ordering counts changed (code has {r} Relaxed + {s} SeqCst, \
                 allowlist says {} + {}): re-review the pairing rationale and update ORDERINGS.toml",
                e.relaxed, e.seqcst
            )),
            Some(_) => {}
        }
    }
    for e in &entries {
        if !counted.iter().any(|(f, _)| f == &e.path) {
            findings.push(format!(
                "ORDERINGS.toml:{}: stale entry for {} (file has no Relaxed/SeqCst orderings)",
                e.line, e.path
            ));
        }
    }

    if findings.is_empty() {
        let (r, s) = counted
            .iter()
            .fold((0, 0), |(ar, as_), (_, (r, s))| (ar + r, as_ + s));
        let mut summary = String::new();
        let _ = write!(
            summary,
            "audit OK: {} files; {} unsafe sites, all with SAFETY comments; \
             {} Relaxed + {} SeqCst orderings across {} files, all allowlisted; \
             {} page-literal waivers",
            files.len(),
            unsafe_sites,
            r,
            s,
            counted.len(),
            waived
        );
        Ok(summary)
    } else {
        findings.push(format!("audit FAILED: {} finding(s)", findings.len()));
        Err(findings.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_masks_strings_and_comments() {
        let src = r##"
let a = "unsafe 4096 Ordering::Relaxed"; // comment unsafe
let b = r#"unsafe"#;
/* block unsafe
   still comment */
let c = 'x';
let lt: &'static str = "y";
"##;
        let lines = lex(src);
        for l in &lines {
            assert!(
                find_word(&l.code, "unsafe").is_empty(),
                "code: {:?}",
                l.code
            );
            assert!(find_word(&l.code, "4096").is_empty());
        }
        assert!(lines.iter().any(|l| l.comment.contains("comment unsafe")));
        // The lifetime line's code survives masking.
        assert!(lines.iter().any(|l| l.code.contains("&'static str")));
    }

    #[test]
    fn word_boundaries() {
        assert_eq!(find_word("unsafe {", "unsafe").len(), 1);
        assert_eq!(find_word("unsafe_op_in_unsafe_fn", "unsafe").len(), 0);
        assert_eq!(find_word("xunsafe", "unsafe").len(), 0);
        assert_eq!(find_word("14096", "4096").len(), 0);
        assert_eq!(find_word("40960", "4096").len(), 0);
        assert_eq!(find_word("4096usize", "4096").len(), 0); // suffix = ident char
        assert_eq!(find_word("[4096]", "4096").len(), 1);
        assert_eq!(find_word("0x10000", "0x1000").len(), 0);
        assert_eq!(find_word("(0x1000)", "0x1000").len(), 1);
    }

    #[test]
    fn safety_comment_detection() {
        let ok = lex("// SAFETY: fine\nunsafe { x() };\n");
        assert!(has_safety_comment(&ok, 1));
        let ok_attr = lex("// SAFETY: fine\n#[inline]\nunsafe fn f() {}\n");
        assert!(has_safety_comment(&ok_attr, 2));
        let ok_same = lex("unsafe { x() }; // SAFETY: inline\n");
        assert!(has_safety_comment(&ok_same, 0));
        let ok_doc = lex("/// # Safety\n/// caller checks\nunsafe fn f() {}\n");
        assert!(has_safety_comment(&ok_doc, 2));
        let bad = lex("let y = 1;\nunsafe { x() };\n");
        assert!(!has_safety_comment(&bad, 1));
        let bad_far = lex("// SAFETY: stale\nlet y = 1;\nunsafe { x() };\n");
        assert!(!has_safety_comment(&bad_far, 2));
    }

    #[test]
    fn ordering_counting() {
        let lines = lex("a.load(Ordering::Relaxed);\n\
             b.store(1, Ordering::SeqCst); // Ordering::SeqCst in comment\n\
             let s = \"Ordering::Relaxed\";\n\
             c.fetch_add(1, Ordering::Relaxed);\n");
        assert_eq!(count_orderings(&lines), (2, 1));
    }

    #[test]
    fn page_literal_waiver() {
        let lines = lex(
            "let batch = 4096; // audit:allow(page-literal): key batch, not a page\n\
             let page = 4096;\n",
        );
        let mut out = Vec::new();
        let waived = page_literal_findings("f.rs", &lines, &mut out);
        assert_eq!(waived, 1);
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("f.rs:2"));
    }

    #[test]
    fn toml_roundtrip_and_validation() {
        let good = "# header\n[[file]]\npath = \"a.rs\"\nrelaxed = 3\nseqcst = 1\nrationale = \"stat counters; = signs ok\"\n";
        let e = parse_orderings_toml(good).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].relaxed, 3);
        assert_eq!(e[0].seqcst, 1);
        assert!(parse_orderings_toml("[[file]]\npath = \"a.rs\"\n").is_err()); // no rationale
        assert!(parse_orderings_toml("path = \"a.rs\"\n").is_err()); // key outside table
        assert!(parse_orderings_toml("[[file]]\nbogus = 1\n").is_err());
    }
}
