//! Synchronization facade: `std` primitives by default, loomish-
//! instrumented ones when the `loomish` feature is enabled.
//!
//! Every concurrency protocol in the stack (the [`crate::RetireList`]
//! pin/reclaim Dekker pairing here, the seqlock in `shortcut-core`, the
//! reply-slot rendezvous in `shortcut-server`) routes its atomics, mutexes
//! and condvars through this module, so the exact production code can be
//! run under the loomish model checker by flipping one feature. With the
//! feature enabled but no model active (ordinary tests, binaries), the
//! loomish types pass through to `std` with identical behavior.

#[cfg(feature = "loomish")]
pub use loomish::sync::{
    fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard, Ordering,
    WaitTimeoutResult,
};

#[cfg(feature = "loomish")]
pub use loomish::thread;

#[cfg(not(feature = "loomish"))]
pub use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(feature = "loomish"))]
pub use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

#[cfg(not(feature = "loomish"))]
pub use std::thread;
