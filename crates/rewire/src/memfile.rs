//! Main-memory files: `memfd_create(2)` + `ftruncate(2)`.
//!
//! A main-memory file acts like a normal file but is backed by volatile
//! physical memory. Its file descriptor is the program's *handle to physical
//! memory*: mapping a byte range of the file with `mmap(MAP_SHARED)`
//! establishes a controllable virtual→physical mapping (paper §2).

use crate::error::{Error, Result};
use crate::page::{is_page_aligned, page_size};
use std::ffi::CString;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A file living purely in physical main memory.
///
/// The file is created with `memfd_create` and resized with `ftruncate` at
/// page granularity. Dropping the `MemFile` closes the descriptor, which
/// releases the physical pages once the last mapping of them goes away.
#[derive(Debug)]
pub struct MemFile {
    fd: RawFd,
    /// Current length in bytes. Atomic so a shared handle (mapper thread)
    /// can read it without locking; only the owner resizes.
    len: AtomicUsize,
    /// Whether the file lives on hugetlbfs (`MFD_HUGETLB`): every resize,
    /// mapping and hole punch must then be 2 MB-granular, which
    /// slot-aligned callers at the hugepage boundary satisfy by
    /// construction.
    hugetlb: bool,
}

impl MemFile {
    /// Create an empty main-memory file. `name` is purely diagnostic (it
    /// shows up in `/proc/self/fd`), need not be unique.
    pub fn create(name: &str) -> Result<Self> {
        Self::create_with_flags(name, 0, false)
    }

    /// Create a main-memory file backed by **2 MB hardware hugepages**
    /// (`MFD_HUGETLB | MFD_HUGE_2MB`). Fails on kernels without hugetlb
    /// support or sandboxes that filter the flag; creation succeeding does
    /// **not** guarantee that hugepages are actually reserved — callers
    /// must probe a mapping (see `PagePool`'s detection) and fall back.
    pub fn create_huge(name: &str) -> Result<Self> {
        Self::create_with_flags(name, libc::MFD_HUGETLB | libc::MFD_HUGE_2MB, true)
    }

    fn create_with_flags(name: &str, flags: libc::c_uint, hugetlb: bool) -> Result<Self> {
        let cname = CString::new(name).map_err(|_| Error::invalid("name contains NUL"))?;
        // SAFETY: memfd_create with a valid C string.
        let fd = unsafe { libc::memfd_create(cname.as_ptr(), flags) };
        if fd < 0 {
            return Err(Error::os("memfd_create"));
        }
        Ok(MemFile {
            fd,
            len: AtomicUsize::new(0),
            hugetlb,
        })
    }

    /// Whether the file is backed by hugetlbfs (created via
    /// [`MemFile::create_huge`]).
    #[inline]
    pub fn is_hugetlb(&self) -> bool {
        self.hugetlb
    }

    /// The raw file descriptor, for use in `mmap` calls.
    #[inline]
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Current file length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the file currently has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Release the physical memory backing `[offset, offset + len)` without
    /// changing the file size (`fallocate(FALLOC_FL_PUNCH_HOLE)`). The range
    /// reads as zeros afterwards and is materialized again on next write.
    ///
    /// This is how a pool reclaims physical memory of freed pages that are
    /// *not* at the end of the file (where `ftruncate` cannot reach).
    pub fn punch_hole(&self, offset: usize, len: usize) -> Result<()> {
        if !is_page_aligned(offset) || !is_page_aligned(len) {
            return Err(Error::invalid("punch_hole range must be page aligned"));
        }
        // SAFETY: fd is a valid memfd owned by self; flags are the
        // documented hole-punching combination.
        let rc = unsafe {
            libc::fallocate(
                self.fd,
                libc::FALLOC_FL_PUNCH_HOLE | libc::FALLOC_FL_KEEP_SIZE,
                offset as libc::off_t,
                len as libc::off_t,
            )
        };
        if rc != 0 {
            return Err(Error::os("fallocate"));
        }
        Ok(())
    }

    /// Resize the file to `new_len` bytes (must be page aligned). Growing
    /// provides new zero-filled physical pages; shrinking releases the tail.
    pub fn resize(&self, new_len: usize) -> Result<()> {
        if !is_page_aligned(new_len) {
            return Err(Error::invalid(format!(
                "resize length {new_len} not a multiple of the page size {}",
                page_size()
            )));
        }
        // SAFETY: fd is a valid memfd owned by self.
        let rc = unsafe { libc::ftruncate(self.fd, new_len as libc::off_t) };
        if rc != 0 {
            return Err(Error::os("ftruncate"));
        }
        self.len.store(new_len, Ordering::Release);
        Ok(())
    }
}

impl Drop for MemFile {
    fn drop(&mut self) {
        // SAFETY: fd is owned and not yet closed; double-close is impossible
        // because Drop runs at most once.
        unsafe {
            libc::close(self.fd);
        }
    }
}

// SAFETY: the fd is just an integer handle; concurrent mmap/read through it
// is mediated by the kernel. Resizes are atomic at the kernel level and the
// cached length uses release/acquire.
unsafe impl Send for MemFile {}
// SAFETY: same argument as Send — every &self method is a kernel-mediated
// fd call plus an atomic length read; there is no unsynchronized state.
unsafe impl Sync for MemFile {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_resize() {
        let f = MemFile::create("test").unwrap();
        assert!(f.is_empty());
        f.resize(4 * page_size()).unwrap();
        assert_eq!(f.len(), 4 * page_size());
        f.resize(2 * page_size()).unwrap();
        assert_eq!(f.len(), 2 * page_size());
        f.resize(0).unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn unaligned_resize_rejected() {
        let f = MemFile::create("test").unwrap();
        let err = f.resize(100).unwrap_err();
        assert!(matches!(err, Error::InvalidArg { .. }));
    }

    #[test]
    fn name_with_nul_rejected() {
        assert!(MemFile::create("a\0b").is_err());
    }

    #[test]
    fn punch_hole_zeroes_range_and_keeps_size() {
        let f = MemFile::create("hole").unwrap();
        f.resize(4 * page_size()).unwrap();
        // SAFETY: fresh MAP_SHARED mapping of this test's memfd; every offset
        // stays inside the mapped length and munmap precedes the fd's drop.
        unsafe {
            let p = libc::mmap(
                std::ptr::null_mut(),
                4 * page_size(),
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED,
                f.fd(),
                0,
            );
            assert_ne!(p, libc::MAP_FAILED);
            for i in 0..4 {
                *(p as *mut u64).add(i * page_size() / 8) = 1000 + i as u64;
            }
            match f.punch_hole(page_size(), page_size()) {
                Err(Error::Os { errno, .. }) if errno == libc::EOPNOTSUPP => {
                    // Sandboxed kernels (e.g. gVisor) do not implement
                    // FALLOC_FL_PUNCH_HOLE on memfds; the API degrades to
                    // an error the pool can ignore. Nothing more to check.
                    libc::munmap(p, 4 * page_size());
                    return;
                }
                other => other.unwrap(),
            }
            assert_eq!(f.len(), 4 * page_size(), "size unchanged");
            assert_eq!(*(p as *const u64), 1000);
            assert_eq!(
                *(p as *const u64).add(page_size() / 8),
                0,
                "hole reads zero"
            );
            assert_eq!(*(p as *const u64).add(2 * page_size() / 8), 1002);
            // The hole is writable again (fresh zero page materializes).
            *(p as *mut u64).add(page_size() / 8) = 77;
            assert_eq!(*(p as *const u64).add(page_size() / 8), 77);
            libc::munmap(p, 4 * page_size());
        }
    }

    #[test]
    fn punch_hole_rejects_unaligned() {
        let f = MemFile::create("hole2").unwrap();
        f.resize(page_size()).unwrap();
        assert!(f.punch_hole(1, page_size()).is_err());
        assert!(f.punch_hole(0, 100).is_err());
    }

    #[test]
    fn contents_survive_grow() {
        // Write through a mapping, grow, check the data is still there.
        let f = MemFile::create("grow").unwrap();
        f.resize(page_size()).unwrap();
        // SAFETY: fresh MAP_SHARED mapping of this test's memfd; every offset
        // stays inside the mapped length and munmap precedes the fd's drop.
        unsafe {
            let p = libc::mmap(
                std::ptr::null_mut(),
                page_size(),
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED,
                f.fd(),
                0,
            );
            assert_ne!(p, libc::MAP_FAILED);
            *(p as *mut u64) = 0xdead_beef;
            libc::munmap(p, page_size());
        }
        f.resize(8 * page_size()).unwrap();
        // SAFETY: fresh MAP_SHARED mapping of this test's memfd; every offset
        // stays inside the mapped length and munmap precedes the fd's drop.
        unsafe {
            let p = libc::mmap(
                std::ptr::null_mut(),
                page_size(),
                libc::PROT_READ,
                libc::MAP_SHARED,
                f.fd(),
                0,
            );
            assert_ne!(p, libc::MAP_FAILED);
            assert_eq!(*(p as *const u64), 0xdead_beef);
            libc::munmap(p, page_size());
        }
    }
}
