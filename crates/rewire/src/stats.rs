//! Operation counters for the rewiring substrate.
//!
//! The paper's §3 "bewares" are all about *how often* the expensive
//! operations happen (mmap calls, page-table populations, pool resizes).
//! These counters make that observable in tests, examples, and benches.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe counters. One instance lives in each [`crate::PagePool`]
/// and each [`crate::VirtArea`]; benches aggregate snapshots.
#[derive(Debug, Default)]
pub struct RewireStats {
    mmap_calls: AtomicU64,
    munmap_calls: AtomicU64,
    pages_rewired: AtomicU64,
    pages_populated: AtomicU64,
    pool_grows: AtomicU64,
    pool_shrinks: AtomicU64,
    pages_allocated: AtomicU64,
    pages_freed: AtomicU64,
}

/// A point-in-time copy of [`RewireStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Number of `mmap` invocations (reservations + rewirings).
    pub mmap_calls: u64,
    /// Number of `munmap` invocations.
    pub munmap_calls: u64,
    /// Virtual pages whose mapping was redirected to a pool page.
    pub pages_rewired: u64,
    /// Pages eagerly inserted into the page table (`MAP_POPULATE` or touch).
    pub pages_populated: u64,
    /// Pool file growth events (`ftruncate` up).
    pub pool_grows: u64,
    /// Pool file shrink events (`ftruncate` down).
    pub pool_shrinks: u64,
    /// Pages handed out by the pool allocator.
    pub pages_allocated: u64,
    /// Pages returned to the pool allocator.
    pub pages_freed: u64,
}

impl StatsSnapshot {
    /// Merge two pools' snapshots (the sharded index aggregates one per
    /// shard's pool). Every field is a monotone event counter, so the
    /// merge **sums** them all; there are no gauges here.
    pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            mmap_calls: self.mmap_calls + other.mmap_calls,
            munmap_calls: self.munmap_calls + other.munmap_calls,
            pages_rewired: self.pages_rewired + other.pages_rewired,
            pages_populated: self.pages_populated + other.pages_populated,
            pool_grows: self.pool_grows + other.pool_grows,
            pool_shrinks: self.pool_shrinks + other.pool_shrinks,
            pages_allocated: self.pages_allocated + other.pages_allocated,
            pages_freed: self.pages_freed + other.pages_freed,
        }
    }
}

impl RewireStats {
    /// New zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn count_mmap(&self, n: u64) {
        self.mmap_calls.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_munmap(&self, n: u64) {
        self.munmap_calls.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_rewired(&self, n: u64) {
        self.pages_rewired.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_populated(&self, n: u64) {
        self.pages_populated.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_grow(&self) {
        self.pool_grows.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_shrink(&self) {
        self.pool_shrinks.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_alloc(&self, n: u64) {
        self.pages_allocated.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_free(&self, n: u64) {
        self.pages_freed.fetch_add(n, Ordering::Relaxed);
    }

    /// Copy out the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            mmap_calls: self.mmap_calls.load(Ordering::Relaxed),
            munmap_calls: self.munmap_calls.load(Ordering::Relaxed),
            pages_rewired: self.pages_rewired.load(Ordering::Relaxed),
            pages_populated: self.pages_populated.load(Ordering::Relaxed),
            pool_grows: self.pool_grows.load(Ordering::Relaxed),
            pool_shrinks: self.pool_shrinks.load(Ordering::Relaxed),
            pages_allocated: self.pages_allocated.load(Ordering::Relaxed),
            pages_freed: self.pages_freed.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Difference `self - earlier`, counter-wise. Useful for measuring the
    /// cost of a single phase.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            mmap_calls: self.mmap_calls - earlier.mmap_calls,
            munmap_calls: self.munmap_calls - earlier.munmap_calls,
            pages_rewired: self.pages_rewired - earlier.pages_rewired,
            pages_populated: self.pages_populated - earlier.pages_populated,
            pool_grows: self.pool_grows - earlier.pool_grows,
            pool_shrinks: self.pool_shrinks - earlier.pool_shrinks,
            pages_allocated: self.pages_allocated - earlier.pages_allocated,
            pages_freed: self.pages_freed - earlier.pages_freed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = RewireStats::new();
        s.count_mmap(2);
        s.count_rewired(5);
        s.count_alloc(3);
        s.count_free(1);
        let snap = s.snapshot();
        assert_eq!(snap.mmap_calls, 2);
        assert_eq!(snap.pages_rewired, 5);
        assert_eq!(snap.pages_allocated, 3);
        assert_eq!(snap.pages_freed, 1);
    }

    #[test]
    fn merge_sums_every_counter() {
        let a = StatsSnapshot {
            mmap_calls: 4,
            pages_rewired: 10,
            ..StatsSnapshot::default()
        };
        let b = StatsSnapshot {
            mmap_calls: 1,
            pages_freed: 3,
            ..StatsSnapshot::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.mmap_calls, 5);
        assert_eq!(m.pages_rewired, 10);
        assert_eq!(m.pages_freed, 3);
        assert_eq!(m, b.merge(&a));
    }

    #[test]
    fn delta_subtracts() {
        let s = RewireStats::new();
        s.count_mmap(2);
        let a = s.snapshot();
        s.count_mmap(3);
        s.count_populated(7);
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.mmap_calls, 3);
        assert_eq!(d.pages_populated, 7);
        assert_eq!(d.pages_rewired, 0);
    }
}
