//! The self-managed pool of physical pages (paper §2.1).
//!
//! One [`MemFile`] represents all physical memory the application wants to
//! be able to create shortcuts to. The pool
//!
//! * grows the file on demand (`ftruncate`) in chunks, eagerly populating
//!   new pages to avoid hard page faults at access time,
//! * keeps a FIFO free-queue of page offsets for reuse,
//! * shrinks the file when the tail pages are unused and the pool exceeds a
//!   configurable threshold, and
//! * maintains `v_pool`: a virtual memory area that maps **linearly** to the
//!   entire file, so that pool pages are directly addressable and so that
//!   the physical page of any leaf can be recovered from its `v_pool`
//!   address by plain offset arithmetic (`offset_leaf = v_leaf − v_pool`).
//!
//! The linear view lives inside a fixed-size anonymous reservation, so its
//! base address never changes across grows/shrinks — pointers derived from
//! [`PagePool::page_ptr`] stay valid for the lifetime of the allocation.

use crate::budget::{VmaBudget, VmaSnapshot};
use crate::error::{Error, Result};
use crate::memfile::MemFile;
use crate::page::{page_size, PageIdx};
use crate::retire::RetireList;
use crate::stats::{RewireStats, StatsSnapshot};
use std::collections::VecDeque;
use std::sync::Arc;

/// VMAs charged for the pool's own linear view: the mapped file prefix
/// plus the `PROT_NONE` remainder of the fixed reservation.
const POOL_VIEW_VMAS: usize = 2;

/// Shared implementation of [`PagePool::vma_snapshot`] /
/// [`PoolHandle::vma_snapshot`].
fn vma_snapshot(budget: &VmaBudget, retire: &RetireList) -> VmaSnapshot {
    let (areas_retired, areas_reclaimed, vmas_reclaimed) = retire.counters();
    VmaSnapshot {
        in_use: budget.in_use() as u64,
        limit: budget.limit() as u64,
        retired_areas: retire.retired_count() as u64,
        areas_retired,
        areas_reclaimed,
        vmas_reclaimed,
    }
}

/// Tuning knobs for a [`PagePool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Diagnostic name of the backing memfd.
    pub name: String,
    /// Initial file size in pages (the paper's indexes start at one 4 KB
    /// bucket, i.e. one page).
    pub initial_pages: usize,
    /// Grow by at least this many pages per `ftruncate` (amortizes syscalls).
    pub min_growth_pages: usize,
    /// Only shrink the file while it is larger than this many pages.
    pub shrink_threshold_pages: usize,
    /// Eagerly populate page-table entries for newly grown pages
    /// (`MAP_POPULATE`), avoiding hard page faults at first access.
    pub pretouch: bool,
    /// Size of the fixed virtual reservation holding the linear view, in
    /// pages. The pool can never grow beyond this. Virtual address space is
    /// effectively free on 64-bit; the default reserves 16 GB.
    pub view_capacity_pages: usize,
    /// VMA budget this pool (and the areas retired into it) accounts
    /// against. `None` uses the process-global budget fed by
    /// `vm.max_map_count` ([`VmaBudget::global`]); tests and stress rigs
    /// inject private budgets with small limits.
    pub vma_budget: Option<Arc<VmaBudget>>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            name: "shortcut-pool".to_string(),
            initial_pages: 1,
            min_growth_pages: 64,
            shrink_threshold_pages: 1024,
            pretouch: true,
            view_capacity_pages: 1 << 22, // 16 GB of 4 KB pages
            vma_budget: None,
        }
    }
}

/// Allocation state of one pool page (kept for double-free detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Free,
    Allocated,
}

/// A shareable, thread-safe handle to the pool's physical memory.
///
/// Rewiring from another thread (the paper's asynchronous *mapper thread*)
/// only needs the file descriptor and byte offsets — not the allocator — so
/// this handle is all that crosses the thread boundary.
#[derive(Debug, Clone)]
pub struct PoolHandle {
    file: Arc<MemFile>,
    stats: Arc<RewireStats>,
    budget: Arc<VmaBudget>,
    retire: Arc<RetireList>,
}

impl PoolHandle {
    /// Raw fd of the main-memory file (for `mmap`).
    #[inline]
    pub fn fd(&self) -> std::os::unix::io::RawFd {
        self.file.fd()
    }

    /// Current file length in bytes.
    #[inline]
    pub fn file_len(&self) -> usize {
        self.file.len()
    }

    /// The VMA budget this pool accounts against.
    #[inline]
    pub fn budget(&self) -> &Arc<VmaBudget> {
        &self.budget
    }

    /// The pool's retirement machinery: reader pins and the retired-area
    /// list (see [`RetireList`]).
    #[inline]
    pub fn retire_list(&self) -> &Arc<RetireList> {
        &self.retire
    }

    /// Point-in-time view of the VMA budget and retirement counters.
    pub fn vma_snapshot(&self) -> VmaSnapshot {
        vma_snapshot(&self.budget, &self.retire)
    }

    pub(crate) fn stats(&self) -> &RewireStats {
        &self.stats
    }
}

/// The pool of physical pages. See module docs.
pub struct PagePool {
    file: Arc<MemFile>,
    cfg: PoolConfig,
    /// Base of the fixed anonymous reservation that hosts the linear view.
    view_base: *mut u8,
    /// Pages of the file currently mapped into the view (== file length).
    file_pages: usize,
    /// FIFO of reusable page indices. May contain stale entries for pages
    /// that were truncated away by a shrink; `alloc_page` skips those.
    free_queue: VecDeque<usize>,
    state: Vec<PageState>,
    allocated: usize,
    stats: Arc<RewireStats>,
    budget: Arc<VmaBudget>,
    retire: Arc<RetireList>,
}

impl std::fmt::Debug for PagePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagePool")
            .field("file_pages", &self.file_pages)
            .field("allocated", &self.allocated)
            .field("free_queued", &self.free_queue.len())
            .finish()
    }
}

impl PagePool {
    /// Create a pool with the given configuration.
    pub fn new(cfg: PoolConfig) -> Result<Self> {
        if cfg.view_capacity_pages == 0 {
            return Err(Error::invalid("view_capacity_pages must be > 0"));
        }
        if cfg.initial_pages > cfg.view_capacity_pages {
            return Err(Error::invalid("initial_pages exceeds view_capacity_pages"));
        }
        let file = Arc::new(MemFile::create(&cfg.name)?);
        let stats = Arc::new(RewireStats::new());

        // Reserve the fixed view as PROT_NONE anonymous memory: any stray
        // access to a not-yet-grown region faults loudly.
        let cap_bytes = cfg.view_capacity_pages * page_size();
        // SAFETY: plain anonymous reservation; we own the returned range.
        let view_base = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                cap_bytes,
                libc::PROT_NONE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE,
                -1,
                0,
            )
        };
        if view_base == libc::MAP_FAILED {
            return Err(Error::os("mmap"));
        }
        stats.count_mmap(1);
        let budget = cfg.vma_budget.clone().unwrap_or_else(VmaBudget::global);
        budget.charge(POOL_VIEW_VMAS);

        let mut pool = PagePool {
            file,
            cfg,
            view_base: view_base as *mut u8,
            file_pages: 0,
            free_queue: VecDeque::new(),
            state: Vec::new(),
            allocated: 0,
            stats,
            budget,
            retire: Arc::new(RetireList::new()),
        };
        let initial = pool.cfg.initial_pages;
        if initial > 0 {
            pool.grow_to(initial)?;
        }
        Ok(pool)
    }

    /// Create a pool with [`PoolConfig::default`].
    pub fn with_defaults() -> Result<Self> {
        Self::new(PoolConfig::default())
    }

    /// Grow the file (and the linear view) to exactly `new_pages`.
    fn grow_to(&mut self, new_pages: usize) -> Result<()> {
        debug_assert!(new_pages > self.file_pages);
        if new_pages > self.cfg.view_capacity_pages {
            return Err(Error::BadResize {
                current: self.file_pages,
                requested: new_pages,
            });
        }
        let old_pages = self.file_pages;
        self.file.resize(new_pages * page_size())?;
        self.stats.count_grow();

        // Map the newly valid file range into the view at the same offset.
        let delta = new_pages - old_pages;
        let mut flags = libc::MAP_SHARED | libc::MAP_FIXED;
        if self.cfg.pretouch {
            flags |= libc::MAP_POPULATE;
        }
        // SAFETY: the target range lies inside our own reservation; MAP_FIXED
        // replaces the PROT_NONE placeholder; offset/length are page aligned.
        let rc = unsafe {
            libc::mmap(
                self.view_base.add(old_pages * page_size()) as *mut libc::c_void,
                delta * page_size(),
                libc::PROT_READ | libc::PROT_WRITE,
                flags,
                self.file.fd(),
                (old_pages * page_size()) as libc::off_t,
            )
        };
        if rc == libc::MAP_FAILED {
            return Err(Error::os("mmap"));
        }
        self.stats.count_mmap(1);
        if self.cfg.pretouch {
            self.stats.count_populated(delta as u64);
        }

        self.file_pages = new_pages;
        self.state.resize(new_pages, PageState::Free);
        for i in old_pages..new_pages {
            self.free_queue.push_back(i);
        }
        Ok(())
    }

    /// Allocate one (zero-initialized on first use) physical page.
    pub fn alloc_page(&mut self) -> Result<PageIdx> {
        loop {
            match self.free_queue.pop_front() {
                Some(i) if i < self.file_pages && self.state[i] == PageState::Free => {
                    self.state[i] = PageState::Allocated;
                    self.allocated += 1;
                    self.stats.count_alloc(1);
                    return Ok(PageIdx(i));
                }
                Some(_) => continue, // stale entry from a shrink
                None => {
                    let target = (self.file_pages + self.cfg.min_growth_pages)
                        .max(self.file_pages * 2)
                        .min(self.cfg.view_capacity_pages);
                    if target <= self.file_pages {
                        return Err(Error::BadResize {
                            current: self.file_pages,
                            requested: target + 1,
                        });
                    }
                    self.grow_to(target)?;
                }
            }
        }
    }

    /// Allocate `n` physically **contiguous** pages (contiguous in file
    /// offsets). Always carves them from fresh space at the end of the file,
    /// so the run can later be rewired with a single `mmap` call.
    pub fn alloc_run(&mut self, n: usize) -> Result<PageIdx> {
        if n == 0 {
            return Err(Error::invalid("alloc_run of zero pages"));
        }
        let start = self.file_pages;
        self.grow_to(start + n)?;
        // grow_to pushed [start, start+grown) into the free queue; claim the
        // first n and leave the rest queued.
        for i in start..start + n {
            debug_assert_eq!(self.state[i], PageState::Free);
            self.state[i] = PageState::Allocated;
        }
        // Remove the claimed indices from the queue tail region. They were
        // appended just now, so drain by filtering the last grown chunk.
        self.free_queue
            .retain(|&i| !(start..start + n).contains(&i));
        self.allocated += n;
        self.stats.count_alloc(n as u64);
        Ok(PageIdx(start))
    }

    /// Return a page to the pool. Shrinks the file if the freed page(s) sit
    /// at the end and the pool is above the shrink threshold.
    pub fn free_page(&mut self, page: PageIdx) -> Result<()> {
        let i = page.0;
        if i >= self.file_pages {
            return Err(Error::BadPageRef {
                page: i,
                what: "beyond end of pool",
            });
        }
        if self.state[i] != PageState::Allocated {
            return Err(Error::BadPageRef {
                page: i,
                what: "double free",
            });
        }
        self.state[i] = PageState::Free;
        self.allocated -= 1;
        self.stats.count_free(1);
        self.free_queue.push_back(i);

        // Paper §2.1: if the unused page marks the end of the file and the
        // pool is above the threshold, simply shrink the file. Truncated
        // pages leave stale queue entries behind; `alloc_page` skips them
        // (and duplicates are harmless because popping requires the page to
        // still be in the Free state).
        if self.file_pages > self.cfg.shrink_threshold_pages
            && self.state[self.file_pages - 1] == PageState::Free
        {
            self.shrink_tail()?;
        }
        Ok(())
    }

    /// Truncate away all trailing free pages (but never below the threshold).
    fn shrink_tail(&mut self) -> Result<()> {
        let mut new_pages = self.file_pages;
        while new_pages > self.cfg.shrink_threshold_pages
            && new_pages > 0
            && self.state[new_pages - 1] == PageState::Free
        {
            new_pages -= 1;
        }
        if new_pages == self.file_pages {
            return Ok(());
        }
        // Return the vacated view range to PROT_NONE anonymous memory so
        // stray accesses fault instead of SIGBUS-ing on a shrunk file.
        let delta = self.file_pages - new_pages;
        // SAFETY: range is inside our reservation; MAP_FIXED replacement.
        let rc = unsafe {
            libc::mmap(
                self.view_base.add(new_pages * page_size()) as *mut libc::c_void,
                delta * page_size(),
                libc::PROT_NONE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_FIXED | libc::MAP_NORESERVE,
                -1,
                0,
            )
        };
        if rc == libc::MAP_FAILED {
            return Err(Error::os("mmap"));
        }
        self.stats.count_mmap(1);
        self.file.resize(new_pages * page_size())?;
        self.stats.count_shrink();
        self.file_pages = new_pages;
        self.state.truncate(new_pages);
        // Stale queue entries >= new_pages are skipped lazily by alloc_page.
        Ok(())
    }

    /// Best-effort release of the physical memory behind all currently
    /// free pages (hole punching). The pages stay allocatable — they
    /// re-materialize as zero pages on next use. Returns the number of
    /// pages whose memory was reclaimed, or 0 if the host does not support
    /// `FALLOC_FL_PUNCH_HOLE` on memfds.
    pub fn reclaim_free_pages(&mut self) -> usize {
        let mut reclaimed = 0;
        for i in 0..self.file_pages {
            if self.state[i] == PageState::Free
                && self.file.punch_hole(i * page_size(), page_size()).is_ok()
            {
                reclaimed += 1;
            }
        }
        reclaimed
    }

    /// Pointer to the start of pool page `page` in the linear view.
    ///
    /// The pointer stays valid until the page is freed (the view base is a
    /// fixed reservation). Callers must uphold the aliasing rule from the
    /// crate docs when the same page is also rewired into a [`crate::VirtArea`].
    #[inline]
    pub fn page_ptr(&self, page: PageIdx) -> *mut u8 {
        assert!(page.0 < self.file_pages, "page {page} out of range");
        // SAFETY: in-bounds offset inside the mapped view.
        unsafe { self.view_base.add(page.0 * page_size()) }
    }

    /// Base address of the linear view (`v_pool` in the paper).
    #[inline]
    pub fn view_base(&self) -> *mut u8 {
        self.view_base
    }

    /// Recover the pool page index from a pointer into the linear view
    /// (the paper's `offset_leaf = v_leaf − v_pool` step).
    pub fn page_of_ptr(&self, ptr: *const u8) -> Result<PageIdx> {
        let base = self.view_base as usize;
        let p = ptr as usize;
        if p < base || p >= base + self.file_pages * page_size() {
            return Err(Error::invalid("pointer not inside the pool view"));
        }
        Ok(PageIdx((p - base) / page_size()))
    }

    /// Number of pages currently backed by the file.
    #[inline]
    pub fn file_pages(&self) -> usize {
        self.file_pages
    }

    /// Number of pages currently allocated out.
    #[inline]
    pub fn allocated_pages(&self) -> usize {
        self.allocated
    }

    /// Shareable handle for rewiring from other threads.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            file: Arc::clone(&self.file),
            stats: Arc::clone(&self.stats),
            budget: Arc::clone(&self.budget),
            retire: Arc::clone(&self.retire),
        }
    }

    /// Snapshot of the pool's operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The VMA budget this pool accounts against.
    pub fn budget(&self) -> &Arc<VmaBudget> {
        &self.budget
    }

    /// The pool's retirement machinery.
    pub fn retire_list(&self) -> &Arc<RetireList> {
        &self.retire
    }

    /// Point-in-time view of the VMA budget and retirement counters.
    pub fn vma_snapshot(&self) -> VmaSnapshot {
        vma_snapshot(&self.budget, &self.retire)
    }
}

impl Drop for PagePool {
    fn drop(&mut self) {
        self.stats.count_munmap(1);
        self.budget.release(POOL_VIEW_VMAS);
        // SAFETY: unmapping our own reservation exactly once.
        unsafe {
            libc::munmap(
                self.view_base as *mut libc::c_void,
                self.cfg.view_capacity_pages * page_size(),
            );
        }
    }
}

// SAFETY: the pool owns its mapping; moving it between threads is fine.
unsafe impl Send for PagePool {}
// SAFETY: no interior mutability — allocation, freeing and resizing all
// take `&mut self`; the `&self` surface (page_ptr, view_base, page_of_ptr,
// counters) only reads plain fields. Cross-thread *rewiring* still goes
// through PoolHandle; shared references permit concurrent reads only.
unsafe impl Sync for PagePool {}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pool() -> PagePool {
        PagePool::new(PoolConfig {
            initial_pages: 2,
            min_growth_pages: 2,
            shrink_threshold_pages: 4,
            view_capacity_pages: 64,
            ..PoolConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn alloc_grows_on_demand() {
        let mut p = small_pool();
        let mut pages = Vec::new();
        for _ in 0..10 {
            pages.push(p.alloc_page().unwrap());
        }
        assert_eq!(p.allocated_pages(), 10);
        assert!(p.file_pages() >= 10);
        // All distinct.
        let mut sorted: Vec<_> = pages.iter().map(|p| p.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn freed_pages_are_reused() {
        let mut p = small_pool();
        let a = p.alloc_page().unwrap();
        let b = p.alloc_page().unwrap();
        p.free_page(a).unwrap();
        p.free_page(b).unwrap();
        let c = p.alloc_page().unwrap();
        let d = p.alloc_page().unwrap();
        assert!([a, b].contains(&c));
        assert!([a, b].contains(&d));
        assert_ne!(c, d);
    }

    #[test]
    fn double_free_detected() {
        let mut p = small_pool();
        let a = p.alloc_page().unwrap();
        p.free_page(a).unwrap();
        let err = p.free_page(a).unwrap_err();
        assert!(matches!(
            err,
            Error::BadPageRef {
                what: "double free",
                ..
            }
        ));
    }

    #[test]
    fn free_out_of_range_detected() {
        let mut p = small_pool();
        let err = p.free_page(PageIdx(9999)).unwrap_err();
        assert!(matches!(err, Error::BadPageRef { .. }));
    }

    #[test]
    fn writes_through_view_persist() {
        let mut p = small_pool();
        let a = p.alloc_page().unwrap();
        unsafe {
            *(p.page_ptr(a) as *mut u64) = 42;
        }
        // Force growth; view base must not move.
        let base_before = p.view_base();
        for _ in 0..20 {
            p.alloc_page().unwrap();
        }
        assert_eq!(p.view_base(), base_before);
        unsafe {
            assert_eq!(*(p.page_ptr(a) as *const u64), 42);
        }
    }

    #[test]
    fn new_pages_are_zeroed() {
        let mut p = small_pool();
        let a = p.alloc_page().unwrap();
        let ptr = p.page_ptr(a);
        for i in 0..page_size() {
            unsafe {
                assert_eq!(*ptr.add(i), 0);
            }
        }
    }

    #[test]
    fn shrink_when_tail_freed() {
        let mut p = small_pool(); // threshold 4
        let pages: Vec<_> = (0..12).map(|_| p.alloc_page().unwrap()).collect();
        let before = p.file_pages();
        assert!(before >= 12);
        // Free the tail pages in descending order; pool should shrink to
        // the threshold.
        for pg in pages.iter().rev() {
            p.free_page(*pg).unwrap();
        }
        assert_eq!(p.file_pages(), 4);
        assert!(p.stats().pool_shrinks > 0);
        // And allocation still works afterwards.
        let x = p.alloc_page().unwrap();
        assert!(x.0 < p.file_pages());
    }

    #[test]
    fn alloc_run_is_contiguous() {
        let mut p = small_pool();
        let start = p.alloc_run(5).unwrap();
        unsafe {
            for i in 0..5 {
                *(p.page_ptr(PageIdx(start.0 + i)) as *mut u64) = i as u64;
            }
            for i in 0..5 {
                assert_eq!(*(p.page_ptr(PageIdx(start.0 + i)) as *const u64), i as u64);
            }
        }
        // Run pages are marked allocated: freeing them works exactly once.
        for i in 0..5 {
            p.free_page(PageIdx(start.0 + i)).unwrap();
        }
    }

    #[test]
    fn page_of_ptr_roundtrip() {
        let mut p = small_pool();
        let a = p.alloc_page().unwrap();
        let ptr = p.page_ptr(a);
        assert_eq!(p.page_of_ptr(ptr).unwrap(), a);
        assert_eq!(p.page_of_ptr(unsafe { ptr.add(100) }).unwrap(), a);
        let outside = 0x1000 as *const u8;
        assert!(p.page_of_ptr(outside).is_err());
    }

    #[test]
    fn capacity_exhaustion_reports_bad_resize() {
        let mut p = PagePool::new(PoolConfig {
            initial_pages: 1,
            min_growth_pages: 1,
            view_capacity_pages: 4,
            ..PoolConfig::default()
        })
        .unwrap();
        let mut got = 0;
        loop {
            match p.alloc_page() {
                Ok(_) => got += 1,
                Err(Error::BadResize { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
            assert!(got <= 4);
        }
        assert_eq!(got, 4);
    }

    #[test]
    fn reclaim_free_pages_keeps_allocator_sound() {
        let mut p = small_pool();
        let keep = p.alloc_page().unwrap();
        let toss: Vec<_> = (0..6).map(|_| p.alloc_page().unwrap()).collect();
        unsafe {
            *(p.page_ptr(keep) as *mut u64) = 42;
        }
        for pg in toss {
            p.free_page(pg).unwrap();
        }
        // Works (count > 0) or degrades (0) depending on host support;
        // either way the allocator and live data stay intact.
        let _ = p.reclaim_free_pages();
        unsafe {
            assert_eq!(*(p.page_ptr(keep) as *const u64), 42);
        }
        let fresh = p.alloc_page().unwrap();
        let ptr = p.page_ptr(fresh);
        for i in 0..page_size() {
            unsafe {
                assert_eq!(*ptr.add(i), 0, "reclaimed page not zero at {i}");
            }
        }
    }

    #[test]
    fn handle_reports_file_len() {
        let mut p = small_pool();
        let h = p.handle();
        let before = h.file_len();
        for _ in 0..10 {
            p.alloc_page().unwrap();
        }
        assert!(h.file_len() >= before);
        assert_eq!(h.file_len(), p.file_pages() * page_size());
    }
}
