//! The self-managed pool of physical pages (paper §2.1).
//!
//! One [`MemFile`] represents all physical memory the application wants to
//! be able to create shortcuts to. The pool
//!
//! * grows the file on demand (`ftruncate`) in chunks, eagerly populating
//!   new pages to avoid hard page faults at access time,
//! * keeps a FIFO free-queue of page offsets for reuse,
//! * shrinks the file when the tail pages are unused and the pool exceeds a
//!   configurable threshold, and
//! * maintains `v_pool`: a virtual memory area that maps **linearly** to the
//!   entire file, so that pool pages are directly addressable and so that
//!   the physical page of any leaf can be recovered from its `v_pool`
//!   address by plain offset arithmetic (`offset_leaf = v_leaf − v_pool`).
//!
//! The linear view lives inside a fixed-size anonymous reservation, so its
//! base address never changes across grows/shrinks — pointers derived from
//! [`PagePool::page_ptr`] stay valid for the lifetime of the allocation.

use crate::budget::{BudgetBinding, PoolUsage, VmaBudget, VmaSnapshot};
use crate::error::{Error, Result};
use crate::memfile::MemFile;
use crate::page::{page_size, PageIdx};
use crate::retire::{PinStrategy, RetireList};
use crate::slot::SlotLayout;
use crate::stats::{RewireStats, StatsSnapshot};
use crate::varea::reserve_aligned;
use std::collections::VecDeque;
use std::sync::Arc;

/// VMAs charged for the pool's own linear view: the mapped file prefix
/// plus the `PROT_NONE` remainder of the fixed reservation.
const POOL_VIEW_VMAS: usize = 2;

/// Probe whether an `MFD_HUGETLB` file is actually usable: reserve one
/// slot's worth of hugepages, map and touch it, then shrink back. A
/// kernel that accepts the flag but has no hugepages reserved fails the
/// `mmap` (hugetlb reserves at map time), which is exactly the graceful
/// signal the caller needs to fall back to 4 KB-page slots.
fn probe_hugetlb(file: &MemFile, slot_bytes: usize) -> bool {
    if file.resize(slot_bytes).is_err() {
        return false;
    }
    // SAFETY: fresh mapping of our own file; unmapped before returning.
    let ok = unsafe {
        let p = libc::mmap(
            std::ptr::null_mut(),
            slot_bytes,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_SHARED | libc::MAP_POPULATE,
            file.fd(),
            0,
        );
        if p == libc::MAP_FAILED {
            false
        } else {
            *(p as *mut u64) = 0x51_07;
            let ok = *(p as *const u64) == 0x51_07;
            libc::munmap(p, slot_bytes);
            ok
        }
    };
    ok && file.resize(0).is_ok()
}

/// Shared implementation of [`PagePool::vma_snapshot`] /
/// [`PoolHandle::vma_snapshot`].
fn vma_snapshot(budget: &VmaBudget, usage: &PoolUsage, retire: &RetireList) -> VmaSnapshot {
    let (areas_retired, areas_reclaimed, vmas_reclaimed) = retire.counters();
    VmaSnapshot {
        in_use: budget.in_use() as u64,
        limit: budget.limit() as u64,
        retired_vmas: retire.retired_vmas() as u64,
        retired_areas: retire.retired_count() as u64,
        areas_retired,
        areas_reclaimed,
        vmas_reclaimed,
        pool_in_use: usage.in_use() as u64,
        fair_pools: budget.fair_pool_count() as u64,
        fair_share: budget.fair_share(crate::budget_headroom(budget.limit())) as u64,
    }
}

/// Tuning knobs for a [`PagePool`].
///
/// All `*_pages` counts are denominated in **slots** — the pool's
/// allocation unit of `2^k` base pages fixed by
/// [`PoolConfig::slot_layout`]. At the default layout (`k = 0`) a slot is
/// one 4 KB page and the historical field names read literally.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Diagnostic name of the backing memfd.
    pub name: String,
    /// Initial file size in slots (the paper's indexes start at one
    /// bucket, i.e. one slot).
    pub initial_pages: usize,
    /// Grow by at least this many slots per `ftruncate` (amortizes
    /// syscalls).
    pub min_growth_pages: usize,
    /// Only shrink the file while it is larger than this many slots.
    pub shrink_threshold_pages: usize,
    /// Eagerly populate page-table entries for newly grown slots
    /// (`MAP_POPULATE`), avoiding hard page faults at access time.
    pub pretouch: bool,
    /// Size of the fixed virtual reservation holding the linear view, in
    /// slots. The pool can never grow beyond this. Virtual address space is
    /// effectively free on 64-bit; the default reserves 16 GB at `k = 0`.
    pub view_capacity_pages: usize,
    /// VMA budget this pool (and the areas retired into it) accounts
    /// against. `None` uses the process-global budget fed by
    /// `vm.max_map_count` ([`VmaBudget::global`]); tests and stress rigs
    /// inject private budgets with small limits.
    pub vma_budget: Option<Arc<VmaBudget>>,
    /// Opt this pool into **fair-share admission** on its (shared) VMA
    /// budget: pool-scoped reservations taken through
    /// [`VmaBudget::try_reserve_for`] may exceed the pool's even share of
    /// the budget only while every other fair pool's unfilled share stays
    /// spare. Off by default — a single pool owning its budget behaves
    /// exactly as before. The sharded index sets this on every shard so
    /// one hot shard's directory cannot starve its siblings' rebuilds.
    pub fair_share: bool,
    /// Physical slot layout: `2^k` base pages per slot (default `k = 0`,
    /// the paper's one-page buckets). Constructed once; every consumer of
    /// the pool must use the same layout for its offset arithmetic.
    pub slot_layout: SlotLayout,
    /// Opt-in hugepage backing. When the layout reaches the 2 MB boundary
    /// ([`SlotLayout::reaches_huge_boundary`]) the pool tries an
    /// `MFD_HUGETLB` memfd and **probes** it (reserving one slot's worth
    /// of hugepages); if the kernel lacks support or no hugepages are
    /// reserved (`/proc/sys/vm/nr_hugepages`), it falls back cleanly to
    /// plain 4 KB-page slots and reports
    /// [`PagePool::huge_active`]` == false`. Below the boundary (or after
    /// a fallback) the pool instead advises `MADV_HUGEPAGE` on the linear
    /// view, best-effort. Note that with hugetlb active, later growth can
    /// still fail with a typed `mmap` error if the reserved hugepage pool
    /// runs dry mid-run.
    pub huge_pages: bool,
    /// Reader-pin pairing for this pool's retire list. `None` (default)
    /// probes `membarrier(2)` once per process and picks
    /// [`PinStrategy::Asymmetric`] when registration succeeds, else the
    /// PR 3 [`PinStrategy::Dekker`] pairing. Tests force `Dekker` to
    /// exercise the fallback matrix on hosts that do support membarrier.
    pub pin_strategy: Option<PinStrategy>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            name: "shortcut-pool".to_string(),
            initial_pages: 1,
            min_growth_pages: 64,
            shrink_threshold_pages: 1024,
            pretouch: true,
            view_capacity_pages: 1 << 22, // 16 GB of 4 KB pages
            vma_budget: None,
            fair_share: false,
            slot_layout: SlotLayout::base(),
            huge_pages: false,
            pin_strategy: None,
        }
    }
}

/// Allocation state of one pool page (kept for double-free detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Free,
    Allocated,
    /// Relocated away but not yet reusable: the page keeps its (stale)
    /// contents until every reader pin taken before its retirement has
    /// drained, then [`PagePool::reclaim_retired_pages`] frees it. Neither
    /// allocatable nor freeable in this state.
    Retired,
}

/// A shareable, thread-safe handle to the pool's physical memory.
///
/// Rewiring from another thread (the paper's asynchronous *mapper thread*)
/// only needs the file descriptor and byte offsets — not the allocator — so
/// this handle is all that crosses the thread boundary.
#[derive(Debug, Clone)]
pub struct PoolHandle {
    file: Arc<MemFile>,
    stats: Arc<RewireStats>,
    budget: Arc<VmaBudget>,
    usage: Arc<PoolUsage>,
    retire: Arc<RetireList>,
    layout: SlotLayout,
    huge_active: bool,
}

impl PoolHandle {
    /// Raw fd of the main-memory file (for `mmap`).
    #[inline]
    pub fn fd(&self) -> std::os::unix::io::RawFd {
        self.file.fd()
    }

    /// Current file length in bytes.
    #[inline]
    pub fn file_len(&self) -> usize {
        self.file.len()
    }

    /// The pool's physical slot layout.
    #[inline]
    pub fn layout(&self) -> SlotLayout {
        self.layout
    }

    /// Whether the pool's slots are backed by hardware hugepages
    /// (`MFD_HUGETLB` probe succeeded at creation).
    #[inline]
    pub fn huge_active(&self) -> bool {
        self.huge_active
    }

    /// The VMA budget this pool accounts against.
    #[inline]
    pub fn budget(&self) -> &Arc<VmaBudget> {
        &self.budget
    }

    /// This pool's usage attribution on the (shared) budget.
    #[inline]
    pub fn usage(&self) -> &Arc<PoolUsage> {
        &self.usage
    }

    /// A [`BudgetBinding`] that charges the budget *and* attributes the
    /// charge to this pool — what areas built on behalf of this pool
    /// should attach.
    pub fn binding(&self) -> BudgetBinding {
        BudgetBinding::with_pool(Arc::clone(&self.budget), Arc::clone(&self.usage))
    }

    /// The pool's retirement machinery: reader pins and the retired-area
    /// list (see [`RetireList`]).
    #[inline]
    pub fn retire_list(&self) -> &Arc<RetireList> {
        &self.retire
    }

    /// Point-in-time view of the VMA budget and retirement counters.
    pub fn vma_snapshot(&self) -> VmaSnapshot {
        vma_snapshot(&self.budget, &self.usage, &self.retire)
    }

    pub(crate) fn stats(&self) -> &RewireStats {
        &self.stats
    }
}

/// The pool of physical slots (`2^k` base pages each). See module docs.
pub struct PagePool {
    file: Arc<MemFile>,
    cfg: PoolConfig,
    /// The slot layout (copied out of `cfg` for hot-path arithmetic).
    layout: SlotLayout,
    /// Whether the hugetlb backend is active (probe succeeded).
    huge_active: bool,
    /// Base of the fixed anonymous reservation that hosts the linear view.
    view_base: *mut u8,
    /// Slots of the file currently mapped into the view (== file length).
    file_pages: usize,
    /// FIFO of reusable slot indices. May contain stale entries for slots
    /// that were truncated away by a shrink; `alloc_page` skips those.
    free_queue: VecDeque<usize>,
    state: Vec<PageState>,
    allocated: usize,
    /// Slots relocated away by compaction, stamped with the retirement
    /// epoch at which they became unreachable. Freed (as runs) by
    /// [`PagePool::reclaim_retired_pages`] once readers quiesce.
    retired_pages: Vec<(u64, usize)>,
    stats: Arc<RewireStats>,
    budget: Arc<VmaBudget>,
    usage: Arc<PoolUsage>,
    retire: Arc<RetireList>,
}

impl std::fmt::Debug for PagePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagePool")
            .field("file_pages", &self.file_pages)
            .field("allocated", &self.allocated)
            .field("free_queued", &self.free_queue.len())
            .finish()
    }
}

impl PagePool {
    /// Create a pool with the given configuration.
    pub fn new(cfg: PoolConfig) -> Result<Self> {
        if cfg.view_capacity_pages == 0 {
            return Err(Error::invalid("view_capacity_pages must be > 0"));
        }
        if cfg.initial_pages > cfg.view_capacity_pages {
            return Err(Error::invalid("initial_pages exceeds view_capacity_pages"));
        }
        let layout = cfg.slot_layout;
        let slot_bytes = layout.slot_bytes();

        // Hugepage backing: only meaningful at the 2 MB boundary, and only
        // if the kernel both accepts MFD_HUGETLB and has hugepages
        // reserved — probed here so failures degrade to plain 4 KB-page
        // slots at creation time instead of SIGBUS-ing at first access.
        let mut huge_active = false;
        let file = if cfg.huge_pages && layout.reaches_huge_boundary() {
            match MemFile::create_huge(&cfg.name) {
                Ok(f) if probe_hugetlb(&f, slot_bytes) => {
                    huge_active = true;
                    f
                }
                _ => MemFile::create(&cfg.name)?,
            }
        } else {
            MemFile::create(&cfg.name)?
        };
        let file = Arc::new(file);
        let stats = Arc::new(RewireStats::new());

        // Reserve the fixed view as PROT_NONE anonymous memory: any stray
        // access to a not-yet-grown region faults loudly. Hugetlb inner
        // mappings need a slot-aligned base, so over-reserve and trim.
        let cap_bytes = cfg.view_capacity_pages * slot_bytes;
        let view_base = reserve_aligned(cap_bytes, slot_bytes.max(page_size()), libc::PROT_NONE)?;
        stats.count_mmap(1);
        let budget = cfg.vma_budget.clone().unwrap_or_else(VmaBudget::global);
        let usage = budget.register_pool(cfg.fair_share);
        BudgetBinding::with_pool(Arc::clone(&budget), Arc::clone(&usage)).charge(POOL_VIEW_VMAS);

        let cfg_pin_strategy = cfg.pin_strategy;
        let mut pool = PagePool {
            file,
            layout,
            huge_active,
            cfg,
            view_base,
            file_pages: 0,
            free_queue: VecDeque::new(),
            state: Vec::new(),
            allocated: 0,
            retired_pages: Vec::new(),
            stats,
            budget,
            usage,
            retire: Arc::new(match cfg_pin_strategy {
                Some(s) => RetireList::with_strategy(s),
                None => RetireList::new(),
            }),
        };
        let initial = pool.cfg.initial_pages;
        if initial > 0 {
            pool.grow_to(initial)?;
        }
        Ok(pool)
    }

    /// Bytes per slot (the pool's allocation unit).
    #[inline]
    fn slot_bytes(&self) -> usize {
        self.layout.slot_bytes()
    }

    /// The pool's physical slot layout.
    #[inline]
    pub fn layout(&self) -> SlotLayout {
        self.layout
    }

    /// Whether hugepage backing was requested in the configuration.
    #[inline]
    pub fn huge_requested(&self) -> bool {
        self.cfg.huge_pages
    }

    /// Whether the hugetlb backend is actually active (requested, layout
    /// at the 2 MB boundary, and the creation-time probe succeeded).
    /// `huge_requested() && !huge_active()` means the pool fell back to
    /// plain 4 KB-page slots.
    #[inline]
    pub fn huge_active(&self) -> bool {
        self.huge_active
    }

    /// Create a pool with [`PoolConfig::default`].
    pub fn with_defaults() -> Result<Self> {
        Self::new(PoolConfig::default())
    }

    /// Grow the file (and the linear view) to exactly `new_pages` slots.
    fn grow_to(&mut self, new_pages: usize) -> Result<()> {
        debug_assert!(new_pages > self.file_pages);
        if new_pages > self.cfg.view_capacity_pages {
            return Err(Error::BadResize {
                current: self.file_pages,
                requested: new_pages,
            });
        }
        let slot_bytes = self.slot_bytes();
        let old_pages = self.file_pages;
        self.file.resize(new_pages * slot_bytes)?;
        self.stats.count_grow();

        // Map the newly valid file range into the view at the same offset.
        let delta = new_pages - old_pages;
        let mut flags = libc::MAP_SHARED | libc::MAP_FIXED;
        if self.cfg.pretouch {
            flags |= libc::MAP_POPULATE;
        }
        // SAFETY: the target range lies inside our own reservation; MAP_FIXED
        // replaces the PROT_NONE placeholder; offset/length are slot aligned.
        let rc = unsafe {
            libc::mmap(
                self.view_base.add(old_pages * slot_bytes) as *mut libc::c_void,
                delta * slot_bytes,
                libc::PROT_READ | libc::PROT_WRITE,
                flags,
                self.file.fd(),
                (old_pages * slot_bytes) as libc::off_t,
            )
        };
        if rc == libc::MAP_FAILED {
            return Err(Error::os("mmap"));
        }
        if self.cfg.huge_pages && !self.huge_active {
            // Hugetlb unavailable (or the layout is below the boundary):
            // best-effort transparent-hugepage advice on the fresh range.
            // SAFETY: advising a range we just mapped.
            unsafe {
                libc::madvise(rc, delta * slot_bytes, libc::MADV_HUGEPAGE);
            }
        }
        self.stats.count_mmap(1);
        if self.cfg.pretouch {
            self.stats.count_populated(delta as u64);
        }

        self.file_pages = new_pages;
        self.state.resize(new_pages, PageState::Free);
        for i in old_pages..new_pages {
            self.free_queue.push_back(i);
        }
        Ok(())
    }

    /// Allocate one (zero-initialized on first use) physical page.
    pub fn alloc_page(&mut self) -> Result<PageIdx> {
        loop {
            match self.free_queue.pop_front() {
                Some(i) if i < self.file_pages && self.state[i] == PageState::Free => {
                    self.state[i] = PageState::Allocated;
                    self.allocated += 1;
                    self.stats.count_alloc(1);
                    return Ok(PageIdx(i));
                }
                Some(_) => continue, // stale entry from a shrink
                None => {
                    let target = (self.file_pages + self.cfg.min_growth_pages)
                        .max(self.file_pages * 2)
                        .min(self.cfg.view_capacity_pages);
                    if target <= self.file_pages {
                        return Err(Error::BadResize {
                            current: self.file_pages,
                            requested: target + 1,
                        });
                    }
                    self.grow_to(target)?;
                }
            }
        }
    }

    /// Allocate `n` physically **contiguous** pages (contiguous in file
    /// offsets), so the run can later be rewired with a single `mmap` call.
    ///
    /// Prefers the first free span of `n` pages already inside the file
    /// (compaction allocates a bucket-count-sized run per pass; without
    /// reuse of the span the previous pass freed, the file would grow by
    /// that much every time) and carves fresh space from the end of the
    /// file only when no span fits. Reused spans read as zeros, like
    /// fresh ones.
    pub fn alloc_run(&mut self, n: usize) -> Result<PageIdx> {
        if n == 0 {
            return Err(Error::invalid("alloc_run of zero pages"));
        }
        let start = match self.find_free_run(n) {
            Some(start) => {
                // Reset the reused span to zeros (releasing any stale
                // physical pages); fall back to an explicit clear where
                // hole punching is unsupported.
                if self
                    .file
                    .punch_hole(start * self.slot_bytes(), n * self.slot_bytes())
                    .is_err()
                {
                    // SAFETY: in-bounds span of the mapped linear view.
                    unsafe {
                        std::ptr::write_bytes(
                            self.page_ptr(PageIdx(start)),
                            0,
                            n * self.slot_bytes(),
                        );
                    }
                }
                start
            }
            None => {
                let start = self.file_pages;
                self.grow_to(start + n)?;
                start
            }
        };
        for i in start..start + n {
            debug_assert_eq!(self.state[i], PageState::Free);
            self.state[i] = PageState::Allocated;
        }
        // Remove the claimed indices from the free queue (they were either
        // just appended by grow_to or left over from earlier frees).
        self.free_queue
            .retain(|&i| !(start..start + n).contains(&i));
        self.allocated += n;
        self.stats.count_alloc(n as u64);
        Ok(PageIdx(start))
    }

    /// First free span of `n` contiguous pages inside the file, if any.
    fn find_free_run(&self, n: usize) -> Option<usize> {
        let mut run = 0usize;
        for i in 0..self.file_pages {
            if self.state[i] == PageState::Free {
                run += 1;
                if run == n {
                    return Some(i + 1 - n);
                }
            } else {
                run = 0;
            }
        }
        None
    }

    /// Return a page to the pool. Shrinks the file if the freed page(s) sit
    /// at the end and the pool is above the shrink threshold.
    pub fn free_page(&mut self, page: PageIdx) -> Result<()> {
        let i = page.0;
        if i >= self.file_pages {
            return Err(Error::BadPageRef {
                page: i,
                what: "beyond end of pool",
            });
        }
        if self.state[i] != PageState::Allocated {
            return Err(Error::BadPageRef {
                page: i,
                what: "double free",
            });
        }
        self.state[i] = PageState::Free;
        self.allocated -= 1;
        self.stats.count_free(1);
        self.free_queue.push_back(i);

        // Paper §2.1: if the unused page marks the end of the file and the
        // pool is above the threshold, simply shrink the file. Truncated
        // pages leave stale queue entries behind; `alloc_page` skips them
        // (and duplicates are harmless because popping requires the page to
        // still be in the Free state).
        if self.file_pages > self.cfg.shrink_threshold_pages
            && self.state[self.file_pages - 1] == PageState::Free
        {
            self.shrink_tail()?;
        }
        Ok(())
    }

    /// Free `n` contiguous pages `[start, start + n)` as one run: every
    /// page is returned to the allocator and the run's physical memory is
    /// released with a **single** `FALLOC_FL_PUNCH_HOLE` call, instead of
    /// the per-page hole punching of [`PagePool::reclaim_free_pages`].
    ///
    /// Unlike [`PagePool::free_page`] this never truncates the file:
    /// compaction frees pages that retired shortcut directories may still
    /// map, and a punched hole reads as zeros where a truncated range
    /// would `SIGBUS` a straggling (ticket-discarded) reader. The hole
    /// punch is best-effort — hosts without memfd hole support merely
    /// keep the physical pages until reuse.
    ///
    /// # Errors
    ///
    /// Rejects the run (without freeing anything) if any page is out of
    /// range or not currently allocated.
    pub fn free_run(&mut self, start: PageIdx, n: usize) -> Result<()> {
        if n == 0 {
            return Err(Error::invalid("free_run of zero pages"));
        }
        if start.0 + n > self.file_pages {
            return Err(Error::BadPageRef {
                page: start.0 + n - 1,
                what: "beyond end of pool",
            });
        }
        // Validate the whole run before mutating any state, so a bad run
        // is rejected atomically.
        for i in start.0..start.0 + n {
            if self.state[i] != PageState::Allocated {
                return Err(Error::BadPageRef {
                    page: i,
                    what: "double free",
                });
            }
        }
        for i in start.0..start.0 + n {
            self.state[i] = PageState::Free;
            self.free_queue.push_back(i);
        }
        self.allocated -= n;
        self.stats.count_free(n as u64);
        let _ = self
            .file
            .punch_hole(self.layout.byte_offset(start.0), n * self.slot_bytes());
        Ok(())
    }

    /// Copy the contents of pool page `src` into pool page `dst` (both
    /// must be allocated). This is the physical half of bucket-page
    /// relocation: the caller then redirects its directory slots to `dst`
    /// and hands `src` to [`PagePool::retire_page`] so concurrent pinned
    /// readers — which may still dereference `src` through a retired
    /// shortcut directory — never observe the page being reused while
    /// they could read it.
    pub fn relocate_page(&mut self, src: PageIdx, dst: PageIdx) -> Result<()> {
        for (p, what) in [(src, "relocate source"), (dst, "relocate target")] {
            if p.0 >= self.file_pages {
                return Err(Error::BadPageRef {
                    page: p.0,
                    what: "beyond end of pool",
                });
            }
            if self.state[p.0] != PageState::Allocated {
                return Err(Error::BadPageRef { page: p.0, what });
            }
        }
        if src == dst {
            return Err(Error::invalid("relocate_page onto itself"));
        }
        // SAFETY: both pages are in-bounds, allocated, and distinct; the
        // linear view maps the whole file read/write.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.page_ptr(src),
                self.page_ptr(dst),
                self.slot_bytes(),
            );
        }
        Ok(())
    }

    /// Retire an allocated page: it stops being the caller's storage but
    /// is **not** returned to the allocator yet. The page keeps its
    /// contents (readable by pinned stragglers through retired shortcut
    /// directories) until a [`PagePool::reclaim_retired_pages`] call
    /// observes every reader pin taken before this retirement drained —
    /// the same epoch machinery [`RetireList`] uses for whole areas.
    /// Returns the stamped epoch.
    pub fn retire_page(&mut self, page: PageIdx) -> Result<u64> {
        if page.0 >= self.file_pages {
            return Err(Error::BadPageRef {
                page: page.0,
                what: "beyond end of pool",
            });
        }
        if self.state[page.0] != PageState::Allocated {
            return Err(Error::BadPageRef {
                page: page.0,
                what: "retire of unallocated page",
            });
        }
        self.state[page.0] = PageState::Retired;
        let epoch = self.retire.advance_epoch();
        self.retired_pages.push((epoch, page.0));
        Ok(epoch)
    }

    /// Free every retired page whose retirement epoch is covered by one
    /// reader-quiescence scan, coalescing adjacent pages into
    /// [`PagePool::free_run`]-style single hole punches. Returns the
    /// number of pages freed (0 while readers keep a stripe busy — retry
    /// later; reclamation is only ever delayed, never lost).
    pub fn reclaim_retired_pages(&mut self) -> usize {
        if self.retired_pages.is_empty() {
            return 0;
        }
        let Some(safe_epoch) = self.retire.quiescent_epoch() else {
            return 0;
        };
        let mut ready: Vec<usize> = Vec::new();
        self.retired_pages.retain(|&(epoch, page)| {
            if epoch <= safe_epoch {
                ready.push(page);
                false
            } else {
                true
            }
        });
        ready.sort_unstable();
        let freed = ready.len();
        let mut i = 0;
        while i < freed {
            let mut j = i + 1;
            while j < freed && ready[j] == ready[j - 1] + 1 {
                j += 1;
            }
            let (start, n) = (ready[i], j - i);
            for p in start..start + n {
                debug_assert_eq!(self.state[p], PageState::Retired);
                self.state[p] = PageState::Free;
                self.free_queue.push_back(p);
            }
            self.allocated -= n;
            self.stats.count_free(n as u64);
            let _ = self
                .file
                .punch_hole(start * self.slot_bytes(), n * self.slot_bytes());
            i = j;
        }
        freed
    }

    /// Pages currently retired (relocated away, awaiting reader drain).
    #[inline]
    pub fn retired_page_count(&self) -> usize {
        self.retired_pages.len()
    }

    /// Truncate away all trailing free pages (but never below the threshold).
    fn shrink_tail(&mut self) -> Result<()> {
        let mut new_pages = self.file_pages;
        while new_pages > self.cfg.shrink_threshold_pages
            && new_pages > 0
            && self.state[new_pages - 1] == PageState::Free
        {
            new_pages -= 1;
        }
        if new_pages == self.file_pages {
            return Ok(());
        }
        // Return the vacated view range to PROT_NONE anonymous memory so
        // stray accesses fault instead of SIGBUS-ing on a shrunk file.
        let delta = self.file_pages - new_pages;
        // SAFETY: range is inside our reservation; MAP_FIXED replacement.
        let rc = unsafe {
            libc::mmap(
                self.view_base.add(new_pages * self.slot_bytes()) as *mut libc::c_void,
                delta * self.slot_bytes(),
                libc::PROT_NONE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_FIXED | libc::MAP_NORESERVE,
                -1,
                0,
            )
        };
        if rc == libc::MAP_FAILED {
            return Err(Error::os("mmap"));
        }
        self.stats.count_mmap(1);
        self.file.resize(new_pages * self.slot_bytes())?;
        self.stats.count_shrink();
        self.file_pages = new_pages;
        self.state.truncate(new_pages);
        // Stale queue entries >= new_pages are skipped lazily by alloc_page.
        Ok(())
    }

    /// Best-effort release of the physical memory behind all currently
    /// free pages (hole punching). The pages stay allocatable — they
    /// re-materialize as zero pages on next use. Maximal runs of free
    /// pages are punched with a single `fallocate` call each. Returns the
    /// number of pages whose memory was reclaimed, or 0 if the host does
    /// not support `FALLOC_FL_PUNCH_HOLE` on memfds.
    pub fn reclaim_free_pages(&mut self) -> usize {
        let mut reclaimed = 0;
        let mut i = 0;
        while i < self.file_pages {
            if self.state[i] != PageState::Free {
                i += 1;
                continue;
            }
            let start = i;
            while i < self.file_pages && self.state[i] == PageState::Free {
                i += 1;
            }
            let n = i - start;
            if self
                .file
                .punch_hole(start * self.slot_bytes(), n * self.slot_bytes())
                .is_ok()
            {
                reclaimed += n;
            }
        }
        reclaimed
    }

    /// Pointer to the start of pool page `page` in the linear view.
    ///
    /// The pointer stays valid until the page is freed (the view base is a
    /// fixed reservation). Callers must uphold the aliasing rule from the
    /// crate docs when the same page is also rewired into a [`crate::VirtArea`].
    #[inline]
    pub fn page_ptr(&self, page: PageIdx) -> *mut u8 {
        assert!(page.0 < self.file_pages, "page {page} out of range");
        // SAFETY: in-bounds offset inside the mapped view.
        unsafe { self.view_base.add(page.0 * self.slot_bytes()) }
    }

    /// Base address of the linear view (`v_pool` in the paper).
    #[inline]
    pub fn view_base(&self) -> *mut u8 {
        self.view_base
    }

    /// Recover the pool page index from a pointer into the linear view
    /// (the paper's `offset_leaf = v_leaf − v_pool` step).
    pub fn page_of_ptr(&self, ptr: *const u8) -> Result<PageIdx> {
        let base = self.view_base as usize;
        let p = ptr as usize;
        if p < base || p >= base + self.file_pages * self.slot_bytes() {
            return Err(Error::invalid("pointer not inside the pool view"));
        }
        Ok(PageIdx((p - base) / self.slot_bytes()))
    }

    /// Number of pages currently backed by the file.
    #[inline]
    pub fn file_pages(&self) -> usize {
        self.file_pages
    }

    /// Number of pages currently allocated out.
    #[inline]
    pub fn allocated_pages(&self) -> usize {
        self.allocated
    }

    /// Shareable handle for rewiring from other threads.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            file: Arc::clone(&self.file),
            stats: Arc::clone(&self.stats),
            budget: Arc::clone(&self.budget),
            usage: Arc::clone(&self.usage),
            retire: Arc::clone(&self.retire),
            layout: self.layout,
            huge_active: self.huge_active,
        }
    }

    /// Snapshot of the pool's operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The VMA budget this pool accounts against.
    pub fn budget(&self) -> &Arc<VmaBudget> {
        &self.budget
    }

    /// The pool's retirement machinery.
    pub fn retire_list(&self) -> &Arc<RetireList> {
        &self.retire
    }

    /// Point-in-time view of the VMA budget and retirement counters.
    pub fn vma_snapshot(&self) -> VmaSnapshot {
        vma_snapshot(&self.budget, &self.usage, &self.retire)
    }
}

impl Drop for PagePool {
    fn drop(&mut self) {
        self.stats.count_munmap(1);
        BudgetBinding::with_pool(Arc::clone(&self.budget), Arc::clone(&self.usage))
            .release(POOL_VIEW_VMAS);
        // SAFETY: unmapping our own reservation exactly once.
        unsafe {
            libc::munmap(
                self.view_base as *mut libc::c_void,
                self.cfg.view_capacity_pages * self.slot_bytes(),
            );
        }
    }
}

// SAFETY: the pool owns its mapping; moving it between threads is fine.
unsafe impl Send for PagePool {}
// SAFETY: no interior mutability — allocation, freeing and resizing all
// take `&mut self`; the `&self` surface (page_ptr, view_base, page_of_ptr,
// counters) only reads plain fields. Cross-thread *rewiring* still goes
// through PoolHandle; shared references permit concurrent reads only.
unsafe impl Sync for PagePool {}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pool() -> PagePool {
        PagePool::new(PoolConfig {
            initial_pages: 2,
            min_growth_pages: 2,
            shrink_threshold_pages: 4,
            view_capacity_pages: 64,
            ..PoolConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn alloc_grows_on_demand() {
        let mut p = small_pool();
        let mut pages = Vec::new();
        for _ in 0..10 {
            pages.push(p.alloc_page().unwrap());
        }
        assert_eq!(p.allocated_pages(), 10);
        assert!(p.file_pages() >= 10);
        // All distinct.
        let mut sorted: Vec<_> = pages.iter().map(|p| p.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn freed_pages_are_reused() {
        let mut p = small_pool();
        let a = p.alloc_page().unwrap();
        let b = p.alloc_page().unwrap();
        p.free_page(a).unwrap();
        p.free_page(b).unwrap();
        let c = p.alloc_page().unwrap();
        let d = p.alloc_page().unwrap();
        assert!([a, b].contains(&c));
        assert!([a, b].contains(&d));
        assert_ne!(c, d);
    }

    #[test]
    fn double_free_detected() {
        let mut p = small_pool();
        let a = p.alloc_page().unwrap();
        p.free_page(a).unwrap();
        let err = p.free_page(a).unwrap_err();
        assert!(matches!(
            err,
            Error::BadPageRef {
                what: "double free",
                ..
            }
        ));
    }

    #[test]
    fn free_out_of_range_detected() {
        let mut p = small_pool();
        let err = p.free_page(PageIdx(9999)).unwrap_err();
        assert!(matches!(err, Error::BadPageRef { .. }));
    }

    #[test]
    fn writes_through_view_persist() {
        let mut p = small_pool();
        let a = p.alloc_page().unwrap();
        // SAFETY: page_ptr of a page this test allocated; offsets stay inside
        // the slot and the pool view stays mapped for the pool's lifetime.
        unsafe {
            *(p.page_ptr(a) as *mut u64) = 42;
        }
        // Force growth; view base must not move.
        let base_before = p.view_base();
        for _ in 0..20 {
            p.alloc_page().unwrap();
        }
        assert_eq!(p.view_base(), base_before);
        // SAFETY: page_ptr of a page this test allocated; offsets stay inside
        // the slot and the pool view stays mapped for the pool's lifetime.
        unsafe {
            assert_eq!(*(p.page_ptr(a) as *const u64), 42);
        }
    }

    #[test]
    fn new_pages_are_zeroed() {
        let mut p = small_pool();
        let a = p.alloc_page().unwrap();
        let ptr = p.page_ptr(a);
        for i in 0..page_size() {
            // SAFETY: page_ptr of a page this test allocated; offsets stay inside
            // the slot and the pool view stays mapped for the pool's lifetime.
            unsafe {
                assert_eq!(*ptr.add(i), 0);
            }
        }
    }

    #[test]
    fn shrink_when_tail_freed() {
        let mut p = small_pool(); // threshold 4
        let pages: Vec<_> = (0..12).map(|_| p.alloc_page().unwrap()).collect();
        let before = p.file_pages();
        assert!(before >= 12);
        // Free the tail pages in descending order; pool should shrink to
        // the threshold.
        for pg in pages.iter().rev() {
            p.free_page(*pg).unwrap();
        }
        assert_eq!(p.file_pages(), 4);
        assert!(p.stats().pool_shrinks > 0);
        // And allocation still works afterwards.
        let x = p.alloc_page().unwrap();
        assert!(x.0 < p.file_pages());
    }

    #[test]
    fn alloc_run_is_contiguous() {
        let mut p = small_pool();
        let start = p.alloc_run(5).unwrap();
        // SAFETY: page_ptr of a page this test allocated; offsets stay inside
        // the slot and the pool view stays mapped for the pool's lifetime.
        unsafe {
            for i in 0..5 {
                *(p.page_ptr(PageIdx(start.0 + i)) as *mut u64) = i as u64;
            }
            for i in 0..5 {
                assert_eq!(*(p.page_ptr(PageIdx(start.0 + i)) as *const u64), i as u64);
            }
        }
        // Run pages are marked allocated: freeing them works exactly once.
        for i in 0..5 {
            p.free_page(PageIdx(start.0 + i)).unwrap();
        }
    }

    #[test]
    fn page_of_ptr_roundtrip() {
        let mut p = small_pool();
        let a = p.alloc_page().unwrap();
        let ptr = p.page_ptr(a);
        assert_eq!(p.page_of_ptr(ptr).unwrap(), a);
        // SAFETY: page_ptr of a page this test allocated; offsets stay inside
        // the slot and the pool view stays mapped for the pool's lifetime.
        assert_eq!(p.page_of_ptr(unsafe { ptr.add(100) }).unwrap(), a);
        let outside = 0x10 as *const u8;
        assert!(p.page_of_ptr(outside).is_err());
    }

    #[test]
    fn capacity_exhaustion_reports_bad_resize() {
        let mut p = PagePool::new(PoolConfig {
            initial_pages: 1,
            min_growth_pages: 1,
            view_capacity_pages: 4,
            ..PoolConfig::default()
        })
        .unwrap();
        let mut got = 0;
        loop {
            match p.alloc_page() {
                Ok(_) => got += 1,
                Err(Error::BadResize { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
            assert!(got <= 4);
        }
        assert_eq!(got, 4);
    }

    #[test]
    fn reclaim_free_pages_keeps_allocator_sound() {
        let mut p = small_pool();
        let keep = p.alloc_page().unwrap();
        let toss: Vec<_> = (0..6).map(|_| p.alloc_page().unwrap()).collect();
        // SAFETY: page_ptr of a page this test allocated; offsets stay inside
        // the slot and the pool view stays mapped for the pool's lifetime.
        unsafe {
            *(p.page_ptr(keep) as *mut u64) = 42;
        }
        for pg in toss {
            p.free_page(pg).unwrap();
        }
        // Works (count > 0) or degrades (0) depending on host support;
        // either way the allocator and live data stay intact.
        let _ = p.reclaim_free_pages();
        // SAFETY: page_ptr of a page this test allocated; offsets stay inside
        // the slot and the pool view stays mapped for the pool's lifetime.
        unsafe {
            assert_eq!(*(p.page_ptr(keep) as *const u64), 42);
        }
        let fresh = p.alloc_page().unwrap();
        let ptr = p.page_ptr(fresh);
        for i in 0..page_size() {
            // SAFETY: page_ptr of a page this test allocated; offsets stay inside
            // the slot and the pool view stays mapped for the pool's lifetime.
            unsafe {
                assert_eq!(*ptr.add(i), 0, "reclaimed page not zero at {i}");
            }
        }
    }

    #[test]
    fn free_run_frees_all_pages_at_once() {
        let mut p = small_pool();
        let start = p.alloc_run(6).unwrap();
        assert_eq!(p.allocated_pages(), 6);
        p.free_run(start, 6).unwrap();
        assert_eq!(p.allocated_pages(), 0);
        // Every page is individually reusable afterwards.
        for _ in 0..6 {
            let pg = p.alloc_page().unwrap();
            assert!(pg.0 < p.file_pages());
        }
    }

    #[test]
    fn free_run_rejects_partial_runs_atomically() {
        let mut p = small_pool();
        let start = p.alloc_run(4).unwrap();
        p.free_page(PageIdx(start.0 + 2)).unwrap();
        // A run containing a free page is rejected without freeing the
        // allocated ones around it.
        assert!(matches!(
            p.free_run(start, 4),
            Err(Error::BadPageRef {
                what: "double free",
                ..
            })
        ));
        assert_eq!(p.allocated_pages(), 3);
        assert!(p.free_run(PageIdx(9990), 4).is_err());
        assert!(p.free_run(start, 0).is_err());
    }

    #[test]
    fn alloc_run_reuses_freed_spans() {
        let mut p = small_pool();
        let a = p.alloc_run(5).unwrap();
        let pages_after_first = p.file_pages();
        // SAFETY: page_ptr of a page this test allocated; offsets stay inside
        // the slot and the pool view stays mapped for the pool's lifetime.
        unsafe {
            *(p.page_ptr(a) as *mut u64) = 0xDEAD;
        }
        p.free_run(a, 5).unwrap();
        // The next run of the same size must reuse a span inside the
        // existing file instead of growing it, and must read as zeros.
        let b = p.alloc_run(5).unwrap();
        assert!(b.0 + 5 <= pages_after_first, "run {b} did not reuse");
        assert_eq!(p.file_pages(), pages_after_first);
        for i in 0..5 * page_size() {
            // SAFETY: page_ptr of a page this test allocated; offsets stay inside
            // the slot and the pool view stays mapped for the pool's lifetime.
            unsafe {
                assert_eq!(*p.page_ptr(b).add(i), 0, "reused run dirty at {i}");
            }
        }
        // A larger run does not fit the span and grows instead.
        let c = p.alloc_run(6).unwrap();
        assert!(c.0 >= pages_after_first || c.0 != b.0);
    }

    #[test]
    fn relocate_page_copies_contents() {
        let mut p = small_pool();
        let src = p.alloc_page().unwrap();
        let dst = p.alloc_page().unwrap();
        // SAFETY: page_ptr of a page this test allocated; offsets stay inside
        // the slot and the pool view stays mapped for the pool's lifetime.
        unsafe {
            for i in 0..page_size() / 8 {
                *(p.page_ptr(src) as *mut u64).add(i) = 7000 + i as u64;
            }
        }
        p.relocate_page(src, dst).unwrap();
        // SAFETY: page_ptr of a page this test allocated; offsets stay inside
        // the slot and the pool view stays mapped for the pool's lifetime.
        unsafe {
            for i in 0..page_size() / 8 {
                assert_eq!(*(p.page_ptr(dst) as *const u64).add(i), 7000 + i as u64);
            }
        }
        // Source keeps its contents (readable until retired + reclaimed).
        // SAFETY: page_ptr of a page this test allocated; offsets stay inside
        // the slot and the pool view stays mapped for the pool's lifetime.
        unsafe {
            assert_eq!(*(p.page_ptr(src) as *const u64), 7000);
        }
        // Invalid relocations are rejected.
        assert!(p.relocate_page(src, src).is_err());
        let free = p.alloc_page().unwrap();
        p.free_page(free).unwrap();
        assert!(p.relocate_page(src, free).is_err());
        assert!(p.relocate_page(PageIdx(9999), dst).is_err());
    }

    #[test]
    fn retired_pages_wait_for_reader_pins() {
        let mut p = small_pool();
        let retire = Arc::clone(p.retire_list());
        let a = p.alloc_page().unwrap();
        let b = p.alloc_page().unwrap();
        // SAFETY: page_ptr of a page this test allocated; offsets stay inside
        // the slot and the pool view stays mapped for the pool's lifetime.
        unsafe {
            *(p.page_ptr(a) as *mut u64) = 41;
        }

        // A reader pins before the retirement; the page must stay intact
        // and unreusable until the pin drains.
        let pin = retire.pin();
        p.retire_page(a).unwrap();
        p.retire_page(b).unwrap();
        assert_eq!(p.retired_page_count(), 2);
        assert_eq!(p.reclaim_retired_pages(), 0, "must not free under a pin");
        // SAFETY: page_ptr of a page this test allocated; offsets stay inside
        // the slot and the pool view stays mapped for the pool's lifetime.
        unsafe {
            assert_eq!(*(p.page_ptr(a) as *const u64), 41);
        }
        // Retired pages cannot be double-retired or freed.
        assert!(p.retire_page(a).is_err());
        assert!(p.free_page(a).is_err());

        drop(pin);
        assert_eq!(p.reclaim_retired_pages(), 2);
        assert_eq!(p.retired_page_count(), 0);
        // Both pages are allocatable again.
        let c = p.alloc_page().unwrap();
        let d = p.alloc_page().unwrap();
        assert!([a, b].contains(&c) || [a, b].contains(&d));
    }

    #[test]
    fn handle_reports_file_len() {
        let mut p = small_pool();
        let h = p.handle();
        let before = h.file_len();
        for _ in 0..10 {
            p.alloc_page().unwrap();
        }
        assert!(h.file_len() >= before);
        assert_eq!(h.file_len(), p.file_pages() * p.layout().slot_bytes());
    }

    #[test]
    fn larger_slots_scale_all_byte_arithmetic() {
        let layout = SlotLayout::new(2).unwrap(); // 16 KB slots
        let mut p = PagePool::new(PoolConfig {
            initial_pages: 2,
            min_growth_pages: 2,
            shrink_threshold_pages: 4,
            view_capacity_pages: 64,
            slot_layout: layout,
            ..PoolConfig::default()
        })
        .unwrap();
        assert_eq!(p.layout(), layout);
        let a = p.alloc_page().unwrap();
        let b = p.alloc_page().unwrap();
        assert_eq!(p.handle().file_len() % layout.slot_bytes(), 0);
        // Writes at the far end of a slot stay inside it.
        let last = layout.slot_bytes() - 8;
        // SAFETY: page_ptr of a page this test allocated; offsets stay inside
        // the slot and the pool view stays mapped for the pool's lifetime.
        unsafe {
            *(p.page_ptr(a).add(last) as *mut u64) = 0xaaaa;
            *(p.page_ptr(b) as *mut u64) = 0xbbbb;
            assert_eq!(*(p.page_ptr(a).add(last) as *const u64), 0xaaaa);
            assert_eq!(*(p.page_ptr(b) as *const u64), 0xbbbb);
        }
        // page_of_ptr resolves interior pointers slot-granularly.
        assert_eq!(
            // SAFETY: page_ptr of a page this test allocated; offsets stay inside
            // the slot and the pool view stays mapped for the pool's lifetime.
            p.page_of_ptr(unsafe { p.page_ptr(a).add(last) }).unwrap(),
            a
        );
        assert_eq!(p.page_of_ptr(p.page_ptr(b)).unwrap(), b);
        // relocate_page moves the whole slot.
        p.relocate_page(a, b).unwrap();
        // SAFETY: page_ptr of a page this test allocated; offsets stay inside
        // the slot and the pool view stays mapped for the pool's lifetime.
        unsafe {
            assert_eq!(*(p.page_ptr(b).add(last) as *const u64), 0xaaaa);
        }
    }

    #[test]
    fn huge_request_below_boundary_stays_plain() {
        let p = PagePool::new(PoolConfig {
            initial_pages: 1,
            view_capacity_pages: 16,
            slot_layout: SlotLayout::new(2).unwrap(),
            huge_pages: true,
            ..PoolConfig::default()
        })
        .unwrap();
        assert!(p.huge_requested());
        assert!(!p.huge_active(), "hugetlb needs the 2 MB boundary");
    }

    #[test]
    fn huge_request_at_boundary_activates_or_falls_back_cleanly() {
        // Whether hugepages are actually available depends on the host
        // (`/proc/sys/vm/nr_hugepages`); either way the pool must come up
        // and serve 2 MB slots correctly.
        let layout = SlotLayout::new(SlotLayout::MAX_SLOT_POWER).unwrap();
        let mut p = PagePool::new(PoolConfig {
            initial_pages: 1,
            min_growth_pages: 1,
            view_capacity_pages: 4,
            slot_layout: layout,
            huge_pages: true,
            ..PoolConfig::default()
        })
        .unwrap();
        assert!(p.huge_requested());
        let nr_hugepages: usize = std::fs::read_to_string("/proc/sys/vm/nr_hugepages")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0);
        if nr_hugepages == 0 {
            assert!(!p.huge_active(), "no reserved hugepages, must fall back");
        }
        assert_eq!(p.handle().huge_active(), p.huge_active());
        let a = p.alloc_page().unwrap();
        let mid = layout.slot_bytes() / 2;
        // SAFETY: page_ptr of a page this test allocated; offsets stay inside
        // the slot and the pool view stays mapped for the pool's lifetime.
        unsafe {
            *(p.page_ptr(a).add(mid) as *mut u64) = 0x2468;
            assert_eq!(*(p.page_ptr(a).add(mid) as *const u64), 0x2468);
        }
    }
}
