//! # shortcut-rewire — user-space memory rewiring
//!
//! This crate is the lowest layer of the *Taking the Shortcut* stack: a safe
//! wrapper around the Linux primitives that make user-controlled
//! virtual→physical page mappings possible (the technique the paper calls
//! *memory rewiring*, after RUMA \[Schuhknecht et al., VLDB 2016\]).
//!
//! The building blocks map 1:1 onto the paper's §2:
//!
//! * [`MemFile`] — a *main-memory file* created with `memfd_create(2)`. It
//!   behaves like a regular file but is backed by volatile physical memory,
//!   so its file offsets act as **handles to physical pages**.
//! * [`PagePool`] — a self-managed pool of physical pages represented by a
//!   single `MemFile` that grows and shrinks on demand (`ftruncate(2)`),
//!   keeps a free-queue of page offsets for reuse, and maintains a linear
//!   virtual view (`v_pool`) over the whole file.
//! * [`VirtArea`] — a consecutive virtual memory area reserved with
//!   `mmap(MAP_PRIVATE | MAP_ANONYMOUS)`. Individual pages of the area can
//!   be **rewired** to pool pages with `mmap(MAP_SHARED | MAP_FIXED)`,
//!   optionally eagerly populating the page table (`MAP_POPULATE`).
//! * [`VmaBudget`] / [`RetireList`] — the mapping-lifecycle layer: areas
//!   account their VMA footprint against a `vm.max_map_count`-fed budget,
//!   and superseded areas are *retired* (epoch-stamped, kept mapped) until
//!   every reader pin taken before retirement has drained, then unmapped.
//!
//! All `unsafe` in the workspace is concentrated here. The safety argument
//! is documented on each wrapper; the crate-level invariants are:
//!
//! 1. A [`VirtArea`] owns its reservation exclusively: no other code mmaps
//!    into `[base, base + pages * page_size)`.
//! 2. Pool pages referenced by a live rewired mapping must not be truncated
//!    away (the pool only shrinks pages that were explicitly freed).
//! 3. Aliased access (the same physical page visible through `v_pool` *and*
//!    through one or more rewired virtual pages) is exposed through raw
//!    pointers and volatile-free plain loads/stores; callers must not hold
//!    Rust references to both views simultaneously.

mod budget;
mod error;
mod memfile;
mod page;
mod pool;
mod retire;
mod slot;
mod stats;
pub mod sync;
mod varea;

pub use budget::{
    budget_headroom, max_map_count, BudgetBinding, BudgetReservation, PoolUsage, VmaBudget,
    VmaSnapshot, DEFAULT_MAX_MAP_COUNT,
};
pub use error::{Error, Result};
pub use memfile::MemFile;
pub use page::{is_page_aligned, page_size, pages_to_bytes, PageIdx, PAGE_SHIFT_4K, PAGE_SIZE_4K};
pub use pool::{PagePool, PoolConfig, PoolHandle};
pub use retire::{PinStrategy, ReaderPin, Reclaimable, RetireCore, RetireList};
pub use slot::{SlotLayout, HUGE_PAGE_BYTES};
pub use stats::{RewireStats, StatsSnapshot};
pub use varea::{planned_vmas, rewire_page_raw, Mapping, VirtArea};
