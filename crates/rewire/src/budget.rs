//! Pool-wide accounting of virtual memory areas (VMAs).
//!
//! Every non-coalescible rewired slot costs the kernel one VMA, and the
//! kernel refuses to create mappings past `vm.max_map_count` (`mmap`
//! returns `ENOMEM`). The paper treats that limit as a deployment footnote
//! ("raise the sysctl"); production code has to treat it as a budget:
//!
//! * [`max_map_count`] reads the kernel limit once and caches it.
//! * [`VmaBudget`] tracks how many VMAs the rewiring layer currently
//!   holds (live **and** retired areas plus the pool view), so consumers
//!   can ask *before* a rebuild whether a directory of `n` mappings fits —
//!   instead of hand-deriving slot caps from the sysctl.
//! * [`PoolUsage`] attributes the shared total back to individual pools,
//!   and opt-in **fair-share admission**
//!   ([`VmaBudget::try_reserve_for`]) keeps one pool's directory rebuild
//!   from starving its siblings' — the contract the sharded index relies
//!   on when N shards share one `vm.max_map_count`.
//!
//! One process-global budget ([`VmaBudget::global`]) is shared by all
//! pools by default because `vm.max_map_count` is a per-process limit;
//! tests and stress rigs inject private budgets with a small limit via
//! [`crate::PoolConfig::vma_budget`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Kernel default for `vm.max_map_count`, used when the sysctl cannot be
/// read (non-Linux hosts, locked-down sandboxes).
pub const DEFAULT_MAX_MAP_COUNT: usize = 65_530;

/// The process's `vm.max_map_count`, read **once** from
/// `/proc/sys/vm/max_map_count` and cached for the lifetime of the
/// process. Falls back to [`DEFAULT_MAX_MAP_COUNT`] when the file is
/// absent or unparsable.
pub fn max_map_count() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::fs::read_to_string("/proc/sys/vm/max_map_count")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_MAX_MAP_COUNT)
    })
}

/// Headroom left unreserved by admission decisions against a budget of
/// `limit` mappings: 1/16 of the limit, capped at 1024. Proportional
/// rather than flat so that small *injected* budgets (tests, CI stress
/// rigs simulating a tiny `vm.max_map_count`) keep most of their limit
/// usable instead of being silently swallowed whole. Lives here (rather
/// than in the mapper that applies it) so fair-share arithmetic and
/// snapshots agree with admission on what "usable" means.
pub fn budget_headroom(limit: usize) -> usize {
    (limit / 16).min(1024)
}

/// Per-pool attribution of a shared [`VmaBudget`]: how many of the
/// budget's VMAs this pool (its view, live directory, and retired areas)
/// currently holds. Obtained from [`VmaBudget::register_pool`]; every
/// charge and release that goes through a [`BudgetBinding`] or a
/// pool-scoped reservation adjusts both counters in tandem.
///
/// Pools registered with `fair == true` additionally participate in
/// fair-share admission: see [`VmaBudget::try_reserve_for`].
#[derive(Debug)]
pub struct PoolUsage {
    in_use: AtomicUsize,
    fair: bool,
}

impl PoolUsage {
    /// VMAs currently attributed to this pool.
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Whether this pool participates in fair-share admission.
    pub fn is_fair(&self) -> bool {
        self.fair
    }

    pub(crate) fn charge(&self, n: usize) {
        self.in_use.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn release(&self, n: usize) {
        let mut cur = self.in_use.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .in_use
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }
}

/// A budget plus the pool the charges should be attributed to. This is
/// what areas carry instead of a bare `Arc<VmaBudget>`: every delta the
/// area's VMA estimate takes is mirrored into the pool's [`PoolUsage`]
/// (when present), so the shared total stays decomposable per pool.
#[derive(Debug, Clone)]
pub struct BudgetBinding {
    budget: Arc<VmaBudget>,
    pool: Option<Arc<PoolUsage>>,
}

impl BudgetBinding {
    /// A binding that charges the budget only (no per-pool attribution).
    pub fn new(budget: Arc<VmaBudget>) -> Self {
        BudgetBinding { budget, pool: None }
    }

    /// A binding that mirrors every charge into `pool`'s usage counter.
    pub fn with_pool(budget: Arc<VmaBudget>, pool: Arc<PoolUsage>) -> Self {
        BudgetBinding {
            budget,
            pool: Some(pool),
        }
    }

    /// The underlying shared budget.
    pub fn budget(&self) -> &Arc<VmaBudget> {
        &self.budget
    }

    /// The pool usage the binding attributes to, if any.
    pub fn pool(&self) -> Option<&Arc<PoolUsage>> {
        self.pool.as_ref()
    }

    pub(crate) fn charge(&self, n: usize) {
        self.budget.charge(n);
        if let Some(p) = &self.pool {
            p.charge(n);
        }
    }

    pub(crate) fn release(&self, n: usize) {
        self.budget.release(n);
        if let Some(p) = &self.pool {
            p.release(n);
        }
    }
}

/// A shared VMA budget: the mapping-count limit plus a running estimate of
/// the VMAs currently held by budget-attached areas and pool views.
///
/// The estimate is *accounting*, not enforcement — attaching an area never
/// fails. Enforcement happens at admission points (the shortcut mapper
/// checks [`VmaBudget::would_fit`] before building a directory) so a
/// too-large rebuild is skipped gracefully instead of dying inside `mmap`.
#[derive(Debug)]
pub struct VmaBudget {
    limit: AtomicUsize,
    in_use: AtomicUsize,
    /// Pools registered for attribution (weak: a dropped pool's retired
    /// areas keep their own `Arc<PoolUsage>` alive until reclaimed, but
    /// the registry itself must not leak entries).
    pools: Mutex<Vec<Weak<PoolUsage>>>,
}

impl VmaBudget {
    /// A budget with an explicit mapping limit (tests, stress rigs).
    pub fn with_limit(limit: usize) -> Arc<Self> {
        Arc::new(VmaBudget {
            limit: AtomicUsize::new(limit),
            in_use: AtomicUsize::new(0),
            pools: Mutex::new(Vec::new()),
        })
    }

    /// The process-global budget, limited by [`max_map_count`]. All pools
    /// share it unless given a private budget, because the kernel limit is
    /// per-process no matter how many pools exist.
    pub fn global() -> Arc<Self> {
        static GLOBAL: OnceLock<Arc<VmaBudget>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| VmaBudget::with_limit(max_map_count())))
    }

    /// The mapping-count limit this budget enforces against.
    pub fn limit(&self) -> usize {
        self.limit.load(Ordering::Relaxed)
    }

    /// Override the limit (e.g. to simulate a small `vm.max_map_count`
    /// without the sysctl). Takes effect for future admission checks.
    pub fn set_limit(&self, limit: usize) {
        self.limit.store(limit, Ordering::Relaxed);
    }

    /// Estimated VMAs currently held against this budget (live areas,
    /// retired-but-unreclaimed areas, pool views).
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Register a pool for per-pool attribution (and, when `fair`, for
    /// fair-share admission). The returned handle is what
    /// [`BudgetBinding::with_pool`] and [`VmaBudget::try_reserve_for`]
    /// charge against; dead registrations are pruned lazily.
    pub fn register_pool(&self, fair: bool) -> Arc<PoolUsage> {
        let usage = Arc::new(PoolUsage {
            in_use: AtomicUsize::new(0),
            fair,
        });
        let mut pools = self.pools.lock().unwrap_or_else(|p| p.into_inner());
        pools.retain(|w| w.strong_count() > 0);
        pools.push(Arc::downgrade(&usage));
        usage
    }

    /// Number of live fair-share pools registered on this budget.
    pub fn fair_pool_count(&self) -> usize {
        let pools = self.pools.lock().unwrap_or_else(|p| p.into_inner());
        pools
            .iter()
            .filter_map(Weak::upgrade)
            .filter(|p| p.fair)
            .count()
    }

    /// The per-pool fair share under `headroom`: the usable budget divided
    /// evenly among the live fair-share pools (0 when none participate).
    /// A fair pool's reservations inside this floor are never blocked by
    /// a sibling's consumption; see [`VmaBudget::try_reserve_for`].
    pub fn fair_share(&self, headroom: usize) -> usize {
        let n = self.fair_pool_count();
        if n == 0 {
            return 0;
        }
        self.limit().saturating_sub(headroom) / n
    }

    /// Sum over the live fair-share pools other than `pool` of their
    /// *unfilled guarantees*: `max(fair − in_use, 0)`. An over-fair
    /// reservation must leave this much budget spare so every sibling can
    /// still grow into its floor.
    fn sibling_guarantee_slack(&self, pool: &Arc<PoolUsage>, fair: usize) -> usize {
        let pools = self.pools.lock().unwrap_or_else(|p| p.into_inner());
        pools
            .iter()
            .filter_map(Weak::upgrade)
            .filter(|p| p.fair && !Arc::ptr_eq(p, pool))
            .map(|p| fair.saturating_sub(p.in_use()))
            .sum()
    }

    /// The admission cap (in total budget `in_use`) that a reservation of
    /// `extra` VMAs by `pool` must stay under. Non-fair pools and
    /// within-fair-share requests see the plain `limit − headroom` cap;
    /// an over-fair request additionally leaves the siblings' unfilled
    /// guarantees spare.
    fn admission_cap(&self, pool: &Arc<PoolUsage>, extra: usize, headroom: usize) -> usize {
        let usable = self.limit().saturating_sub(headroom);
        if !pool.fair {
            return usable;
        }
        let fair = self.fair_share(headroom);
        if pool.in_use().saturating_add(extra) <= fair {
            // Inside the guaranteed floor: over-fair siblings have left
            // this slack untouched by construction, so only the global
            // cap applies.
            usable
        } else {
            usable.saturating_sub(self.sibling_guarantee_slack(pool, fair))
        }
    }

    /// Whether `extra` additional VMAs fit under the limit while leaving
    /// `headroom` mappings spare for everything the budget does not track
    /// (the binary, heap, thread stacks, transient splits).
    ///
    /// This is a racy read — fine for cheap pre-checks and metrics, but
    /// admission decisions must go through [`VmaBudget::try_reserve`],
    /// which commits atomically.
    pub fn would_fit(&self, extra: usize, headroom: usize) -> bool {
        let limit = self.limit().saturating_sub(headroom);
        self.in_use().saturating_add(extra) <= limit
    }

    /// [`VmaBudget::would_fit`] under the fair-share admission cap of
    /// `pool` — the racy pre-check matching
    /// [`VmaBudget::try_reserve_for`].
    pub fn would_fit_for(&self, pool: &Arc<PoolUsage>, extra: usize, headroom: usize) -> bool {
        let cap = self.admission_cap(pool, extra, headroom);
        self.in_use().saturating_add(extra) <= cap
    }

    /// Atomically reserve `extra` VMAs if they fit under the limit minus
    /// `headroom` (compare-and-swap on the running estimate — two pools'
    /// mapper threads admitting rebuilds concurrently cannot both slip
    /// past the limit the way a check-then-charge pair could). The
    /// reservation is released when the returned guard drops; callers
    /// hold it across a rebuild and drop it once the built area has
    /// attached its own (exact) charge.
    ///
    /// Residual imprecision: reservations are worst-case while attached
    /// areas charge their *current* estimate, so a directory that
    /// fragments after admission (bucket splits breaking merged runs)
    /// consumes margin that another pool may meanwhile have reserved.
    /// That second-order overlap can only surface as a cleanly-reported
    /// `mmap` failure, never an unaccounted mapping.
    pub fn try_reserve(
        self: &Arc<Self>,
        extra: usize,
        headroom: usize,
    ) -> Option<BudgetReservation> {
        let cap = self.limit().saturating_sub(headroom);
        self.reserve_under_cap(extra, cap, None)
    }

    /// Pool-attributed, fairness-aware [`VmaBudget::try_reserve`]: the
    /// reserved VMAs are charged to `pool`'s usage as well, and — when the
    /// pool was registered fair — admission enforces the fair-share rule:
    ///
    /// * A request that keeps the pool **within its fair share**
    ///   (`limit − headroom` divided by the number of fair pools) only
    ///   has to fit under the global cap.
    /// * A request that takes the pool **over** its fair share must
    ///   additionally leave every fair sibling's unfilled guarantee
    ///   (`max(fair − sibling_in_use, 0)`, summed) spare — a hot shard
    ///   may spill into the division remainder or budget freed by a
    ///   *departed* sibling (the share recomputes over live pools), but
    ///   never into the margin a sibling is still entitled to for its
    ///   own rebuild.
    ///
    /// Non-fair pools (the default) see exactly the plain `try_reserve`
    /// admission; their reservations are merely attributed.
    pub fn try_reserve_for(
        self: &Arc<Self>,
        pool: &Arc<PoolUsage>,
        extra: usize,
        headroom: usize,
    ) -> Option<BudgetReservation> {
        let cap = self.admission_cap(pool, extra, headroom);
        self.reserve_under_cap(extra, cap, Some(Arc::clone(pool)))
    }

    /// CAS-commit `extra` into `in_use` if the result stays `<= cap`.
    /// The cap itself is computed from racy sibling reads *before* the
    /// loop; that imprecision is conservative in the steady state (a
    /// sibling's concurrent growth only shrinks what this pool should
    /// take) and second-order at worst, like the overlap note on
    /// [`VmaBudget::try_reserve`].
    fn reserve_under_cap(
        self: &Arc<Self>,
        extra: usize,
        cap: usize,
        pool: Option<Arc<PoolUsage>>,
    ) -> Option<BudgetReservation> {
        let mut cur = self.in_use.load(Ordering::Relaxed);
        loop {
            let next = cur.checked_add(extra)?;
            if next > cap {
                return None;
            }
            match self
                .in_use
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    if let Some(p) = &pool {
                        p.charge(extra);
                    }
                    return Some(BudgetReservation {
                        budget: Arc::clone(self),
                        pool,
                        n: extra,
                    });
                }
                Err(observed) => cur = observed,
            }
        }
    }

    pub(crate) fn charge(&self, n: usize) {
        self.in_use.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn release(&self, n: usize) {
        // Saturating: a release can never drive the estimate negative even
        // if a caller double-counts during teardown.
        let mut cur = self.in_use.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .in_use
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }
}

/// A held VMA reservation from [`VmaBudget::try_reserve`] /
/// [`VmaBudget::try_reserve_for`]; the reserved count (and its per-pool
/// attribution, if any) is released back on drop.
#[derive(Debug)]
pub struct BudgetReservation {
    budget: Arc<VmaBudget>,
    pool: Option<Arc<PoolUsage>>,
    n: usize,
}

impl BudgetReservation {
    /// Convert the worst-case reservation into an exact charge of
    /// `exact` VMAs in one adjustment: the budget goes straight from
    /// `reserved` to `exact` held, never transiently holding both (which
    /// could push the estimate past the limit) and never dipping to zero
    /// (which would let a concurrent reservation steal the margin). The
    /// caller then owns the `exact` charge — typically by attaching the
    /// budget to the built area as prepaid.
    pub fn settle(mut self, exact: usize) {
        match exact.cmp(&self.n) {
            std::cmp::Ordering::Less => {
                self.budget.release(self.n - exact);
                if let Some(p) = &self.pool {
                    p.release(self.n - exact);
                }
            }
            std::cmp::Ordering::Greater => {
                self.budget.charge(exact - self.n);
                if let Some(p) = &self.pool {
                    p.charge(exact - self.n);
                }
            }
            std::cmp::Ordering::Equal => {}
        }
        self.n = 0; // the drop below releases nothing
    }

    /// The pool this reservation is attributed to, if it came from
    /// [`VmaBudget::try_reserve_for`]. A settled charge belongs to the
    /// same pool; callers attaching the built area prepaid must bind it
    /// with the same attribution so the release on drop matches.
    pub fn pool(&self) -> Option<&Arc<PoolUsage>> {
        self.pool.as_ref()
    }
}

impl Drop for BudgetReservation {
    fn drop(&mut self) {
        self.budget.release(self.n);
        if let Some(p) = &self.pool {
            p.release(self.n);
        }
    }
}

/// Point-in-time view of the VMA budget and retirement machinery, merged
/// into the facade's statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmaSnapshot {
    /// Estimated VMAs currently held (live + retired areas + pool view).
    /// For a shared budget this is the **process-wide** total, not this
    /// pool's share — see [`VmaSnapshot::pool_in_use`] for the latter.
    pub in_use: u64,
    /// Mapping-count limit of the budget (`vm.max_map_count` unless
    /// overridden).
    pub limit: u64,
    /// Estimated VMAs held by retired (superseded, not yet reclaimed)
    /// areas — the part of `in_use` that drains once readers quiesce.
    pub retired_vmas: u64,
    /// Retired areas still mapped, waiting for readers to drain.
    pub retired_areas: u64,
    /// Areas handed to the retire list over the pool's lifetime.
    pub areas_retired: u64,
    /// Retired areas reclaimed (munmapped) so far.
    pub areas_reclaimed: u64,
    /// Estimated VMAs those reclaimed areas gave back.
    pub vmas_reclaimed: u64,
    /// VMAs attributed to **this pool** (its view, live directory, and
    /// retired areas). Equals `in_use` when the pool has the budget to
    /// itself; on a shared budget the pools' `pool_in_use` values sum to
    /// (at most) `in_use`.
    pub pool_in_use: u64,
    /// Live fair-share pools registered on the budget (0 when fairness is
    /// not in play).
    pub fair_pools: u64,
    /// The per-pool fair-share floor at the default admission headroom
    /// (0 when no pool participates).
    pub fair_share: u64,
}

impl VmaSnapshot {
    /// Estimated VMAs held by *live* mappings (the current directory plus
    /// the pool view): `in_use` minus the retired share. This is the
    /// number that must stay low for the index to keep fitting under
    /// `vm.max_map_count` — retired VMAs are transient by construction.
    pub fn live_vmas(&self) -> u64 {
        self.in_use.saturating_sub(self.retired_vmas)
    }

    /// Merge two snapshots of pools **sharing one budget** into a single
    /// aggregate view, with the correct treatment per field kind:
    ///
    /// * `in_use`, `limit`, `fair_pools`, `fair_share` are properties of
    ///   the *shared* budget — every pool reports the same process-wide
    ///   number, so the merge takes the **max** (summing would count the
    ///   budget once per pool).
    /// * `pool_in_use` and all retirement counters (`retired_vmas`,
    ///   `retired_areas`, `areas_retired`, `areas_reclaimed`,
    ///   `vmas_reclaimed`) are per-pool quantities and are **summed**.
    pub fn merge(&self, other: &VmaSnapshot) -> VmaSnapshot {
        VmaSnapshot {
            in_use: self.in_use.max(other.in_use),
            limit: self.limit.max(other.limit),
            retired_vmas: self.retired_vmas + other.retired_vmas,
            retired_areas: self.retired_areas + other.retired_areas,
            areas_retired: self.areas_retired + other.areas_retired,
            areas_reclaimed: self.areas_reclaimed + other.areas_reclaimed,
            vmas_reclaimed: self.vmas_reclaimed + other.vmas_reclaimed,
            pool_in_use: self.pool_in_use + other.pool_in_use,
            fair_pools: self.fair_pools.max(other.fair_pools),
            fair_share: self.fair_share.max(other.fair_share),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_map_count_is_cached_and_sane() {
        let a = max_map_count();
        let b = max_map_count();
        assert_eq!(a, b);
        assert!(a >= 1024, "implausible map count {a}");
    }

    #[test]
    fn charge_release_roundtrip() {
        let b = VmaBudget::with_limit(100);
        b.charge(30);
        assert_eq!(b.in_use(), 30);
        assert!(b.would_fit(70, 0));
        assert!(!b.would_fit(71, 0));
        assert!(!b.would_fit(70, 10));
        b.release(20);
        assert_eq!(b.in_use(), 10);
        // Saturating under-release.
        b.release(1000);
        assert_eq!(b.in_use(), 0);
    }

    #[test]
    fn try_reserve_commits_atomically_and_releases_on_drop() {
        let b = VmaBudget::with_limit(100);
        b.charge(40);
        let r = b.try_reserve(50, 0).expect("50 fits over 40/100");
        assert_eq!(b.in_use(), 90);
        assert!(b.try_reserve(20, 0).is_none(), "past the limit");
        assert!(b.try_reserve(11, 0).is_none(), "one past the limit");
        drop(r);
        assert_eq!(b.in_use(), 40);
        assert!(b.try_reserve(10, 50).is_some(), "headroom respected");
    }

    #[test]
    fn limit_override_applies() {
        let b = VmaBudget::with_limit(100);
        b.set_limit(10);
        b.charge(8);
        assert!(b.would_fit(2, 0));
        assert!(!b.would_fit(3, 0));
    }

    #[test]
    fn global_budget_is_shared() {
        let a = VmaBudget::global();
        let b = VmaBudget::global();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.limit(), max_map_count());
    }

    #[test]
    fn pool_registration_attributes_charges() {
        let b = VmaBudget::with_limit(100);
        let p = b.register_pool(false);
        let binding = BudgetBinding::with_pool(Arc::clone(&b), Arc::clone(&p));
        binding.charge(7);
        assert_eq!(b.in_use(), 7);
        assert_eq!(p.in_use(), 7);
        binding.release(3);
        assert_eq!(b.in_use(), 4);
        assert_eq!(p.in_use(), 4);
        // Non-pool binding only moves the shared total.
        let plain = BudgetBinding::new(Arc::clone(&b));
        plain.charge(6);
        assert_eq!(b.in_use(), 10);
        assert_eq!(p.in_use(), 4);
    }

    #[test]
    fn reserve_for_settle_and_drop_track_pool_usage() {
        let b = VmaBudget::with_limit(100);
        let p = b.register_pool(false);
        let r = b.try_reserve_for(&p, 30, 0).expect("fits");
        assert_eq!(b.in_use(), 30);
        assert_eq!(p.in_use(), 30);
        r.settle(12);
        assert_eq!(b.in_use(), 12);
        assert_eq!(p.in_use(), 12);
        let r2 = b.try_reserve_for(&p, 20, 0).expect("fits");
        drop(r2);
        assert_eq!(b.in_use(), 12);
        assert_eq!(p.in_use(), 12);
    }

    #[test]
    fn fair_share_divides_usable_budget() {
        let b = VmaBudget::with_limit(120);
        assert_eq!(b.fair_share(0), 0, "no fair pools yet");
        let _p1 = b.register_pool(true);
        let _p2 = b.register_pool(true);
        let _np = b.register_pool(false); // non-fair: not a divisor
        assert_eq!(b.fair_pool_count(), 2);
        assert_eq!(b.fair_share(0), 60);
        assert_eq!(b.fair_share(20), 50);
    }

    #[test]
    fn over_fair_reservation_leaves_sibling_guarantees() {
        // Two fair pools, limit 100, headroom 0 → fair share 50 each.
        let b = VmaBudget::with_limit(100);
        let hot = b.register_pool(true);
        let cold = b.register_pool(true);

        // Hot pool may fill its own floor freely…
        let r1 = b.try_reserve_for(&hot, 50, 0).expect("within fair share");
        // …but over-fair growth must leave cold's full 50 spare.
        assert!(
            b.try_reserve_for(&hot, 10, 0).is_none(),
            "over-fair reservation stole the sibling's guarantee"
        );
        assert!(!b.would_fit_for(&hot, 10, 0));

        // The cold sibling's own (within-fair) rebuild still fits — the
        // whole point: hot's pressure cannot have consumed cold's floor.
        let r2 = b.try_reserve_for(&cold, 40, 0).expect("guaranteed floor");
        let r3 = b.try_reserve_for(&cold, 10, 0).expect("rest of the floor");
        // Budget fully consumed at the fair split; nothing left to take.
        assert!(b.try_reserve_for(&hot, 1, 0).is_none(), "cap reached");
        drop((r1, r2, r3));
        assert_eq!(b.in_use(), 0);
        assert_eq!(hot.in_use(), 0);
        assert_eq!(cold.in_use(), 0);
    }

    #[test]
    fn departed_sibling_share_becomes_borrowable() {
        // Fair shares recompute over *live* pools: once a sibling pool is
        // dropped, its share returns to the common pot and a hot pool may
        // spill past its old floor.
        let b = VmaBudget::with_limit(100);
        let hot = b.register_pool(true);
        let cold = b.register_pool(true);
        assert!(b.try_reserve_for(&hot, 60, 0).is_none(), "over-fair at N=2");
        drop(cold);
        let r = b
            .try_reserve_for(&hot, 60, 0)
            .expect("sole fair pool owns the usable budget");
        // The division remainder is spill-able too: 3 fair pools over 100
        // leave 100 − 3·33 = 1 above the summed guarantees.
        drop(r);
        let p2 = b.register_pool(true);
        let p3 = b.register_pool(true);
        assert_eq!(b.fair_share(0), 33);
        let r = b.try_reserve_for(&hot, 34, 0).expect("remainder spill");
        assert!(b.try_reserve_for(&hot, 1, 0).is_none(), "guarantees held");
        drop((r, p2, p3));
    }

    #[test]
    fn non_fair_pools_see_plain_admission() {
        let b = VmaBudget::with_limit(100);
        let _fair = b.register_pool(true);
        let plain = b.register_pool(false);
        // A non-fair pool is not constrained by the fair sibling's
        // unfilled guarantee — exactly today's first-come admission.
        assert!(b.try_reserve_for(&plain, 100, 0).is_some());
    }

    #[test]
    fn dropped_pools_leave_the_registry() {
        let b = VmaBudget::with_limit(100);
        let p1 = b.register_pool(true);
        {
            let _p2 = b.register_pool(true);
            assert_eq!(b.fair_pool_count(), 2);
        }
        // p2 is gone; registration prunes, and the count reflects it.
        let _p3 = b.register_pool(true);
        assert_eq!(b.fair_pool_count(), 2);
        drop(p1);
        assert_eq!(b.fair_pool_count(), 1);
    }

    #[test]
    fn snapshot_merge_sums_pool_counters_and_maxes_shared_gauges() {
        let a = VmaSnapshot {
            in_use: 40,
            limit: 100,
            retired_vmas: 5,
            retired_areas: 1,
            areas_retired: 3,
            areas_reclaimed: 2,
            vmas_reclaimed: 9,
            pool_in_use: 25,
            fair_pools: 2,
            fair_share: 45,
        };
        let b = VmaSnapshot {
            in_use: 40,
            limit: 100,
            retired_vmas: 2,
            retired_areas: 2,
            areas_retired: 4,
            areas_reclaimed: 2,
            vmas_reclaimed: 6,
            pool_in_use: 15,
            fair_pools: 2,
            fair_share: 45,
        };
        let m = a.merge(&b);
        // Shared-budget gauges: max, not sum.
        assert_eq!(m.in_use, 40);
        assert_eq!(m.limit, 100);
        assert_eq!(m.fair_pools, 2);
        assert_eq!(m.fair_share, 45);
        // Per-pool quantities: sum.
        assert_eq!(m.pool_in_use, 40);
        assert_eq!(m.retired_vmas, 7);
        assert_eq!(m.retired_areas, 3);
        assert_eq!(m.areas_retired, 7);
        assert_eq!(m.areas_reclaimed, 4);
        assert_eq!(m.vmas_reclaimed, 15);
        assert_eq!(m.live_vmas(), 40 - 7);
    }
}
