//! Pool-wide accounting of virtual memory areas (VMAs).
//!
//! Every non-coalescible rewired slot costs the kernel one VMA, and the
//! kernel refuses to create mappings past `vm.max_map_count` (`mmap`
//! returns `ENOMEM`). The paper treats that limit as a deployment footnote
//! ("raise the sysctl"); production code has to treat it as a budget:
//!
//! * [`max_map_count`] reads the kernel limit once and caches it.
//! * [`VmaBudget`] tracks how many VMAs the rewiring layer currently
//!   holds (live **and** retired areas plus the pool view), so consumers
//!   can ask *before* a rebuild whether a directory of `n` mappings fits —
//!   instead of hand-deriving slot caps from the sysctl.
//!
//! One process-global budget ([`VmaBudget::global`]) is shared by all
//! pools by default because `vm.max_map_count` is a per-process limit;
//! tests and stress rigs inject private budgets with a small limit via
//! [`crate::PoolConfig::vma_budget`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Kernel default for `vm.max_map_count`, used when the sysctl cannot be
/// read (non-Linux hosts, locked-down sandboxes).
pub const DEFAULT_MAX_MAP_COUNT: usize = 65_530;

/// The process's `vm.max_map_count`, read **once** from
/// `/proc/sys/vm/max_map_count` and cached for the lifetime of the
/// process. Falls back to [`DEFAULT_MAX_MAP_COUNT`] when the file is
/// absent or unparsable.
pub fn max_map_count() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::fs::read_to_string("/proc/sys/vm/max_map_count")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_MAX_MAP_COUNT)
    })
}

/// A shared VMA budget: the mapping-count limit plus a running estimate of
/// the VMAs currently held by budget-attached areas and pool views.
///
/// The estimate is *accounting*, not enforcement — attaching an area never
/// fails. Enforcement happens at admission points (the shortcut mapper
/// checks [`VmaBudget::would_fit`] before building a directory) so a
/// too-large rebuild is skipped gracefully instead of dying inside `mmap`.
#[derive(Debug)]
pub struct VmaBudget {
    limit: AtomicUsize,
    in_use: AtomicUsize,
}

impl VmaBudget {
    /// A budget with an explicit mapping limit (tests, stress rigs).
    pub fn with_limit(limit: usize) -> Arc<Self> {
        Arc::new(VmaBudget {
            limit: AtomicUsize::new(limit),
            in_use: AtomicUsize::new(0),
        })
    }

    /// The process-global budget, limited by [`max_map_count`]. All pools
    /// share it unless given a private budget, because the kernel limit is
    /// per-process no matter how many pools exist.
    pub fn global() -> Arc<Self> {
        static GLOBAL: OnceLock<Arc<VmaBudget>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| VmaBudget::with_limit(max_map_count())))
    }

    /// The mapping-count limit this budget enforces against.
    pub fn limit(&self) -> usize {
        self.limit.load(Ordering::Relaxed)
    }

    /// Override the limit (e.g. to simulate a small `vm.max_map_count`
    /// without the sysctl). Takes effect for future admission checks.
    pub fn set_limit(&self, limit: usize) {
        self.limit.store(limit, Ordering::Relaxed);
    }

    /// Estimated VMAs currently held against this budget (live areas,
    /// retired-but-unreclaimed areas, pool views).
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Whether `extra` additional VMAs fit under the limit while leaving
    /// `headroom` mappings spare for everything the budget does not track
    /// (the binary, heap, thread stacks, transient splits).
    ///
    /// This is a racy read — fine for cheap pre-checks and metrics, but
    /// admission decisions must go through [`VmaBudget::try_reserve`],
    /// which commits atomically.
    pub fn would_fit(&self, extra: usize, headroom: usize) -> bool {
        let limit = self.limit().saturating_sub(headroom);
        self.in_use().saturating_add(extra) <= limit
    }

    /// Atomically reserve `extra` VMAs if they fit under the limit minus
    /// `headroom` (compare-and-swap on the running estimate — two pools'
    /// mapper threads admitting rebuilds concurrently cannot both slip
    /// past the limit the way a check-then-charge pair could). The
    /// reservation is released when the returned guard drops; callers
    /// hold it across a rebuild and drop it once the built area has
    /// attached its own (exact) charge.
    ///
    /// Residual imprecision: reservations are worst-case while attached
    /// areas charge their *current* estimate, so a directory that
    /// fragments after admission (bucket splits breaking merged runs)
    /// consumes margin that another pool may meanwhile have reserved.
    /// That second-order overlap can only surface as a cleanly-reported
    /// `mmap` failure, never an unaccounted mapping.
    pub fn try_reserve(
        self: &Arc<Self>,
        extra: usize,
        headroom: usize,
    ) -> Option<BudgetReservation> {
        let limit = self.limit().saturating_sub(headroom);
        let mut cur = self.in_use.load(Ordering::Relaxed);
        loop {
            let next = cur.checked_add(extra)?;
            if next > limit {
                return None;
            }
            match self
                .in_use
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    return Some(BudgetReservation {
                        budget: Arc::clone(self),
                        n: extra,
                    })
                }
                Err(observed) => cur = observed,
            }
        }
    }

    pub(crate) fn charge(&self, n: usize) {
        self.in_use.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn release(&self, n: usize) {
        // Saturating: a release can never drive the estimate negative even
        // if a caller double-counts during teardown.
        let mut cur = self.in_use.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .in_use
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }
}

/// A held VMA reservation from [`VmaBudget::try_reserve`]; the reserved
/// count is released back to the budget on drop.
#[derive(Debug)]
pub struct BudgetReservation {
    budget: Arc<VmaBudget>,
    n: usize,
}

impl BudgetReservation {
    /// Convert the worst-case reservation into an exact charge of
    /// `exact` VMAs in one adjustment: the budget goes straight from
    /// `reserved` to `exact` held, never transiently holding both (which
    /// could push the estimate past the limit) and never dipping to zero
    /// (which would let a concurrent reservation steal the margin). The
    /// caller then owns the `exact` charge — typically by attaching the
    /// budget to the built area as prepaid.
    pub fn settle(mut self, exact: usize) {
        match exact.cmp(&self.n) {
            std::cmp::Ordering::Less => self.budget.release(self.n - exact),
            std::cmp::Ordering::Greater => self.budget.charge(exact - self.n),
            std::cmp::Ordering::Equal => {}
        }
        self.n = 0; // the drop below releases nothing
    }
}

impl Drop for BudgetReservation {
    fn drop(&mut self) {
        self.budget.release(self.n);
    }
}

/// Point-in-time view of the VMA budget and retirement machinery, merged
/// into the facade's statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmaSnapshot {
    /// Estimated VMAs currently held (live + retired areas + pool view).
    pub in_use: u64,
    /// Mapping-count limit of the budget (`vm.max_map_count` unless
    /// overridden).
    pub limit: u64,
    /// Estimated VMAs held by retired (superseded, not yet reclaimed)
    /// areas — the part of `in_use` that drains once readers quiesce.
    pub retired_vmas: u64,
    /// Retired areas still mapped, waiting for readers to drain.
    pub retired_areas: u64,
    /// Areas handed to the retire list over the pool's lifetime.
    pub areas_retired: u64,
    /// Retired areas reclaimed (munmapped) so far.
    pub areas_reclaimed: u64,
    /// Estimated VMAs those reclaimed areas gave back.
    pub vmas_reclaimed: u64,
}

impl VmaSnapshot {
    /// Estimated VMAs held by *live* mappings (the current directory plus
    /// the pool view): `in_use` minus the retired share. This is the
    /// number that must stay low for the index to keep fitting under
    /// `vm.max_map_count` — retired VMAs are transient by construction.
    pub fn live_vmas(&self) -> u64 {
        self.in_use.saturating_sub(self.retired_vmas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_map_count_is_cached_and_sane() {
        let a = max_map_count();
        let b = max_map_count();
        assert_eq!(a, b);
        assert!(a >= 1024, "implausible map count {a}");
    }

    #[test]
    fn charge_release_roundtrip() {
        let b = VmaBudget::with_limit(100);
        b.charge(30);
        assert_eq!(b.in_use(), 30);
        assert!(b.would_fit(70, 0));
        assert!(!b.would_fit(71, 0));
        assert!(!b.would_fit(70, 10));
        b.release(20);
        assert_eq!(b.in_use(), 10);
        // Saturating under-release.
        b.release(1000);
        assert_eq!(b.in_use(), 0);
    }

    #[test]
    fn try_reserve_commits_atomically_and_releases_on_drop() {
        let b = VmaBudget::with_limit(100);
        b.charge(40);
        let r = b.try_reserve(50, 0).expect("50 fits over 40/100");
        assert_eq!(b.in_use(), 90);
        assert!(b.try_reserve(20, 0).is_none(), "past the limit");
        assert!(b.try_reserve(11, 0).is_none(), "one past the limit");
        drop(r);
        assert_eq!(b.in_use(), 40);
        assert!(b.try_reserve(10, 50).is_some(), "headroom respected");
    }

    #[test]
    fn limit_override_applies() {
        let b = VmaBudget::with_limit(100);
        b.set_limit(10);
        b.charge(8);
        assert!(b.would_fit(2, 0));
        assert!(!b.would_fit(3, 0));
    }

    #[test]
    fn global_budget_is_shared() {
        let a = VmaBudget::global();
        let b = VmaBudget::global();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.limit(), max_map_count());
    }
}
