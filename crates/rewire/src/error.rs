//! Error type for rewiring operations.
//!
//! Every failing system call is reported with the call name and the captured
//! `errno`, because rewiring bugs are almost always diagnosed from exactly
//! that pair (e.g. `EINVAL` from `mmap` means a bad offset/length/alignment,
//! `ENOMEM` means the mapping count limit `vm.max_map_count` was hit — a
//! real concern for shortcut nodes, which create one mapping per slot).

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the rewiring substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A system call failed. Carries the call name and `errno`.
    Os {
        /// The libc function that failed (`"mmap"`, `"ftruncate"`, …).
        call: &'static str,
        /// The captured `errno` value.
        errno: i32,
    },
    /// An argument was out of range or misaligned.
    InvalidArg {
        /// Human-readable description of the violated precondition.
        what: String,
    },
    /// A page index was freed twice or used after free.
    BadPageRef {
        /// The offending pool page index.
        page: usize,
        /// What went wrong with it.
        what: &'static str,
    },
    /// The pool was asked to shrink/grow to an impossible size.
    BadResize {
        /// Current size in pages.
        current: usize,
        /// Requested size in pages.
        requested: usize,
    },
}

impl Error {
    /// Capture `errno` for a failed call.
    pub(crate) fn os(call: &'static str) -> Self {
        Error::Os {
            call,
            errno: std::io::Error::last_os_error().raw_os_error().unwrap_or(0),
        }
    }

    /// Convenience constructor for precondition violations.
    pub(crate) fn invalid(what: impl Into<String>) -> Self {
        Error::InvalidArg { what: what.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Os { call, errno } => {
                let msg = std::io::Error::from_raw_os_error(*errno);
                write!(f, "{call} failed: {msg} (errno {errno})")
            }
            Error::InvalidArg { what } => write!(f, "invalid argument: {what}"),
            Error::BadPageRef { page, what } => write!(f, "bad page reference {page}: {what}"),
            Error::BadResize { current, requested } => {
                write!(f, "bad resize: {current} -> {requested} pages")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_os_error_includes_call_and_errno() {
        let e = Error::Os {
            call: "mmap",
            errno: libc::EINVAL,
        };
        let s = e.to_string();
        assert!(s.contains("mmap"), "{s}");
        assert!(s.contains(&libc::EINVAL.to_string()), "{s}");
    }

    #[test]
    fn display_invalid_arg() {
        let e = Error::invalid("offset not page aligned");
        assert!(e.to_string().contains("offset not page aligned"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::invalid("x"), Error::InvalidArg { what: "x".into() });
        assert_ne!(Error::invalid("x"), Error::invalid("y"));
    }
}
