//! The physical **slot**: the pool's allocation and rewiring unit.
//!
//! The paper works with one 4 KB page per directory slot, which makes the
//! slot and the base page coincide — but nothing in the rewiring technique
//! requires that. A slot may span `2^k` consecutive base pages: the pool
//! then allocates, frees and relocates `2^k`-page units, a [`crate::VirtArea`]
//! "page" becomes a `2^k`-page window, and every `mmap` moves `2^k` pages at
//! once. Larger slots cut the §3.2 hardware cost twice over:
//!
//! * **VMAs** — a directory of `s` slots costs at most `s` mappings
//!   regardless of slot size, but the same number of *entries* needs
//!   `2^k`-fold fewer slots, so the mapping footprint (and the pressure on
//!   `vm.max_map_count`) shrinks by up to `2^k`.
//! * **TLB reach** — each TLB entry then covers `2^k` pages of leaf data,
//!   and at the 2 MB boundary the mapping can be backed by hardware
//!   hugepages ([`crate::PoolConfig::huge_pages`]), collapsing a page-walk
//!   level.
//!
//! `SlotLayout` is constructed once per pool and threaded through every
//! layer; all byte arithmetic on slot indices goes through it.

use crate::error::{Error, Result};
use crate::page::{PAGE_SHIFT_4K, PAGE_SIZE_4K};

/// Bytes in one 2 MB hardware hugepage (x86-64 PMD / aarch64 L2 block).
pub const HUGE_PAGE_BYTES: usize = 2 << 20;

/// The physical slot layout of a pool: a slot is `2^k` consecutive 4 KB
/// base pages, allocated, rewired and relocated as one unit.
///
/// The default (`k = 0`) reproduces the paper's one-page-per-slot layout
/// exactly. Layouts are cheap `Copy` values; every size computation in the
/// stack derives from [`SlotLayout::slot_bytes`] / [`SlotLayout::slot_shift`].
///
/// ```
/// use shortcut_rewire::SlotLayout;
///
/// let base = SlotLayout::base();            // k = 0: 4 KB slots
/// assert_eq!(base.pages_per_slot(), 1);
/// assert_eq!(base.slot_bytes(), 4096);
///
/// let big = SlotLayout::new(4).unwrap();    // k = 4: 64 KB slots
/// assert_eq!(big.pages_per_slot(), 16);
/// assert_eq!(big.slot_bytes(), 64 * 1024);
/// assert_eq!(big.slot_shift(), 16);         // byte offset = index << 16
/// assert!(!big.reaches_huge_boundary());
///
/// let huge = SlotLayout::new(9).unwrap();   // k = 9: 2 MB slots
/// assert!(huge.reaches_huge_boundary());    // eligible for MFD_HUGETLB
/// assert!(SlotLayout::new(10).is_err());    // capped at the 2 MB boundary
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotLayout {
    /// `log2` of the pages per slot.
    k: u32,
}

impl SlotLayout {
    /// Largest supported slot power: `2^9` pages = 2 MB, the hardware
    /// hugepage size. Larger slots would not shrink the page-table walk
    /// further and would waste half-empty buckets.
    pub const MAX_SLOT_POWER: u32 = 9;

    /// A layout of `2^k`-page slots.
    ///
    /// # Errors
    ///
    /// Rejects `k >` [`SlotLayout::MAX_SLOT_POWER`].
    pub fn new(k: u32) -> Result<Self> {
        if k > Self::MAX_SLOT_POWER {
            return Err(Error::invalid(format!(
                "slot power {k} exceeds the 2 MB boundary (max {})",
                Self::MAX_SLOT_POWER
            )));
        }
        Ok(SlotLayout { k })
    }

    /// The paper's layout: one 4 KB base page per slot (`k = 0`).
    pub const fn base() -> Self {
        SlotLayout { k: 0 }
    }

    /// `log2` of the pages per slot.
    #[inline]
    pub const fn slot_power(self) -> u32 {
        self.k
    }

    /// Base pages per slot (`2^k`).
    #[inline]
    pub const fn pages_per_slot(self) -> usize {
        1usize << self.k
    }

    /// Bytes per slot (`4096 << k`).
    #[inline]
    pub const fn slot_bytes(self) -> usize {
        PAGE_SIZE_4K << self.k
    }

    /// `log2(slot_bytes)`: shift a slot index left by this to get its byte
    /// offset — the layout-derived replacement for the hard-coded `<< 12`.
    #[inline]
    pub const fn slot_shift(self) -> u32 {
        PAGE_SHIFT_4K + self.k
    }

    /// Byte offset of slot `index` inside a pool file of this layout.
    #[inline]
    pub const fn byte_offset(self, index: usize) -> usize {
        index << self.slot_shift()
    }

    /// Whether slots are large enough to be backed by 2 MB hardware
    /// hugepages (`MFD_HUGETLB`).
    #[inline]
    pub const fn reaches_huge_boundary(self) -> bool {
        self.slot_bytes() >= HUGE_PAGE_BYTES
    }

    /// How many slots cover `bytes` (at least one) — the helper behind
    /// byte-denominated sizing floors ("grow by ≥ 256 KB", "reserve
    /// ≥ 16 MB of view") that must stay constant in bytes as the slot
    /// size changes.
    #[inline]
    pub const fn slots_for_bytes(self, bytes: usize) -> usize {
        let slots = bytes >> self.slot_shift();
        if slots == 0 {
            1
        } else {
            slots
        }
    }
}

impl Default for SlotLayout {
    fn default() -> Self {
        Self::base()
    }
}

impl std::fmt::Display for SlotLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "2^{}-page slots ({} B)", self.k, self.slot_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_identity() {
        let l = SlotLayout::base();
        assert_eq!(l.slot_power(), 0);
        assert_eq!(l.pages_per_slot(), 1);
        assert_eq!(l.slot_bytes(), PAGE_SIZE_4K);
        assert_eq!(l.slot_shift(), PAGE_SHIFT_4K);
        assert_eq!(l.byte_offset(3), 3 * PAGE_SIZE_4K);
        assert!(!l.reaches_huge_boundary());
        assert_eq!(SlotLayout::default(), l);
    }

    #[test]
    fn powers_scale_bytes_and_shift() {
        for k in 0..=SlotLayout::MAX_SLOT_POWER {
            let l = SlotLayout::new(k).unwrap();
            assert_eq!(l.slot_bytes(), PAGE_SIZE_4K << k);
            assert_eq!(l.byte_offset(5), 5 * l.slot_bytes());
            assert_eq!(1usize << l.slot_shift(), l.slot_bytes());
        }
    }

    #[test]
    fn huge_boundary_at_2mb() {
        assert!(!SlotLayout::new(8).unwrap().reaches_huge_boundary());
        assert!(SlotLayout::new(9).unwrap().reaches_huge_boundary());
        assert_eq!(SlotLayout::new(9).unwrap().slot_bytes(), HUGE_PAGE_BYTES);
    }

    #[test]
    fn oversized_power_rejected() {
        assert!(SlotLayout::new(SlotLayout::MAX_SLOT_POWER + 1).is_err());
    }

    #[test]
    fn display_is_informative() {
        let s = SlotLayout::new(2).unwrap().to_string();
        assert!(s.contains("2^2"), "{s}");
        assert!(s.contains("16384"), "{s}");
    }
}
