//! Epoch-based retirement of virtual areas.
//!
//! When a shortcut directory is rebuilt, the superseded [`VirtArea`] cannot
//! be unmapped immediately: a seqlock reader that obtained its ticket just
//! before the rebuild may still be dereferencing the old base (it will
//! discard the value at validation, but the *load* must not fault). The
//! seed kept every retired area mapped forever, so VMA use grew with each
//! doubling until `vm.max_map_count` tripped. This module bounds that:
//!
//! * Readers wrap each shortcut access in a [`ReaderPin`] (a striped
//!   counter increment — nanoseconds, no locks, no contention between
//!   threads on different stripes).
//! * The writer hands superseded areas to [`RetireList::retire`], which
//!   stamps them with a monotonically increasing **epoch**. Retirement must
//!   happen only after the area is unpublished (no *new* reader can reach
//!   it), which the seqlock's version check guarantees.
//! * [`RetireCore::try_reclaim`] snapshots the epoch, then observes every
//!   reader stripe at zero (each at its own moment). Any reader that
//!   pinned before the scan has, by then, dropped its pin; readers that
//!   pin during the scan can only see post-retirement state. Every area
//!   stamped at or before the snapshot is therefore unreachable and is
//!   munmapped (by dropping it, which also releases its VMA-budget
//!   charge).
//!
//! The scan tolerates short reader overlap by bounded spinning per stripe;
//! if a stripe never quiesces the tick gives up and retries on the next
//! maintenance poll. Reclamation can only be *delayed* by readers, never
//! unsound: an area is dropped strictly after every reader that could hold
//! its base has unpinned.
//!
//! The protocol's interleavings — and the necessity of each of its memory
//! orderings — are proved exhaustively by the loomish model tests in
//! `tests/loom_retire.rs` (see `CONCURRENCY.md`). The retirement machinery
//! is generic ([`RetireCore<T>`]) so those tests can retire an observable
//! stand-in resource instead of a real mapping.

use crate::sync::{fence, AtomicU64, AtomicUsize, Mutex, Ordering};
use crate::varea::VirtArea;

/// Number of reader stripes. Threads hash onto stripes; collisions only
/// cost sharing of a cache line, never correctness (stripes are counters).
///
/// Shrunk under the loomish feature so exhaustive model exploration stays
/// tractable (the reclaim scan visits every stripe).
#[cfg(not(feature = "loomish"))]
const STRIPES: usize = 32;
#[cfg(feature = "loomish")]
const STRIPES: usize = 2;

/// Bounded spins per stripe while waiting for in-flight readers (which
/// hold pins for nanoseconds) to drain during a reclaim scan.
#[cfg(not(feature = "loomish"))]
const SCAN_SPINS: usize = 1_000;
#[cfg(feature = "loomish")]
const SCAN_SPINS: usize = 2;

#[repr(align(128))]
#[derive(Default)]
struct Stripe(AtomicUsize);

fn stripe_index() -> usize {
    // Under an active model run, stripe assignment must be a pure function
    // of the (deterministic) model thread id — the process-global counter
    // below would hand different stripes to the same logical thread across
    // replayed executions and break DFS replay.
    #[cfg(feature = "loomish")]
    if let Some(tid) = loomish::thread::model_thread_id() {
        return tid % STRIPES;
    }
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    IDX.with(|i| *i % STRIPES)
}

/// Proof of an in-flight shortcut read. While any pin taken before a
/// reclaim scan is alive, no retired area is unmapped. Dropping the pin
/// releases the reader's stripe.
pub struct ReaderPin<'a> {
    stripe: &'a AtomicUsize,
}

impl Drop for ReaderPin<'_> {
    fn drop(&mut self) {
        // Release: every load the reader performed through the ticket base
        // happens-before a reclaimer that observes this stripe at zero.
        self.stripe.fetch_sub(1, Ordering::Release);
    }
}

/// Resource managed by a [`RetireCore`]: reclaimed by dropping, with a
/// VMA-footprint estimate for the budget accounting.
pub trait Reclaimable {
    fn vma_estimate(&self) -> usize;
}

impl Reclaimable for VirtArea {
    fn vma_estimate(&self) -> usize {
        VirtArea::vma_estimate(self)
    }
}

struct Retired<T> {
    epoch: u64,
    area: T,
}

/// The pool's retirement machinery: reader stripes, the retirement epoch,
/// and the list of retired (still mapped) resources. See module docs.
///
/// Generic over the retired resource so the loomish model tests can retire
/// a drop-observable stand-in; production code uses the [`RetireList`]
/// alias over [`VirtArea`].
pub struct RetireCore<T> {
    stripes: [Stripe; STRIPES],
    epoch: AtomicU64,
    retired: Mutex<Vec<Retired<T>>>,
    areas_retired: AtomicU64,
    areas_reclaimed: AtomicU64,
    vmas_reclaimed: AtomicU64,
}

/// Retirement list for real virtual areas (the production instantiation).
pub type RetireList = RetireCore<VirtArea>;

impl<T> std::fmt::Debug for RetireCore<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetireList")
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .field("retired", &self.retired.lock().unwrap().len())
            .field("reclaimed", &self.areas_reclaimed.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T: Reclaimable> Default for RetireCore<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Reclaimable> RetireCore<T> {
    /// Fresh list: epoch 0, nothing retired.
    pub fn new() -> Self {
        RetireCore {
            stripes: Default::default(),
            epoch: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
            areas_retired: AtomicU64::new(0),
            areas_reclaimed: AtomicU64::new(0),
            vmas_reclaimed: AtomicU64::new(0),
        }
    }

    /// Enter a shortcut read. Must be taken **before** loading the
    /// published base pointer and held across every dereference of it;
    /// dropping the pin marks the read drained.
    ///
    /// The SeqCst increment forms the reader half of a Dekker pattern with
    /// the fence in [`RetireCore::quiescent_epoch`]: either the scan
    /// observes this pin (and defers reclamation), or this reader's
    /// subsequent loads observe every store made before the scan —
    /// including the publication that unlinked any area the scan went on
    /// to reclaim, so the reader cannot obtain its base. We rely on the
    /// RCsc lowering of a SeqCst RMW (x86: `lock`-prefixed full barrier;
    /// ARMv8: LDAR/STLR, which later acquire loads cannot bypass) to order
    /// the increment before the ticket's base load without a separate
    /// `mfence` — the fence would roughly double the cost of the hot read
    /// path.
    #[inline]
    pub fn pin(&self) -> ReaderPin<'_> {
        let stripe = &self.stripes[stripe_index()].0;
        stripe.fetch_add(1, Ordering::SeqCst);
        ReaderPin { stripe }
    }

    /// Hand a superseded area to the list. The caller must have unpublished
    /// it first (no new reader can obtain its base). Returns the retirement
    /// epoch stamped onto the area.
    pub fn retire(&self, area: T) -> u64 {
        let epoch = self.advance_epoch();
        self.areas_retired.fetch_add(1, Ordering::Relaxed);
        self.retired.lock().unwrap().push(Retired { epoch, area });
        epoch
    }

    /// Advance the retirement epoch and return the new value, without
    /// retiring an area. Used by [`crate::PagePool::retire_page`], which
    /// stamps relocated *bucket pages* with the same epoch stream so that
    /// a page is only returned to the allocator once every reader pin
    /// taken before its retirement has drained.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Run one reader-quiescence scan: snapshot the epoch, then observe
    /// every reader stripe at zero (each at its own moment, with bounded
    /// spinning). On success, everything retired at or before the returned
    /// epoch is unreachable; `None` means a reader kept a stripe busy —
    /// retry on the next tick.
    pub fn quiescent_epoch(&self) -> Option<u64> {
        // Everything retired up to here is reclaimable *if* the scan below
        // completes: those retirements were unpublished before this load.
        let safe_epoch = self.epoch.load(Ordering::SeqCst);
        // Reclaimer half of the Dekker pattern with the SeqCst increment
        // in `pin` (see there): order the epoch snapshot and everything
        // before it (retirement, unpublication) ahead of the stripe scan.
        fence(Ordering::SeqCst);
        self.scan_stripes()?;
        Some(safe_epoch)
    }

    fn scan_stripes(&self) -> Option<()> {
        for stripe in &self.stripes {
            let mut spins = 0;
            // Acquire: observing zero synchronizes with the Release
            // decrement of every drained reader, ordering their loads
            // before the munmap / page reuse.
            while stripe.0.load(Ordering::Acquire) != 0 {
                spins += 1;
                if spins > SCAN_SPINS {
                    return None; // readers still in flight; retry later
                }
                std::hint::spin_loop();
            }
        }
        Some(())
    }

    /// Attempt to reclaim every area whose retirement epoch is covered by a
    /// full reader-quiescence scan. Returns the number of areas unmapped
    /// (0 when readers kept a stripe busy — retry on the next tick).
    pub fn try_reclaim(&self) -> usize {
        self.reclaim_up_to(|list| list.quiescent_epoch())
    }

    fn reclaim_up_to(&self, quiesce: impl FnOnce(&Self) -> Option<u64>) -> usize {
        if self.retired_count() == 0 {
            return 0;
        }
        let Some(safe_epoch) = quiesce(self) else {
            return 0;
        };
        let drained: Vec<Retired<T>> = {
            let mut list = self.retired.lock().unwrap();
            let mut keep = Vec::new();
            let mut gone = Vec::new();
            for r in list.drain(..) {
                if r.epoch <= safe_epoch {
                    gone.push(r);
                } else {
                    keep.push(r);
                }
            }
            *list = keep;
            gone
        };
        let n = drained.len();
        for r in &drained {
            self.vmas_reclaimed
                .fetch_add(r.area.vma_estimate() as u64, Ordering::Relaxed);
        }
        self.areas_reclaimed.fetch_add(n as u64, Ordering::Relaxed);
        drop(drained); // munmap + budget release via VirtArea::drop
        n
    }

    /// Retired areas still mapped.
    pub fn retired_count(&self) -> usize {
        self.retired.lock().unwrap().len()
    }

    /// Estimated VMAs currently held by retired (not yet reclaimed) areas.
    /// Together with [`crate::VmaBudget::in_use`] this yields the
    /// live-vs-retired split surfaced in [`crate::VmaSnapshot`].
    pub fn retired_vmas(&self) -> usize {
        self.retired
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.area.vma_estimate())
            .sum()
    }

    /// `(areas_retired, areas_reclaimed, vmas_reclaimed)` lifetime totals.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.areas_retired.load(Ordering::Relaxed),
            self.areas_reclaimed.load(Ordering::Relaxed),
            self.vmas_reclaimed.load(Ordering::Relaxed),
        )
    }
}

/// Deliberately-broken protocol variants, compiled only for the model
/// tests: each drops exactly one link of the happens-before chain that the
/// loomish suite must prove load-bearing. Never call these outside
/// `tests/loom_retire.rs` — they exist so the checker's teeth are
/// themselves under test (a model that passes the real protocol but fails
/// to flag these would be vacuous).
#[cfg(feature = "loomish")]
impl<T: Reclaimable> RetireCore<T> {
    /// Seeded bug: the pin increment relaxed from SeqCst. The reclaim
    /// scan's fence can no longer pair with it — the scan may miss a live
    /// pin *and* the reader may miss the unpublication.
    pub fn pin_seeded_relaxed(&self) -> ReaderPin<'_> {
        let stripe = &self.stripes[stripe_index()].0;
        stripe.fetch_add(1, Ordering::Relaxed);
        ReaderPin { stripe }
    }

    /// Seeded bug: `quiescent_epoch` without the SeqCst fence between the
    /// epoch snapshot and the stripe scan.
    pub fn try_reclaim_seeded_unfenced(&self) -> usize {
        self.reclaim_up_to(|list| {
            let safe_epoch = list.epoch.load(Ordering::SeqCst);
            // fence(Ordering::SeqCst) dropped — the scan below is free to
            // read stale stripe values even though a pin is live.
            list.scan_stripes()?;
            Some(safe_epoch)
        })
    }

    /// Seeded bug: epoch snapshot reordered *after* the stripe scan. A
    /// retirement that lands between the scan and the snapshot gets
    /// covered by the returned epoch without its readers being verified.
    pub fn try_reclaim_seeded_scan_first(&self) -> usize {
        self.reclaim_up_to(|list| {
            list.scan_stripes()?;
            fence(Ordering::SeqCst);
            Some(list.epoch.load(Ordering::SeqCst))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area(pages: usize) -> VirtArea {
        VirtArea::reserve(pages).unwrap()
    }

    #[test]
    fn unpinned_retirements_reclaim_immediately() {
        let list = RetireList::new();
        list.retire(area(4));
        list.retire(area(2));
        assert_eq!(list.retired_count(), 2);
        assert_eq!(list.try_reclaim(), 2);
        assert_eq!(list.retired_count(), 0);
        let (retired, reclaimed, vmas) = list.counters();
        assert_eq!((retired, reclaimed), (2, 2));
        assert_eq!(vmas, 2); // two fully-anonymous areas: one VMA each
    }

    #[test]
    fn pin_blocks_reclaim_until_dropped() {
        let list = RetireList::new();
        let pin = list.pin();
        list.retire(area(1));
        assert_eq!(list.try_reclaim(), 0, "must not unmap under a pin");
        assert_eq!(list.retired_count(), 1);
        drop(pin);
        assert_eq!(list.try_reclaim(), 1);
    }

    #[test]
    fn post_scan_retirements_wait_for_next_epoch() {
        let list = RetireList::new();
        list.retire(area(1));
        let e2 = list.retire(area(1));
        assert_eq!(e2, 2);
        assert_eq!(list.try_reclaim(), 2);
        // A fresh retirement needs a fresh scan.
        list.retire(area(1));
        assert_eq!(list.retired_count(), 1);
        assert_eq!(list.try_reclaim(), 1);
    }

    #[test]
    fn pins_from_many_threads_drain() {
        let list = std::sync::Arc::new(RetireList::new());
        list.retire(area(1));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let l = std::sync::Arc::clone(&list);
                s.spawn(move || {
                    for _ in 0..1_000 {
                        let _p = l.pin();
                    }
                });
            }
        });
        assert_eq!(list.try_reclaim(), 1);
    }
}
