//! Epoch-based retirement of virtual areas.
//!
//! When a shortcut directory is rebuilt, the superseded [`VirtArea`] cannot
//! be unmapped immediately: a seqlock reader that obtained its ticket just
//! before the rebuild may still be dereferencing the old base (it will
//! discard the value at validation, but the *load* must not fault). The
//! seed kept every retired area mapped forever, so VMA use grew with each
//! doubling until `vm.max_map_count` tripped. This module bounds that:
//!
//! * Readers wrap each shortcut access in a [`ReaderPin`] (a striped
//!   counter increment — nanoseconds, no locks, no contention between
//!   threads on different stripes).
//! * The writer hands superseded areas to [`RetireList::retire`], which
//!   stamps them with a monotonically increasing **epoch**. Retirement must
//!   happen only after the area is unpublished (no *new* reader can reach
//!   it), which the seqlock's version check guarantees.
//! * [`RetireCore::try_reclaim`] snapshots the epoch, then observes every
//!   reader stripe at zero (each at its own moment). Any reader that
//!   pinned before the scan has, by then, dropped its pin; readers that
//!   pin during the scan can only see post-retirement state. Every area
//!   stamped at or before the snapshot is therefore unreachable and is
//!   munmapped (by dropping it, which also releases its VMA-budget
//!   charge).
//!
//! The scan tolerates short reader overlap by bounded spinning per stripe;
//! if a stripe never quiesces the tick gives up and retries on the next
//! maintenance poll. Reclamation can only be *delayed* by readers, never
//! unsound: an area is dropped strictly after every reader that could hold
//! its base has unpinned.
//!
//! Two pin/scan pairings exist, selected per list by [`PinStrategy`]:
//! the PR 3 **Dekker** pairing (reader: SeqCst RMW; reclaimer: SeqCst
//! fence), and the **asymmetric** pairing in which exclusive-slot readers
//! pin with plain load/store only and the reclaimer issues an expedited
//! `membarrier(2)` — a full barrier executed inside every running thread —
//! before its scan. `membarrier` support is probed and registered once at
//! pool init; anything short of full support degrades to Dekker, so the
//! fallback path is byte-for-byte the protocol PR 3 proved.
//!
//! The protocol's interleavings — and the necessity of each of its memory
//! orderings — are proved exhaustively by the loomish model tests in
//! `tests/loom_retire.rs` and `tests/loom_asym_pin.rs` (see
//! `CONCURRENCY.md`). The retirement machinery is generic
//! ([`RetireCore<T>`]) so those tests can retire an observable stand-in
//! resource instead of a real mapping.

use crate::sync::{fence, AtomicU64, AtomicUsize, Mutex, Ordering};
use crate::varea::VirtArea;

/// Number of *exclusive* reader slots. The first `STRIPES` threads to pin
/// each own one slot outright, which is what makes the asymmetric
/// plain-store pin sound (no other thread ever writes the slot). Threads
/// beyond that share the overflow stripes below through SeqCst RMWs.
///
/// Shrunk under the loomish feature so exhaustive model exploration stays
/// tractable (the reclaim scan visits every stripe).
#[cfg(not(feature = "loomish"))]
const STRIPES: usize = 32;
#[cfg(feature = "loomish")]
const STRIPES: usize = 2;

/// Shared overflow stripes for threads past the exclusive slots. Access is
/// always a SeqCst RMW (the PR 3 Dekker pairing) — collisions on a shared
/// counter must not lose updates, so the plain-store fast path is reserved
/// for exclusive slots.
#[cfg(not(feature = "loomish"))]
const OVERFLOW_STRIPES: usize = 8;
#[cfg(feature = "loomish")]
const OVERFLOW_STRIPES: usize = 1;

/// Bounded spins per stripe while waiting for in-flight readers (which
/// hold pins for nanoseconds) to drain during a reclaim scan.
#[cfg(not(feature = "loomish"))]
const SCAN_SPINS: usize = 1_000;
#[cfg(feature = "loomish")]
const SCAN_SPINS: usize = 2;

#[repr(align(128))]
#[derive(Default)]
struct Stripe(AtomicUsize);

/// How reader pins pair with the reclaim scan. Fixed per [`RetireCore`] at
/// construction; surfaced through the facade's `StatsSnapshot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinStrategy {
    /// Asymmetric pins: readers on exclusive slots write their pin with
    /// plain/Release stores only (no RMW, no fence — load/store-only hot
    /// path), and the reclaimer issues
    /// `membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED)` before its stripe
    /// scan to execute the heavy half of the barrier on every running
    /// thread at once. Requires a successful
    /// `MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED` (performed by
    /// [`PinStrategy::detect`] at pool init).
    Asymmetric,
    /// The PR 3 pairing: every pin is a SeqCst `fetch_add` Dekker-paired
    /// with the reclaimer's SeqCst fence. The compile/runtime fallback
    /// when `membarrier` is unavailable (non-Linux, ENOSYS, seccomp).
    Dekker,
}

impl PinStrategy {
    /// Probe and register `membarrier(2)` once per process; pools built
    /// without an explicit override call this at init. Returns
    /// [`PinStrategy::Asymmetric`] iff the kernel advertises
    /// `MEMBARRIER_CMD_PRIVATE_EXPEDITED` and accepts the registration —
    /// anything else (ENOSYS on old kernels, EPERM under strict seccomp,
    /// non-Linux targets) degrades to [`PinStrategy::Dekker`], which is
    /// exactly the PR 3 protocol.
    pub fn detect() -> PinStrategy {
        static DETECTED: std::sync::OnceLock<PinStrategy> = std::sync::OnceLock::new();
        *DETECTED.get_or_init(|| {
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            {
                // SAFETY: membarrier takes no pointers; query and register
                // are side-effect-free beyond flagging this mm as
                // expedited-registered.
                let q = unsafe {
                    libc::syscall(libc::SYS_membarrier, libc::MEMBARRIER_CMD_QUERY, 0, 0)
                };
                let expedited = libc::MEMBARRIER_CMD_PRIVATE_EXPEDITED as libc::c_long;
                if q >= 0 && (q & expedited) != 0 {
                    // SAFETY: as above; registration arms the expedited
                    // command for every current and future thread.
                    let reg = unsafe {
                        libc::syscall(
                            libc::SYS_membarrier,
                            libc::MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED,
                            0,
                            0,
                        )
                    };
                    if reg == 0 {
                        return PinStrategy::Asymmetric;
                    }
                }
            }
            PinStrategy::Dekker
        })
    }
}

impl std::fmt::Display for PinStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PinStrategy::Asymmetric => "asymmetric",
            PinStrategy::Dekker => "dekker",
        })
    }
}

/// Issue the process-wide expedited barrier that pairs with asymmetric
/// pins. Returns `false` if the syscall failed — impossible after a
/// successful registration per the kernel contract, but the caller aborts
/// the scan rather than read the stripes unpaired if it ever happens.
fn expedited_barrier() -> bool {
    // Under an active model run the barrier is the loomish fence-injection
    // op (every model thread gets a SeqCst fence at its current program
    // point — see `loomish::sync::membarrier`).
    #[cfg(feature = "loomish")]
    if loomish::thread::model_thread_id().is_some() {
        loomish::sync::membarrier();
        return true;
    }
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    {
        // SAFETY: membarrier takes no pointers; the expedited command only
        // IPIs the process's own running threads.
        let r = unsafe {
            libc::syscall(
                libc::SYS_membarrier,
                libc::MEMBARRIER_CMD_PRIVATE_EXPEDITED,
                0,
                0,
            )
        };
        r == 0
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// A thread's stripe assignment: the first [`STRIPES`] threads own an
/// exclusive slot (asym-eligible), later threads share the overflow
/// stripes (always RMW).
#[derive(Clone, Copy)]
enum SlotClaim {
    Exclusive(usize),
    Shared(usize),
}

impl SlotClaim {
    fn index(self) -> usize {
        match self {
            SlotClaim::Exclusive(i) | SlotClaim::Shared(i) => i,
        }
    }
}

fn slot_claim() -> SlotClaim {
    // Under an active model run, slot assignment must be a pure function
    // of the (deterministic) model thread id — the process-global counter
    // below would hand different slots to the same logical thread across
    // replayed executions and break DFS replay.
    #[cfg(feature = "loomish")]
    if let Some(tid) = loomish::thread::model_thread_id() {
        return if tid < STRIPES {
            SlotClaim::Exclusive(tid)
        } else {
            SlotClaim::Shared(STRIPES + tid % OVERFLOW_STRIPES)
        };
    }
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    IDX.with(|&i| {
        if i < STRIPES {
            SlotClaim::Exclusive(i)
        } else {
            SlotClaim::Shared(STRIPES + i % OVERFLOW_STRIPES)
        }
    })
}

/// Proof of an in-flight shortcut read. While any pin taken before a
/// reclaim scan is alive, no retired area is unmapped. Dropping the pin
/// releases the reader's stripe.
pub struct ReaderPin<'a> {
    stripe: &'a AtomicUsize,
    /// Taken through the asymmetric plain-store path (exclusive slot,
    /// [`PinStrategy::Asymmetric`]); the unpin must mirror it.
    asym: bool,
}

impl Drop for ReaderPin<'_> {
    fn drop(&mut self) {
        if self.asym {
            // Exclusive slot: this thread is the only writer, so the plain
            // load cannot race. Release on the store: every load the
            // reader performed through the ticket base happens-before a
            // reclaimer whose (membarrier-paired) scan observes the zero.
            self.stripe
                .store(self.stripe.load(Ordering::Relaxed) - 1, Ordering::Release);
        } else {
            // Release: every load the reader performed through the ticket
            // base happens-before a reclaimer that observes this stripe at
            // zero.
            self.stripe.fetch_sub(1, Ordering::Release);
        }
    }
}

/// Resource managed by a [`RetireCore`]: reclaimed by dropping, with a
/// VMA-footprint estimate for the budget accounting.
pub trait Reclaimable {
    fn vma_estimate(&self) -> usize;
}

impl Reclaimable for VirtArea {
    fn vma_estimate(&self) -> usize {
        VirtArea::vma_estimate(self)
    }
}

struct Retired<T> {
    epoch: u64,
    area: T,
}

/// The pool's retirement machinery: reader stripes, the retirement epoch,
/// and the list of retired (still mapped) resources. See module docs.
///
/// Generic over the retired resource so the loomish model tests can retire
/// a drop-observable stand-in; production code uses the [`RetireList`]
/// alias over [`VirtArea`].
pub struct RetireCore<T> {
    strategy: PinStrategy,
    stripes: [Stripe; STRIPES + OVERFLOW_STRIPES],
    epoch: AtomicU64,
    retired: Mutex<Vec<Retired<T>>>,
    areas_retired: AtomicU64,
    areas_reclaimed: AtomicU64,
    vmas_reclaimed: AtomicU64,
}

/// Retirement list for real virtual areas (the production instantiation).
pub type RetireList = RetireCore<VirtArea>;

impl<T> std::fmt::Debug for RetireCore<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetireList")
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .field("retired", &self.retired.lock().unwrap().len())
            .field("reclaimed", &self.areas_reclaimed.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T: Reclaimable> Default for RetireCore<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Reclaimable> RetireCore<T> {
    /// Fresh list: epoch 0, nothing retired. Probes the kernel once per
    /// process ([`PinStrategy::detect`]) and uses the asymmetric pin when
    /// `membarrier` registration succeeds.
    pub fn new() -> Self {
        Self::with_strategy(PinStrategy::detect())
    }

    /// Fresh list with an explicit pin strategy — `Dekker` forces the
    /// PR 3 fallback pairing even where `membarrier` is available (used by
    /// the fallback-matrix tests), and the model suites pass an explicit
    /// strategy so each proof is deterministic about what it proves.
    pub fn with_strategy(strategy: PinStrategy) -> Self {
        if strategy == PinStrategy::Asymmetric {
            // The expedited command EPERMs unless the process registered;
            // run the (cached) probe for its registration side effect. On
            // a host where it fails, the strategy stays safe: every
            // reclaim tick aborts before its scan (reclamation disabled,
            // never unsoundness). Skipped in the model, where the barrier
            // is the loomish op and needs no registration.
            #[cfg(feature = "loomish")]
            let in_model = loomish::thread::model_thread_id().is_some();
            #[cfg(not(feature = "loomish"))]
            let in_model = false;
            if !in_model {
                let _ = PinStrategy::detect();
            }
        }
        RetireCore {
            strategy,
            stripes: std::array::from_fn(|_| Stripe::default()),
            epoch: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
            areas_retired: AtomicU64::new(0),
            areas_reclaimed: AtomicU64::new(0),
            vmas_reclaimed: AtomicU64::new(0),
        }
    }

    /// The pin/scan pairing this list was built with.
    pub fn pin_strategy(&self) -> PinStrategy {
        self.strategy
    }

    /// Enter a shortcut read. Must be taken **before** loading the
    /// published base pointer and held across every dereference of it;
    /// dropping the pin marks the read drained.
    ///
    /// Under [`PinStrategy::Dekker`] (and on the shared overflow stripes
    /// under either strategy) the SeqCst increment forms the reader half
    /// of a Dekker pattern with the fence in
    /// [`RetireCore::quiescent_epoch`]: either the scan observes this pin
    /// (and defers reclamation), or this reader's subsequent loads observe
    /// every store made before the scan — including the publication that
    /// unlinked any area the scan went on to reclaim, so the reader cannot
    /// obtain its base. We rely on the RCsc lowering of a SeqCst RMW (x86:
    /// `lock`-prefixed full barrier; ARMv8: LDAR/STLR, which later acquire
    /// loads cannot bypass) to order the increment before the ticket's
    /// base load without a separate `mfence`.
    ///
    /// Under [`PinStrategy::Asymmetric`] on an exclusive slot, the pin is
    /// a plain load + plain store + compiler fence: zero atomic-RMW and
    /// zero CPU barriers on the hot path. The pairing obligation moves
    /// wholesale to the reclaimer, whose expedited `membarrier` executes a
    /// full barrier *inside every running thread* between the pin store
    /// and any later load the reader performs — restoring exactly the
    /// either/or of the Dekker argument (see CONCURRENCY.md, "Asymmetric
    /// reader pins"). The compiler fence only forbids the *compiler* from
    /// sinking the pin store below the ticket's base load; the CPU side is
    /// the membarrier's job.
    #[inline]
    pub fn pin(&self) -> ReaderPin<'_> {
        let claim = slot_claim();
        if self.strategy == PinStrategy::Asymmetric {
            if let SlotClaim::Exclusive(i) = claim {
                let stripe = &self.stripes[i].0;
                // Exclusive slot: this thread is the only writer, so the
                // plain load+store increment cannot lose updates.
                stripe.store(stripe.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
                std::sync::atomic::compiler_fence(Ordering::SeqCst);
                return ReaderPin { stripe, asym: true };
            }
        }
        let stripe = &self.stripes[claim.index()].0;
        stripe.fetch_add(1, Ordering::SeqCst);
        ReaderPin {
            stripe,
            asym: false,
        }
    }

    /// Hand a superseded area to the list. The caller must have unpublished
    /// it first (no new reader can obtain its base). Returns the retirement
    /// epoch stamped onto the area.
    pub fn retire(&self, area: T) -> u64 {
        let epoch = self.advance_epoch();
        self.areas_retired.fetch_add(1, Ordering::Relaxed);
        self.retired.lock().unwrap().push(Retired { epoch, area });
        epoch
    }

    /// Advance the retirement epoch and return the new value, without
    /// retiring an area. Used by [`crate::PagePool::retire_page`], which
    /// stamps relocated *bucket pages* with the same epoch stream so that
    /// a page is only returned to the allocator once every reader pin
    /// taken before its retirement has drained.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Run one reader-quiescence scan: snapshot the epoch, then observe
    /// every reader stripe at zero (each at its own moment, with bounded
    /// spinning). On success, everything retired at or before the returned
    /// epoch is unreachable; `None` means a reader kept a stripe busy —
    /// retry on the next tick.
    pub fn quiescent_epoch(&self) -> Option<u64> {
        // Everything retired up to here is reclaimable *if* the scan below
        // completes: those retirements were unpublished before this load.
        let safe_epoch = self.epoch.load(Ordering::SeqCst);
        // Reclaimer half of the Dekker pattern with the SeqCst increment
        // in `pin` (see there): order the epoch snapshot and everything
        // before it (retirement, unpublication) ahead of the stripe scan.
        // Kept unconditionally — overflow-stripe pins (and the Dekker
        // fallback) always take the RMW path and pair with this fence.
        fence(Ordering::SeqCst);
        // Asymmetric half: run a full barrier inside every running thread
        // of the process, so each exclusive-slot reader sits strictly
        // before it (pin store globally visible to the scan below) or
        // strictly after it (its base load sees the unpublication that
        // preceded the epoch snapshot). Registration succeeded at init, so
        // failure is unexpected; skip this reclaim tick if it happens.
        if self.strategy == PinStrategy::Asymmetric && !expedited_barrier() {
            return None;
        }
        self.scan_stripes()?;
        Some(safe_epoch)
    }

    fn scan_stripes(&self) -> Option<()> {
        for stripe in &self.stripes {
            let mut spins = 0;
            // Acquire: observing zero synchronizes with the Release
            // decrement of every drained reader, ordering their loads
            // before the munmap / page reuse.
            while stripe.0.load(Ordering::Acquire) != 0 {
                spins += 1;
                if spins > SCAN_SPINS {
                    return None; // readers still in flight; retry later
                }
                std::hint::spin_loop();
            }
        }
        Some(())
    }

    /// Attempt to reclaim every area whose retirement epoch is covered by a
    /// full reader-quiescence scan. Returns the number of areas unmapped
    /// (0 when readers kept a stripe busy — retry on the next tick).
    pub fn try_reclaim(&self) -> usize {
        self.reclaim_up_to(|list| list.quiescent_epoch())
    }

    fn reclaim_up_to(&self, quiesce: impl FnOnce(&Self) -> Option<u64>) -> usize {
        if self.retired_count() == 0 {
            return 0;
        }
        let Some(safe_epoch) = quiesce(self) else {
            return 0;
        };
        let drained: Vec<Retired<T>> = {
            let mut list = self.retired.lock().unwrap();
            let mut keep = Vec::new();
            let mut gone = Vec::new();
            for r in list.drain(..) {
                if r.epoch <= safe_epoch {
                    gone.push(r);
                } else {
                    keep.push(r);
                }
            }
            *list = keep;
            gone
        };
        let n = drained.len();
        for r in &drained {
            self.vmas_reclaimed
                .fetch_add(r.area.vma_estimate() as u64, Ordering::Relaxed);
        }
        self.areas_reclaimed.fetch_add(n as u64, Ordering::Relaxed);
        drop(drained); // munmap + budget release via VirtArea::drop
        n
    }

    /// Retired areas still mapped.
    pub fn retired_count(&self) -> usize {
        self.retired.lock().unwrap().len()
    }

    /// Estimated VMAs currently held by retired (not yet reclaimed) areas.
    /// Together with [`crate::VmaBudget::in_use`] this yields the
    /// live-vs-retired split surfaced in [`crate::VmaSnapshot`].
    pub fn retired_vmas(&self) -> usize {
        self.retired
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.area.vma_estimate())
            .sum()
    }

    /// `(areas_retired, areas_reclaimed, vmas_reclaimed)` lifetime totals.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.areas_retired.load(Ordering::Relaxed),
            self.areas_reclaimed.load(Ordering::Relaxed),
            self.vmas_reclaimed.load(Ordering::Relaxed),
        )
    }
}

/// Deliberately-broken protocol variants, compiled only for the model
/// tests: each drops exactly one link of the happens-before chain that the
/// loomish suite must prove load-bearing. Never call these outside
/// `tests/loom_retire.rs` — they exist so the checker's teeth are
/// themselves under test (a model that passes the real protocol but fails
/// to flag these would be vacuous).
#[cfg(feature = "loomish")]
impl<T: Reclaimable> RetireCore<T> {
    /// Seeded bug: the pin increment relaxed from SeqCst. The reclaim
    /// scan's fence can no longer pair with it — the scan may miss a live
    /// pin *and* the reader may miss the unpublication.
    pub fn pin_seeded_relaxed(&self) -> ReaderPin<'_> {
        let stripe = &self.stripes[slot_claim().index()].0;
        stripe.fetch_add(1, Ordering::Relaxed);
        ReaderPin {
            stripe,
            asym: false,
        }
    }

    /// Seeded bug: `quiescent_epoch` without the SeqCst fence between the
    /// epoch snapshot and the stripe scan.
    pub fn try_reclaim_seeded_unfenced(&self) -> usize {
        self.reclaim_up_to(|list| {
            let safe_epoch = list.epoch.load(Ordering::SeqCst);
            // fence(Ordering::SeqCst) dropped — the scan below is free to
            // read stale stripe values even though a pin is live.
            list.scan_stripes()?;
            Some(safe_epoch)
        })
    }

    /// Seeded bug: epoch snapshot reordered *after* the stripe scan. A
    /// retirement that lands between the scan and the snapshot gets
    /// covered by the returned epoch without its readers being verified.
    pub fn try_reclaim_seeded_scan_first(&self) -> usize {
        self.reclaim_up_to(|list| {
            list.scan_stripes()?;
            fence(Ordering::SeqCst);
            Some(list.epoch.load(Ordering::SeqCst))
        })
    }

    /// Seeded bug for the asymmetric strategy: the reclaimer keeps its own
    /// SeqCst fence but drops the expedited membarrier. A reclaimer-local
    /// fence cannot pair with a reader's plain pin store — the store may
    /// never have entered the globally-agreed order the scan reads from,
    /// so the scan can observe a stale zero while the pin is live.
    pub fn try_reclaim_seeded_no_membarrier(&self) -> usize {
        self.reclaim_up_to(|list| {
            let safe_epoch = list.epoch.load(Ordering::SeqCst);
            fence(Ordering::SeqCst);
            // expedited_barrier() dropped — nothing forces the asymmetric
            // readers' pin stores into view before the scan.
            list.scan_stripes()?;
            Some(safe_epoch)
        })
    }

    /// Seeded bug for the asymmetric strategy: the membarrier issued only
    /// *after* the stripe scan. The scan reads unpaired (same failure as
    /// the no-membarrier seed); barriering afterwards is too late to
    /// un-miss a live pin.
    pub fn try_reclaim_seeded_barrier_after_scan(&self) -> usize {
        self.reclaim_up_to(|list| {
            let safe_epoch = list.epoch.load(Ordering::SeqCst);
            fence(Ordering::SeqCst);
            list.scan_stripes()?;
            expedited_barrier();
            Some(safe_epoch)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area(pages: usize) -> VirtArea {
        VirtArea::reserve(pages).unwrap()
    }

    #[test]
    fn unpinned_retirements_reclaim_immediately() {
        let list = RetireList::new();
        list.retire(area(4));
        list.retire(area(2));
        assert_eq!(list.retired_count(), 2);
        assert_eq!(list.try_reclaim(), 2);
        assert_eq!(list.retired_count(), 0);
        let (retired, reclaimed, vmas) = list.counters();
        assert_eq!((retired, reclaimed), (2, 2));
        assert_eq!(vmas, 2); // two fully-anonymous areas: one VMA each
    }

    #[test]
    fn pin_blocks_reclaim_until_dropped() {
        let list = RetireList::new();
        let pin = list.pin();
        list.retire(area(1));
        assert_eq!(list.try_reclaim(), 0, "must not unmap under a pin");
        assert_eq!(list.retired_count(), 1);
        drop(pin);
        assert_eq!(list.try_reclaim(), 1);
    }

    #[test]
    fn post_scan_retirements_wait_for_next_epoch() {
        let list = RetireList::new();
        list.retire(area(1));
        let e2 = list.retire(area(1));
        assert_eq!(e2, 2);
        assert_eq!(list.try_reclaim(), 2);
        // A fresh retirement needs a fresh scan.
        list.retire(area(1));
        assert_eq!(list.retired_count(), 1);
        assert_eq!(list.try_reclaim(), 1);
    }

    #[test]
    fn forced_dekker_lifecycle_matches_default() {
        // The fallback strategy must behave identically through the public
        // API: pin blocks, drop drains, counters advance.
        let list = RetireCore::<VirtArea>::with_strategy(PinStrategy::Dekker);
        assert_eq!(list.pin_strategy(), PinStrategy::Dekker);
        let pin = list.pin();
        list.retire(area(1));
        assert_eq!(list.try_reclaim(), 0, "must not unmap under a pin");
        drop(pin);
        assert_eq!(list.try_reclaim(), 1);
        assert_eq!(list.counters(), (1, 1, 1));
    }

    #[test]
    fn detect_is_stable_and_asym_works_where_advertised() {
        let s = PinStrategy::detect();
        assert_eq!(s, PinStrategy::detect(), "detection must be cached");
        // Whatever the host offers, the auto-constructed list must honour
        // the pin/scan contract.
        let list = RetireList::new();
        assert_eq!(list.pin_strategy(), s);
        let pin = list.pin();
        list.retire(area(1));
        assert_eq!(list.try_reclaim(), 0, "must not unmap under a pin");
        drop(pin);
        assert_eq!(list.try_reclaim(), 1);
    }

    #[test]
    fn pins_from_many_threads_drain() {
        let list = std::sync::Arc::new(RetireList::new());
        list.retire(area(1));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let l = std::sync::Arc::clone(&list);
                s.spawn(move || {
                    for _ in 0..1_000 {
                        let _p = l.pin();
                    }
                });
            }
        });
        assert_eq!(list.try_reclaim(), 1);
    }
}
