//! Virtual memory areas and the rewiring operation itself (paper §2.1).
//!
//! A [`VirtArea`] is the *shortcut inner node's* memory: a consecutive
//! virtual area of `k` pages reserved with `mmap(MAP_PRIVATE | MAP_ANON)`.
//! Each page (= slot) can then be **rewired** to a physical pool page with
//! `mmap(MAP_SHARED | MAP_FIXED, fd, offset)`, replacing the page-table
//! entry for that single virtual page. Reads/writes through the page then
//! go straight to the leaf's physical memory — one hardware-resolved
//! indirection instead of three.

use crate::budget::BudgetBinding;
use crate::error::{Error, Result};
use crate::page::{page_size, PageIdx};
use crate::pool::PoolHandle;
use crate::slot::SlotLayout;
use std::sync::atomic::{AtomicU64, Ordering};

/// Reserve `len` bytes of anonymous memory whose base is aligned to
/// `align` (a power of two, at least the system page size): over-reserve
/// by `align`, then trim the unaligned head and the surplus tail. Needed
/// because hugetlb `MAP_FIXED` rewires demand slot-aligned target
/// addresses, which a plain `mmap(NULL, …)` reservation does not provide.
pub(crate) fn reserve_aligned(len: usize, align: usize, prot: libc::c_int) -> Result<*mut u8> {
    debug_assert!(align.is_power_of_two() && align >= page_size());
    let flags = libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE;
    let total = if align > page_size() {
        len + align
    } else {
        len
    };
    // SAFETY: fresh anonymous reservation, kernel-chosen address.
    let p = unsafe { libc::mmap(std::ptr::null_mut(), total, prot, flags, -1, 0) };
    if p == libc::MAP_FAILED {
        return Err(Error::os("mmap"));
    }
    if total == len {
        return Ok(p as *mut u8);
    }
    let addr = p as usize;
    let aligned = addr.next_multiple_of(align);
    let head = aligned - addr;
    let tail = total - head - len;
    // SAFETY: trimming sub-ranges of the reservation we just obtained.
    unsafe {
        if head > 0 {
            libc::munmap(p, head);
        }
        if tail > 0 {
            libc::munmap((aligned + len) as *mut libc::c_void, tail);
        }
    }
    Ok(aligned as *mut u8)
}

/// Current mapping of one page of a [`VirtArea`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// Reserved but not rewired: backed by (lazily allocated) anonymous
    /// memory. Reading yields zeros; this is the `null`-pointer analogue.
    Anon,
    /// Rewired to the pool page with this index.
    Pool(PageIdx),
}

/// Whether the kernel merges the VMAs of two *adjacent* pages: anonymous
/// neighbors merge, and pool-backed neighbors merge exactly when their file
/// offsets are consecutive. Two neighbors aliasing the *same* pool page
/// (extendible hashing's fan-in > 1) never merge — each costs its own VMA.
#[inline]
fn mergeable(a: Mapping, b: Mapping) -> bool {
    match (a, b) {
        (Mapping::Anon, Mapping::Anon) => true,
        (Mapping::Pool(p), Mapping::Pool(q)) => q.0 == p.0 + 1,
        _ => false,
    }
}

/// Estimate the VMAs a `pages`-page area will occupy after applying
/// `assignments` (sorted by virtual page, duplicate-free) to a fresh
/// reservation: one VMA per maximal mergeable run, counting the anonymous
/// gaps. This is the exact initial footprint a directory rebuild charges
/// the budget (it equals [`VirtArea::vma_estimate`] right after
/// `rewire_batch`); note that admission control reserves the **worst
/// case** — one VMA per page — instead, because later per-slot remappings
/// can fragment merged runs up to that bound. Size private budgets from
/// `pages`, not from this estimate.
pub fn planned_vmas(pages: usize, assignments: &[(usize, PageIdx)]) -> usize {
    let mut vmas = 0usize;
    let mut prev: Option<(usize, PageIdx)> = None;
    for &(v, p) in assignments {
        match prev {
            None => {
                if v > 0 {
                    vmas += 1; // leading anonymous run
                }
                vmas += 1;
            }
            Some((pv, pp)) => {
                if v == pv + 1 {
                    if p.0 != pp.0 + 1 {
                        vmas += 1; // adjacent but not offset-consecutive
                    }
                } else {
                    vmas += 2; // anonymous gap + new run
                }
            }
        }
        prev = Some((v, p));
    }
    match prev {
        None => 1, // untouched reservation: one anonymous VMA
        Some((pv, _)) => {
            if pv + 1 < pages {
                vmas += 1; // trailing anonymous run
            }
            vmas
        }
    }
}

/// A consecutive virtual memory area whose pages can be individually
/// rewired to pool pages. See module docs.
///
/// With a non-default [`SlotLayout`], each "page" of the area is one slot
/// of `2^k` base pages: the reservation spans `pages × slot_bytes`, and a
/// rewiring moves a whole slot with one `mmap`. All indices stay
/// slot-denominated, so the VMA estimate and [`planned_vmas`] are
/// layout-independent.
pub struct VirtArea {
    base: *mut u8,
    pages: usize,
    /// The slot layout the area was reserved with — must match the pool
    /// it is rewired against.
    layout: SlotLayout,
    /// Shadow of the kernel's view of each page, used for introspection,
    /// tests, and coalescing decisions.
    map: Vec<Mapping>,
    mmap_calls: AtomicU64,
    populate_default: bool,
    /// Estimated VMAs this area occupies (maximal mergeable runs of `map`),
    /// maintained incrementally on every remapping.
    vmas: usize,
    /// Budget (plus optional per-pool attribution) the estimate is
    /// charged against, if attached.
    budget: Option<BudgetBinding>,
}

impl std::fmt::Debug for VirtArea {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtArea")
            .field("base", &self.base)
            .field("pages", &self.pages)
            .finish()
    }
}

impl VirtArea {
    /// Reserve a consecutive virtual area of `pages` 4 KB pages (step (1)
    /// of the paper's construction). This is a mere reservation: no
    /// physical memory is committed and the page table is untouched.
    pub fn reserve(pages: usize) -> Result<Self> {
        Self::reserve_layout(pages, SlotLayout::base())
    }

    /// Reserve an area that eagerly populates page-table entries on every
    /// subsequent rewiring (the paper's `MAP_POPULATE` variant).
    pub fn reserve_populated(pages: usize) -> Result<Self> {
        let mut a = Self::reserve(pages)?;
        a.populate_default = true;
        Ok(a)
    }

    /// Reserve `slots` slots of `layout.slot_bytes()` each. The base is
    /// aligned to the slot size so hugetlb-backed pools can `MAP_FIXED`
    /// into the area.
    pub fn reserve_layout(slots: usize, layout: SlotLayout) -> Result<Self> {
        if slots == 0 {
            return Err(Error::invalid("cannot reserve an empty area"));
        }
        let base = reserve_aligned(
            slots * layout.slot_bytes(),
            layout.slot_bytes().max(page_size()),
            libc::PROT_READ | libc::PROT_WRITE,
        )?;
        Ok(VirtArea {
            base,
            pages: slots,
            layout,
            map: vec![Mapping::Anon; slots],
            mmap_calls: AtomicU64::new(1),
            populate_default: false,
            vmas: 1,
            budget: None,
        })
    }

    /// [`VirtArea::reserve_layout`] with eager page-table population on
    /// every subsequent rewiring.
    pub fn reserve_layout_populated(slots: usize, layout: SlotLayout) -> Result<Self> {
        let mut a = Self::reserve_layout(slots, layout)?;
        a.populate_default = true;
        Ok(a)
    }

    /// The slot layout the area was reserved with.
    #[inline]
    pub fn layout(&self) -> SlotLayout {
        self.layout
    }

    /// Bytes per slot of the area.
    #[inline]
    pub fn slot_bytes(&self) -> usize {
        self.layout.slot_bytes()
    }

    /// Charge this area's VMA estimate against `binding` (a budget plus
    /// optional per-pool attribution), now and on every future remapping,
    /// until the area is dropped (which releases the charge). Replaces
    /// any previously attached binding.
    pub fn attach_budget(&mut self, binding: BudgetBinding) {
        if let Some(old) = self.budget.take() {
            old.release(self.vmas);
        }
        binding.charge(self.vmas);
        self.budget = Some(binding);
    }

    /// Like [`VirtArea::attach_budget`], but without charging now: the
    /// caller has already accounted this area's current estimate against
    /// the binding's budget (e.g. by settling a worst-case
    /// [`crate::BudgetReservation`] down to [`VirtArea::vma_estimate`]).
    /// Future remapping deltas and the final release on drop are tracked
    /// as usual. The binding's pool attribution must match the settled
    /// reservation's, or the eventual release will be misattributed.
    pub fn attach_budget_prepaid(&mut self, binding: BudgetBinding) {
        if let Some(old) = self.budget.take() {
            old.release(self.vmas);
        }
        self.budget = Some(binding);
    }

    /// Estimated VMAs this area currently occupies: one per maximal run of
    /// pages the kernel can keep in a single VMA (see [`planned_vmas`]).
    #[inline]
    pub fn vma_estimate(&self) -> usize {
        self.vmas
    }

    /// Count the mergeable boundaries in `[lo, hi)` (boundary `b` sits
    /// between pages `b` and `b + 1`).
    fn boundary_joins(&self, lo: usize, hi: usize) -> usize {
        (lo..hi)
            .filter(|&b| mergeable(self.map[b], self.map[b + 1]))
            .count()
    }

    /// Re-derive the VMA estimate after pages `[vpage, vpage + n)` changed,
    /// given the mergeable-boundary count of that window from before the
    /// change. Only boundaries touching the window can have flipped.
    fn apply_vma_delta(&mut self, joins_before: usize, lo: usize, hi: usize) {
        let joins_after = self.boundary_joins(lo, hi);
        let new_vmas = self.vmas + joins_before - joins_after;
        match new_vmas.cmp(&self.vmas) {
            std::cmp::Ordering::Greater => {
                if let Some(b) = &self.budget {
                    b.charge(new_vmas - self.vmas);
                }
            }
            std::cmp::Ordering::Less => {
                if let Some(b) = &self.budget {
                    b.release(self.vmas - new_vmas);
                }
            }
            std::cmp::Ordering::Equal => {}
        }
        self.vmas = new_vmas;
    }

    /// Number of pages (slots) in the area.
    #[inline]
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Base address of the area.
    #[inline]
    pub fn base(&self) -> *mut u8 {
        self.base
    }

    /// Pointer to the start of page `i`.
    #[inline]
    pub fn page_ptr(&self, i: usize) -> *mut u8 {
        assert!(i < self.pages, "page {i} out of range ({})", self.pages);
        // SAFETY: in-bounds offset within the reservation.
        unsafe { self.base.add(i * self.layout.slot_bytes()) }
    }

    /// The current mapping of page `i` (shadow state).
    #[inline]
    pub fn mapping(&self, i: usize) -> Mapping {
        self.map[i]
    }

    /// Number of `mmap` calls this area has issued so far (reservation,
    /// rewirings, resets). The paper's §3.1 "beware" is about exactly this
    /// number, so it is tracked per area.
    pub fn mmap_calls(&self) -> u64 {
        self.mmap_calls.load(Ordering::Relaxed)
    }

    /// Rewire page `vpage` to pool page `ppage` (step (2) of the paper's
    /// construction): replaces the existing mapping via
    /// `mmap(MAP_SHARED | MAP_FIXED)`. With `populate`, the new page-table
    /// entry is installed eagerly instead of on first access.
    pub fn rewire(&mut self, vpage: usize, pool: &PoolHandle, ppage: PageIdx) -> Result<()> {
        self.rewire_run(vpage, pool, ppage, 1)
    }

    /// Rewire `n` consecutive virtual pages `[vpage, vpage+n)` to `n`
    /// consecutive pool pages `[ppage, ppage+n)` with a **single** `mmap`
    /// call (the paper's coalescing optimization for neighboring slots that
    /// map to neighboring physical pages).
    pub fn rewire_run(
        &mut self,
        vpage: usize,
        pool: &PoolHandle,
        ppage: PageIdx,
        n: usize,
    ) -> Result<()> {
        if n == 0 {
            return Err(Error::invalid("rewire_run of zero pages"));
        }
        if vpage + n > self.pages {
            return Err(Error::invalid(format!(
                "rewire range {vpage}..{} exceeds area of {} pages",
                vpage + n,
                self.pages
            )));
        }
        if pool.layout() != self.layout {
            return Err(Error::invalid(format!(
                "slot layout mismatch: area has {}, pool has {}",
                self.layout,
                pool.layout()
            )));
        }
        let slot_bytes = self.layout.slot_bytes();
        let byte_off = self.layout.byte_offset(ppage.0);
        if byte_off + n * slot_bytes > pool.file_len() {
            return Err(Error::invalid(format!(
                "pool range {ppage}+{n} beyond end of pool file"
            )));
        }
        let mut flags = libc::MAP_SHARED | libc::MAP_FIXED;
        if self.populate_default {
            flags |= libc::MAP_POPULATE;
        }
        // SAFETY: target range is inside our reservation; the pool range is
        // inside the file (checked above); MAP_FIXED replaces our own pages.
        let rc = unsafe {
            libc::mmap(
                self.page_ptr(vpage) as *mut libc::c_void,
                n * slot_bytes,
                libc::PROT_READ | libc::PROT_WRITE,
                flags,
                pool.fd(),
                byte_off as libc::off_t,
            )
        };
        if rc == libc::MAP_FAILED {
            return Err(Error::os("mmap"));
        }
        self.mmap_calls.fetch_add(1, Ordering::Relaxed);
        pool.stats().count_mmap(1);
        pool.stats().count_rewired(n as u64);
        if self.populate_default {
            pool.stats().count_populated(n as u64);
        }
        let (lo, hi) = (
            vpage.saturating_sub(1),
            (vpage + n).min(self.pages.saturating_sub(1)),
        );
        let joins_before = self.boundary_joins(lo, hi);
        for i in 0..n {
            self.map[vpage + i] = Mapping::Pool(PageIdx(ppage.0 + i));
        }
        self.apply_vma_delta(joins_before, lo, hi);
        Ok(())
    }

    /// Apply a batch of `(virtual page, pool page)` assignments, coalescing
    /// maximal runs where both sides are consecutive into single `mmap`
    /// calls. Returns the number of `mmap` calls issued (ablation A1).
    ///
    /// Coalescing follows the kernel's VMA-merge rule (anonymous neighbors
    /// merge; pool neighbors merge iff their file offsets are consecutive),
    /// so it applies inside aliased fan-in > 1 assignments too: wherever two
    /// adjacent slots map *contiguous* pool pages — including the boundary
    /// between two aliased groups over neighboring buckets — they collapse
    /// into one `mmap` call and one VMA. Each maximal run found here is
    /// exactly one VMA afterwards, so the number of calls equals
    /// [`planned_vmas`] minus the anonymous runs.
    ///
    /// Assignments must be sorted by virtual page and free of duplicates;
    /// this is the natural order in which an index emits directory updates.
    pub fn rewire_batch(
        &mut self,
        pool: &PoolHandle,
        assignments: &[(usize, PageIdx)],
    ) -> Result<u64> {
        let mut calls = 0u64;
        let mut i = 0;
        while i < assignments.len() {
            let (v0, p0) = assignments[i];
            let mut run = 1;
            while i + run < assignments.len() {
                let (v, p) = assignments[i + run];
                let (pv, pp) = assignments[i + run - 1];
                if v == pv + 1 && mergeable(Mapping::Pool(pp), Mapping::Pool(p)) {
                    run += 1;
                } else {
                    break;
                }
            }
            self.rewire_run(v0, pool, p0, run)?;
            calls += 1;
            i += run;
        }
        Ok(calls)
    }

    /// Reset page `vpage` back to the reserved (anonymous) state — the
    /// analogue of storing a `null` pointer in a traditional slot.
    pub fn reset(&mut self, vpage: usize) -> Result<()> {
        if vpage >= self.pages {
            return Err(Error::invalid("reset page out of range"));
        }
        // SAFETY: replacing a page inside our reservation with anon memory.
        let rc = unsafe {
            libc::mmap(
                self.page_ptr(vpage) as *mut libc::c_void,
                self.layout.slot_bytes(),
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_FIXED | libc::MAP_NORESERVE,
                -1,
                0,
            )
        };
        if rc == libc::MAP_FAILED {
            return Err(Error::os("mmap"));
        }
        self.mmap_calls.fetch_add(1, Ordering::Relaxed);
        let (lo, hi) = (
            vpage.saturating_sub(1),
            (vpage + 1).min(self.pages.saturating_sub(1)),
        );
        let joins_before = self.boundary_joins(lo, hi);
        self.map[vpage] = Mapping::Anon;
        self.apply_vma_delta(joins_before, lo, hi);
        Ok(())
    }

    /// Touch every rewired page (one read per page) to force page-table
    /// population, as the paper does between phases (3) and (4) of Table 1.
    /// Returns the number of pages touched.
    pub fn populate_by_touch(&self) -> usize {
        let mut touched = 0;
        for (i, m) in self.map.iter().enumerate() {
            if matches!(m, Mapping::Pool(_)) {
                // SAFETY: in-bounds read of a mapped page. Volatile so the
                // read is not optimized away.
                unsafe {
                    std::ptr::read_volatile(self.page_ptr(i));
                }
                touched += 1;
            }
        }
        touched
    }
}

/// Rewire a single page at an arbitrary virtual address to `byte_offset` of
/// the file behind `fd`, bypassing [`VirtArea`] bookkeeping.
///
/// This exists for experiments that remap pages of a shared region from a
/// *different thread* than the region's owner (the paper's TLB-shootdown
/// experiment, §3.3), where `&mut VirtArea` is unavailable by design.
///
/// # Safety
///
/// `addr` must be page aligned and inside a mapping the caller owns;
/// `byte_offset` must be page aligned and within the file; concurrent
/// readers of the page must tolerate either the old or the new contents.
pub unsafe fn rewire_page_raw(
    addr: *mut u8,
    fd: std::os::unix::io::RawFd,
    byte_offset: usize,
    populate: bool,
) -> Result<()> {
    let mut flags = libc::MAP_SHARED | libc::MAP_FIXED;
    if populate {
        flags |= libc::MAP_POPULATE;
    }
    // SAFETY: caller guarantees (see fn docs) that `addr` is a page-aligned
    // address inside a mapping it owns and `byte_offset` is page aligned
    // and within the file, so MAP_FIXED replaces only the caller's page.
    let rc = unsafe {
        libc::mmap(
            addr as *mut libc::c_void,
            page_size(),
            libc::PROT_READ | libc::PROT_WRITE,
            flags,
            fd,
            byte_offset as libc::off_t,
        )
    };
    if rc == libc::MAP_FAILED {
        return Err(Error::os("mmap"));
    }
    Ok(())
}

impl Drop for VirtArea {
    fn drop(&mut self) {
        if let Some(b) = self.budget.take() {
            b.release(self.vmas);
        }
        // SAFETY: unmapping our own reservation exactly once; rewired pages
        // merely drop their reference to the pool file's pages.
        unsafe {
            libc::munmap(
                self.base as *mut libc::c_void,
                self.pages * self.layout.slot_bytes(),
            );
        }
    }
}

// SAFETY: the area owns its mapping exclusively; sending it to another
// thread transfers that ownership.
unsafe impl Send for VirtArea {}
// SAFETY: all remapping takes `&mut self`; the `&self` surface (page_ptr,
// mapping, populate_by_touch, mmap_calls) reads plain fields, an atomic,
// or mapped memory. Shared references therefore permit only reads.
unsafe impl Sync for VirtArea {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PagePool, PoolConfig};

    fn pool() -> PagePool {
        PagePool::new(PoolConfig {
            initial_pages: 8,
            min_growth_pages: 8,
            view_capacity_pages: 1024,
            ..PoolConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn reserve_reads_zero() {
        let a = VirtArea::reserve(4).unwrap();
        for i in 0..4 {
            assert_eq!(a.mapping(i), Mapping::Anon);
            // SAFETY: page_ptr stays inside the reserved area (slots wired by the
            // rewire calls in this test); the area and pool view outlive the access.
            unsafe {
                assert_eq!(*a.page_ptr(i), 0);
            }
        }
    }

    #[test]
    fn rewire_aliases_pool_page() {
        let mut p = pool();
        let h = p.handle();
        let leaf = p.alloc_page().unwrap();
        // SAFETY: page_ptr stays inside the reserved area (slots wired by the
        // rewire calls in this test); the area and pool view outlive the access.
        unsafe {
            *(p.page_ptr(leaf) as *mut u64) = 0xfeed;
        }
        let mut a = VirtArea::reserve(4).unwrap();
        a.rewire(2, &h, leaf).unwrap();
        assert_eq!(a.mapping(2), Mapping::Pool(leaf));
        // SAFETY: page_ptr stays inside the reserved area (slots wired by the
        // rewire calls in this test); the area and pool view outlive the access.
        unsafe {
            // Read through the shortcut sees the leaf's data…
            assert_eq!(*(a.page_ptr(2) as *const u64), 0xfeed);
            // …and writes through the shortcut are visible in the pool view.
            *(a.page_ptr(2) as *mut u64) = 0xbeef;
            assert_eq!(*(p.page_ptr(leaf) as *const u64), 0xbeef);
        }
    }

    #[test]
    fn two_slots_can_share_one_leaf() {
        // The extendible-hashing fan-in situation: multiple directory slots
        // reference the same bucket.
        let mut p = pool();
        let h = p.handle();
        let leaf = p.alloc_page().unwrap();
        let mut a = VirtArea::reserve(2).unwrap();
        a.rewire(0, &h, leaf).unwrap();
        a.rewire(1, &h, leaf).unwrap();
        // SAFETY: page_ptr stays inside the reserved area (slots wired by the
        // rewire calls in this test); the area and pool view outlive the access.
        unsafe {
            *(a.page_ptr(0) as *mut u64) = 7;
            assert_eq!(*(a.page_ptr(1) as *const u64), 7);
        }
    }

    #[test]
    fn rewire_replaces_previous_mapping() {
        let mut p = pool();
        let h = p.handle();
        let l1 = p.alloc_page().unwrap();
        let l2 = p.alloc_page().unwrap();
        // SAFETY: page_ptr stays inside the reserved area (slots wired by the
        // rewire calls in this test); the area and pool view outlive the access.
        unsafe {
            *(p.page_ptr(l1) as *mut u64) = 1;
            *(p.page_ptr(l2) as *mut u64) = 2;
        }
        let mut a = VirtArea::reserve(1).unwrap();
        a.rewire(0, &h, l1).unwrap();
        // SAFETY: page_ptr stays inside the reserved area (slots wired by the
        // rewire calls in this test); the area and pool view outlive the access.
        unsafe {
            assert_eq!(*(a.page_ptr(0) as *const u64), 1);
        }
        a.rewire(0, &h, l2).unwrap();
        // SAFETY: page_ptr stays inside the reserved area (slots wired by the
        // rewire calls in this test); the area and pool view outlive the access.
        unsafe {
            assert_eq!(*(a.page_ptr(0) as *const u64), 2);
        }
        // The old leaf is untouched by the remap.
        // SAFETY: page_ptr stays inside the reserved area (slots wired by the
        // rewire calls in this test); the area and pool view outlive the access.
        unsafe {
            assert_eq!(*(p.page_ptr(l1) as *const u64), 1);
        }
    }

    #[test]
    fn reset_returns_to_anon() {
        let mut p = pool();
        let h = p.handle();
        let leaf = p.alloc_page().unwrap();
        // SAFETY: page_ptr stays inside the reserved area (slots wired by the
        // rewire calls in this test); the area and pool view outlive the access.
        unsafe {
            *(p.page_ptr(leaf) as *mut u64) = 99;
        }
        let mut a = VirtArea::reserve(1).unwrap();
        a.rewire(0, &h, leaf).unwrap();
        a.reset(0).unwrap();
        assert_eq!(a.mapping(0), Mapping::Anon);
        // SAFETY: page_ptr stays inside the reserved area (slots wired by the
        // rewire calls in this test); the area and pool view outlive the access.
        unsafe {
            assert_eq!(*(a.page_ptr(0) as *const u64), 0);
            // Leaf data survives.
            assert_eq!(*(p.page_ptr(leaf) as *const u64), 99);
        }
    }

    #[test]
    fn rewire_run_maps_contiguously() {
        let mut p = pool();
        let h = p.handle();
        let start = p.alloc_run(4).unwrap();
        // SAFETY: page_ptr stays inside the reserved area (slots wired by the
        // rewire calls in this test); the area and pool view outlive the access.
        unsafe {
            for i in 0..4 {
                *(p.page_ptr(PageIdx(start.0 + i)) as *mut u64) = 100 + i as u64;
            }
        }
        let mut a = VirtArea::reserve(4).unwrap();
        let calls_before = a.mmap_calls();
        a.rewire_run(0, &h, start, 4).unwrap();
        assert_eq!(a.mmap_calls() - calls_before, 1);
        // SAFETY: page_ptr stays inside the reserved area (slots wired by the
        // rewire calls in this test); the area and pool view outlive the access.
        unsafe {
            for i in 0..4 {
                assert_eq!(*(a.page_ptr(i) as *const u64), 100 + i as u64);
            }
        }
    }

    #[test]
    fn rewire_batch_coalesces_runs() {
        let mut p = pool();
        let h = p.handle();
        let run = p.alloc_run(4).unwrap(); // contiguous p0..p3
        let lone = p.alloc_page().unwrap();
        let mut a = VirtArea::reserve(8).unwrap();
        // slots 0..4 -> contiguous run; slot 6 -> lone page.
        let assignments = [
            (0, run),
            (1, PageIdx(run.0 + 1)),
            (2, PageIdx(run.0 + 2)),
            (3, PageIdx(run.0 + 3)),
            (6, lone),
        ];
        let calls = a.rewire_batch(&h, &assignments).unwrap();
        assert_eq!(calls, 2);
        assert_eq!(a.mapping(3), Mapping::Pool(PageIdx(run.0 + 3)));
        assert_eq!(a.mapping(6), Mapping::Pool(lone));
        assert_eq!(a.mapping(5), Mapping::Anon);
    }

    #[test]
    fn rewire_out_of_range_rejected() {
        let mut p = pool();
        let h = p.handle();
        let leaf = p.alloc_page().unwrap();
        let mut a = VirtArea::reserve(2).unwrap();
        assert!(a.rewire(2, &h, leaf).is_err());
        assert!(a.rewire_run(1, &h, leaf, 2).is_err());
    }

    #[test]
    fn rewire_beyond_pool_rejected() {
        let p = pool();
        let h = p.handle();
        let mut a = VirtArea::reserve(1).unwrap();
        let beyond = PageIdx(p.file_pages() + 100);
        assert!(a.rewire(0, &h, beyond).is_err());
    }

    #[test]
    fn populated_reserve_counts_touches() {
        let mut p = pool();
        let h = p.handle();
        let l = p.alloc_page().unwrap();
        let mut a = VirtArea::reserve_populated(2).unwrap();
        a.rewire(0, &h, l).unwrap();
        assert_eq!(a.populate_by_touch(), 1);
    }

    #[test]
    fn empty_reserve_rejected() {
        assert!(VirtArea::reserve(0).is_err());
    }

    #[test]
    fn vma_estimate_tracks_remappings() {
        let mut p = pool();
        let h = p.handle();
        let run = p.alloc_run(4).unwrap();
        let mut a = VirtArea::reserve(8).unwrap();
        assert_eq!(a.vma_estimate(), 1); // one anonymous VMA

        a.rewire(3, &h, run).unwrap();
        assert_eq!(a.vma_estimate(), 3); // anon | pool | anon

        // Contiguous neighbor merges into the same VMA.
        a.rewire(4, &h, PageIdx(run.0 + 1)).unwrap();
        assert_eq!(a.vma_estimate(), 3);

        // Aliasing the same pool page next door cannot merge.
        a.rewire(5, &h, PageIdx(run.0 + 1)).unwrap();
        assert_eq!(a.vma_estimate(), 4);

        // Resetting back to anon re-merges with the anon tail.
        a.reset(5).unwrap();
        assert_eq!(a.vma_estimate(), 3);
        a.reset(3).unwrap();
        a.reset(4).unwrap();
        assert_eq!(a.vma_estimate(), 1);
    }

    #[test]
    fn fanin_batch_coalesces_bucket_boundaries() {
        // Fan-in 2 over 4 contiguous buckets: p0,p0,p1,p1,p2,p2,p3,p3.
        // Within a bucket the aliased pair cannot merge, but every bucket
        // boundary (slots 1-2, 3-4, 5-6) is offset-consecutive and must
        // collapse: slots - (buckets - 1) calls, not one per slot.
        let mut p = pool();
        let h = p.handle();
        let run = p.alloc_run(4).unwrap();
        let mut a = VirtArea::reserve(8).unwrap();
        let assignments: Vec<(usize, PageIdx)> =
            (0..8).map(|i| (i, PageIdx(run.0 + i / 2))).collect();
        let calls = a.rewire_batch(&h, &assignments).unwrap();
        assert_eq!(calls, 8 - (4 - 1));
        assert_eq!(a.vma_estimate(), 8 - (4 - 1));
        assert_eq!(planned_vmas(8, &assignments), 8 - (4 - 1));
        for (i, &(_, pg)) in assignments.iter().enumerate() {
            assert_eq!(a.mapping(i), Mapping::Pool(pg));
        }
    }

    #[test]
    fn planned_vmas_matches_estimate_for_patterns() {
        let mut p = pool();
        let h = p.handle();
        let run = p.alloc_run(6).unwrap();
        let patterns: Vec<Vec<(usize, PageIdx)>> = vec![
            vec![],                                                // untouched
            (0..6).map(|i| (i, PageIdx(run.0 + i))).collect(),     // identity
            (0..6).map(|i| (i, PageIdx(run.0 + i / 3))).collect(), // fan-in 3
            vec![(1, run), (2, PageIdx(run.0 + 1)), (5, run)],     // gaps
            (0..6).map(|i| (i, PageIdx(run.0 + 5 - i))).collect(), // reversed
        ];
        for pat in patterns {
            let mut a = VirtArea::reserve(6).unwrap();
            a.rewire_batch(&h, &pat).unwrap();
            assert_eq!(a.vma_estimate(), planned_vmas(6, &pat), "pattern {pat:?}");
        }
    }

    #[test]
    fn layout_area_rewires_whole_slots() {
        let layout = SlotLayout::new(2).unwrap(); // 16 KB slots
        let mut p = PagePool::new(PoolConfig {
            initial_pages: 8,
            min_growth_pages: 8,
            view_capacity_pages: 64,
            slot_layout: layout,
            ..PoolConfig::default()
        })
        .unwrap();
        let h = p.handle();
        let run = p.alloc_run(2).unwrap();
        let tail = layout.slot_bytes() - 8;
        // SAFETY: page_ptr stays inside the reserved area (slots wired by the
        // rewire calls in this test); the area and pool view outlive the access.
        unsafe {
            *(p.page_ptr(run) as *mut u64) = 1;
            *(p.page_ptr(run).add(tail) as *mut u64) = 2;
            *(p.page_ptr(PageIdx(run.0 + 1)) as *mut u64) = 3;
        }
        let mut a = VirtArea::reserve_layout(4, layout).unwrap();
        assert_eq!(a.slot_bytes(), layout.slot_bytes());
        assert_eq!(a.base() as usize % layout.slot_bytes(), 0, "aligned base");
        a.rewire_run(1, &h, run, 2).unwrap();
        // SAFETY: page_ptr stays inside the reserved area (slots wired by the
        // rewire calls in this test); the area and pool view outlive the access.
        unsafe {
            // Whole slots moved: both ends of slot 1, and slot 2's head.
            assert_eq!(*(a.page_ptr(1) as *const u64), 1);
            assert_eq!(*(a.page_ptr(1).add(tail) as *const u64), 2);
            assert_eq!(*(a.page_ptr(2) as *const u64), 3);
        }
        // The estimate counts slots, not base pages: anon | run | anon.
        assert_eq!(a.vma_estimate(), 3);

        // A layout-mismatched pool is rejected before any mmap.
        let base_pool = PagePool::new(PoolConfig {
            initial_pages: 2,
            view_capacity_pages: 16,
            ..PoolConfig::default()
        })
        .unwrap();
        assert!(a.rewire(0, &base_pool.handle(), PageIdx(0)).is_err());
    }

    #[test]
    fn budget_charges_follow_the_estimate() {
        use crate::budget::VmaBudget;
        let mut p = pool();
        let h = p.handle();
        let l0 = p.alloc_page().unwrap();
        let l1 = p.alloc_page().unwrap();
        let budget = VmaBudget::with_limit(1000);
        let mut a = VirtArea::reserve(4).unwrap();
        a.attach_budget(crate::budget::BudgetBinding::new(std::sync::Arc::clone(
            &budget,
        )));
        assert_eq!(budget.in_use(), 1);
        a.rewire(0, &h, l0).unwrap();
        a.rewire(2, &h, l1).unwrap();
        assert_eq!(budget.in_use(), a.vma_estimate());
        drop(a);
        assert_eq!(budget.in_use(), 0);
    }
}
