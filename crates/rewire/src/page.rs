//! Page-size constants and helpers.
//!
//! The paper works exclusively with 4 KB **base pages** (the leaf/bucket
//! size of all evaluated structures). We nonetheless query the real page
//! size at runtime and refuse to run on systems where it differs, rather
//! than silently corrupting offsets.
//!
//! These constants are the workspace's **canonical** definition of the
//! base-page geometry: every real-mapping layer (pool, areas, bucket
//! layouts) derives its byte arithmetic from them via
//! [`crate::SlotLayout`]. (`shortcut_vmsim` defines its own `PAGE_SIZE`
//! on purpose — it is a self-contained software model of a 4 KB-paged
//! machine and must stay independent of what the host mappings use.)

use std::sync::OnceLock;

/// The 4 KB small-page size the paper's structures are built around.
pub const PAGE_SIZE_4K: usize = 4096; // audit:allow(page-literal): the definition the rest of the tree must use

/// `log2(PAGE_SIZE_4K)`, handy for shifting byte offsets to page indices.
pub const PAGE_SHIFT_4K: u32 = 12;

/// Index of a physical **slot** inside a [`crate::PagePool`]'s main-memory
/// file.
///
/// The pool's allocation unit is the slot — `2^k` consecutive base pages
/// fixed by the pool's [`crate::SlotLayout`] (one page at the default
/// `k = 0`). `PageIdx(i)` denotes the slot at byte offset
/// `i << layout.slot_shift()`. It is the *handle to physical memory* the
/// paper's technique revolves around: a rewiring call maps a virtual slot
/// of a [`crate::VirtArea`] to the pool slot named by a `PageIdx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageIdx(pub usize);

impl PageIdx {
    /// Byte offset of this slot **at the default one-page-per-slot
    /// layout**. Pools with larger slots must use
    /// [`crate::SlotLayout::byte_offset`] instead.
    #[inline]
    pub fn byte_offset(self) -> usize {
        self.0 * page_size()
    }

    /// The slot immediately after this one.
    #[inline]
    pub fn next(self) -> PageIdx {
        PageIdx(self.0 + 1)
    }
}

impl std::fmt::Display for PageIdx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ppage{}", self.0)
    }
}

/// The system page size, queried once via `sysconf(_SC_PAGESIZE)`.
///
/// # Panics
///
/// Panics if the system page size is not 4 KB: every size computation in the
/// paper (bucket capacity, directory growth, TLB reach) assumes 4 KB pages,
/// and running with e.g. 16 KB pages would produce silently wrong results.
#[inline]
pub fn page_size() -> usize {
    static PAGE_SIZE: OnceLock<usize> = OnceLock::new();
    *PAGE_SIZE.get_or_init(|| {
        // SAFETY: sysconf is always safe to call.
        let sz = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
        assert!(sz > 0, "sysconf(_SC_PAGESIZE) failed");
        let sz = sz as usize;
        assert_eq!(
            sz, PAGE_SIZE_4K,
            "this reproduction requires 4 KB pages (got {sz})"
        );
        sz
    })
}

/// Convert a number of pages to bytes.
#[inline]
pub fn pages_to_bytes(pages: usize) -> usize {
    pages * page_size()
}

/// Whether `off` is a multiple of the page size.
#[inline]
pub fn is_page_aligned(off: usize) -> bool {
    off.is_multiple_of(page_size())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_4k() {
        assert_eq!(page_size(), PAGE_SIZE_4K);
    }

    #[test]
    fn page_idx_byte_offset() {
        assert_eq!(PageIdx(0).byte_offset(), 0);
        assert_eq!(PageIdx(3).byte_offset(), 3 * PAGE_SIZE_4K);
        assert_eq!(PageIdx(3).next(), PageIdx(4));
    }

    #[test]
    fn alignment_helpers() {
        assert!(is_page_aligned(0));
        assert!(is_page_aligned(8192));
        assert!(!is_page_aligned(1));
        assert!(!is_page_aligned(4095));
        assert_eq!(pages_to_bytes(3), 12288);
    }

    #[test]
    fn page_idx_display() {
        assert_eq!(PageIdx(2).to_string(), "ppage2");
    }
}
