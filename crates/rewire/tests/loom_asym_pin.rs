//! Exhaustive model check of the **asymmetric** pin/reclaim pairing
//! (`PinStrategy::Asymmetric`): readers pin exclusive slots with plain
//! load/store only, and the reclaimer issues an expedited `membarrier`
//! between its epoch snapshot and the stripe scan.
//!
//! Run with `cargo test -p shortcut-rewire --features loomish`.
//!
//! The scenario is the one `loom_retire.rs` proves for the Dekker pairing
//! (third-thread reclaimer + pre-retired older area — both load-bearing,
//! see there), re-run with the asymmetric strategy. What changes is *where
//! the ordering comes from*: the reader contributes no RMW and no fence,
//! so the entire either/or obligation rests on the reclaimer's membarrier,
//! modeled by `loomish::sync::membarrier` as a SeqCst fence injected into
//! every live model thread at its current program point (a faithful
//! rendering of `MEMBARRIER_CMD_PRIVATE_EXPEDITED`, whose IPIs execute a
//! full barrier inside each running thread at one linearization moment).
//!
//! Case split the positive proof rests on, for a reader whose pin store
//! sits before/after the barrier's linearization point M:
//!
//! * **pin store before M** — the fence injected into the reader thread
//!   publishes the store; the scan (after M on the reclaimer) is forced to
//!   observe the live pin and defers reclamation.
//! * **pin store after M** — the reclaimer reached M having already
//!   snapshotted the epoch; its own fence (first half of the membarrier
//!   op) published everything the snapshot implies — including the
//!   unpublication that preceded any covered retirement — to the global
//!   order, and the fence injected into the reader forces the reader's
//!   *later* publication-word load to see it. The reader cannot obtain
//!   the dying base, so missing its pin is harmless.
//!
//! The seeded variants each break one link and must be caught:
//!
//! * `no_membarrier`: reclaimer keeps only its local SeqCst fence. A local
//!   fence cannot pair with a plain store that never entered the global
//!   order — the scan may read a stale zero under a live pin.
//! * `barrier_after_scan`: the barrier runs too late to un-miss the pin.
//! * `pin_after_read` (scenario-level): the reader's base load hoisted
//!   above its pin store — the reorder the production `compiler_fence`
//!   exists to forbid. Caught even under the correct reclaimer.

#![cfg(feature = "loomish")]

use loomish::Builder;
use shortcut_rewire::sync::{thread, AtomicU64, Ordering};
use shortcut_rewire::{PinStrategy, Reclaimable, RetireCore};
use std::sync::atomic::{AtomicBool as StdAtomicBool, Ordering as StdOrd};
use std::sync::Arc;

/// Drop-observable stand-in for a mapped `VirtArea` (see `loom_retire.rs`:
/// the flag is ground truth outside the instrumented memory model).
struct TestArea {
    mapped: Arc<StdAtomicBool>,
}

impl Reclaimable for TestArea {
    fn vma_estimate(&self) -> usize {
        1
    }
}

impl Drop for TestArea {
    fn drop(&mut self) {
        self.mapped.store(false, StdOrd::SeqCst);
    }
}

#[derive(Clone, Copy)]
enum ReaderKind {
    /// pin, then load the publication word — the production order.
    Correct,
    /// Load the publication word *before* pinning: models the compiler or
    /// CPU sinking the plain pin store below the base load (no RMW/fence
    /// stops it anymore — only the `compiler_fence` in `pin` does).
    SeededPinAfterRead,
}

#[derive(Clone, Copy)]
enum ReclaimKind {
    Correct,
    SeededNoMembarrier,
    SeededBarrierAfterScan,
}

fn scenario(reader: ReaderKind, reclaim: ReclaimKind) -> impl Fn() + Send + Sync + 'static {
    move || {
        // Explicit strategy: this suite proves the asymmetric pairing.
        // (The model reader is tid 1 < STRIPES, so it owns an exclusive
        // slot and takes the plain-store pin path.)
        let core = Arc::new(RetireCore::<TestArea>::with_strategy(
            PinStrategy::Asymmetric,
        ));
        let mapped = Arc::new(StdAtomicBool::new(true));
        // 1 = the old area is published (a reader that loads 1 considers
        // itself entitled to dereference the old base).
        let published = Arc::new(AtomicU64::new(1));

        // Pre-retired older area: lets the reclaimer pass the empty-list
        // guard without synchronizing with the racing retirement.
        let old_mapped = Arc::new(StdAtomicBool::new(true));
        core.retire(TestArea {
            mapped: Arc::clone(&old_mapped),
        });

        let reader_t = {
            let core = Arc::clone(&core);
            let mapped = Arc::clone(&mapped);
            let published = Arc::clone(&published);
            thread::spawn(move || match reader {
                ReaderKind::Correct => {
                    let pin_guard = core.pin();
                    if published.load(Ordering::Acquire) == 1 {
                        thread::yield_now();
                        assert!(
                            mapped.load(StdOrd::SeqCst),
                            "area unmapped under a live pre-scan pin"
                        );
                    }
                    drop(pin_guard);
                }
                ReaderKind::SeededPinAfterRead => {
                    let saw = published.load(Ordering::Acquire);
                    let pin_guard = core.pin();
                    if saw == 1 {
                        thread::yield_now();
                        assert!(
                            mapped.load(StdOrd::SeqCst),
                            "area unmapped under a live pre-scan pin"
                        );
                    }
                    drop(pin_guard);
                }
            })
        };

        let writer = {
            let core = Arc::clone(&core);
            let mapped = Arc::clone(&mapped);
            let published = Arc::clone(&published);
            thread::spawn(move || {
                // Unpublish, then retire — the order the seqlock enforces.
                published.store(0, Ordering::Release);
                core.retire(TestArea {
                    mapped: Arc::clone(&mapped),
                });
            })
        };

        let reclaimer = {
            let core = Arc::clone(&core);
            thread::spawn(move || match reclaim {
                ReclaimKind::Correct => core.try_reclaim(),
                ReclaimKind::SeededNoMembarrier => core.try_reclaim_seeded_no_membarrier(),
                ReclaimKind::SeededBarrierAfterScan => core.try_reclaim_seeded_barrier_after_scan(),
            })
        };

        reader_t.join().unwrap();
        writer.join().unwrap();
        reclaimer.join().unwrap();

        // Quiesced world: nothing stays behind after a clean final scan.
        core.try_reclaim();
        assert_eq!(core.retired_count(), 0, "area leaked past a clean scan");
        assert!(!mapped.load(StdOrd::SeqCst));
        assert!(!old_mapped.load(StdOrd::SeqCst));
    }
}

fn builder() -> Builder {
    Builder::new()
        .ordering_sensitive(true)
        .preemption_bound(Some(3))
}

#[test]
fn asym_pin_reclaim_protocol_holds_exhaustively() {
    let report = builder()
        .check(scenario(ReaderKind::Correct, ReclaimKind::Correct))
        .unwrap_or_else(|cx| panic!("asym pin/reclaim counterexample: {cx}"));
    println!(
        "asym pin/reclaim: {} interleavings explored, invariant held",
        report.executions
    );
    assert!(
        report.executions > 1_000,
        "suspiciously small exploration: {}",
        report.executions
    );
}

/// Teeth check: a reclaimer-local fence is not a substitute for the
/// membarrier — the reader's plain pin store may never enter the global
/// order the scan reads from. Must be caught.
#[test]
fn seeded_no_membarrier_is_caught() {
    let err = builder()
        .check(scenario(
            ReaderKind::Correct,
            ReclaimKind::SeededNoMembarrier,
        ))
        .expect_err("membarrier-free reclaim not caught — the model checker has lost its teeth");
    assert!(
        err.message.contains("unmapped under a live pre-scan pin"),
        "unexpected counterexample: {err}"
    );
}

/// Teeth check: barriering *after* the stripe scan is too late — the scan
/// already read unpaired. Must be caught.
#[test]
fn seeded_barrier_after_scan_is_caught() {
    let err = builder()
        .check(scenario(
            ReaderKind::Correct,
            ReclaimKind::SeededBarrierAfterScan,
        ))
        .expect_err("late-barrier reclaim not caught — the model checker has lost its teeth");
    assert!(
        err.message.contains("unmapped under a live pre-scan pin"),
        "unexpected counterexample: {err}"
    );
}

/// Teeth check: hoisting the reader's base load above its pin store (the
/// reorder `pin`'s compiler fence forbids) breaks the protocol even with a
/// correct reclaimer — the whole reclaim tick can slot into the gap. This
/// one is algorithmic, so run it in cheap SC mode.
#[test]
fn seeded_pin_after_read_is_caught() {
    let err = Builder::new()
        .preemption_bound(Some(3))
        .check(scenario(
            ReaderKind::SeededPinAfterRead,
            ReclaimKind::Correct,
        ))
        .expect_err("pin-after-read reorder not caught — the model checker has lost its teeth");
    assert!(
        err.message.contains("unmapped under a live pre-scan pin"),
        "unexpected counterexample: {err}"
    );
}

/// The asymmetric protocol under plain sequentially-consistent-per-location
/// semantics: a cheaper pass checking the algorithmic order independently
/// of memory-ordering subtleties.
#[test]
fn asym_pin_reclaim_holds_under_sc_interleavings() {
    let report = Builder::new()
        .preemption_bound(Some(3))
        .check(scenario(ReaderKind::Correct, ReclaimKind::Correct))
        .unwrap_or_else(|cx| panic!("asym pin/reclaim SC counterexample: {cx}"));
    println!(
        "asym pin/reclaim (SC mode): {} interleavings",
        report.executions
    );
}
