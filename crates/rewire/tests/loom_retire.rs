//! Exhaustive model check of the pin/reclaim protocol (`RetireCore`).
//!
//! Run with `cargo test -p shortcut-rewire --features loomish`.
//!
//! The scenario mirrors production roles: a *writer* unpublishes the old
//! directory and retires its area, a *maintenance reclaimer* runs the
//! epoch-snapshot + stripe-scan in a different thread (as the pool's
//! maintenance tick does), and a *reader* pins, checks the publication
//! word and — if it saw the area published — dereferences it across a
//! scheduling point. The invariant: the stand-in area must never be
//! "unmapped" (dropped) while a reader that pinned before the scan still
//! holds a published base.
//!
//! Two scenario details are load-bearing for the fence to matter at all
//! (without them the seeded variants are *correct* and the teeth tests
//! would be vacuous — the checker itself confirmed this):
//!
//! 1. The reclaimer is a third thread. A writer that reclaims right after
//!    retiring is ordered by its own SeqCst epoch RMW; only the
//!    cross-thread reclaimer — which performs no SeqCst store of its own —
//!    needs the fence to pair with `pin`'s SeqCst increment.
//! 2. An *older* area is retired before the race starts. `try_reclaim`'s
//!    empty-list early-return takes the retired-list mutex, and if the
//!    racing retirement is the one that lets the guard pass, that mutex
//!    acquisition alone hands the reclaimer the writer's (and, via the
//!    SeqCst epoch RMW, the reader's) whole view. With a pre-existing
//!    retirement the guard passes early, and the racing area's epoch can
//!    land in the snapshot with no synchronization besides the fence.
//!
//! The seeded variants drop exactly one link each and must be caught:
//! see `RetireCore`'s `*_seeded_*` methods.

#![cfg(feature = "loomish")]

use loomish::Builder;
use shortcut_rewire::sync::{thread, AtomicU64, Ordering};
use shortcut_rewire::{PinStrategy, Reclaimable, RetireCore};
use std::sync::atomic::{AtomicBool as StdAtomicBool, Ordering as StdOrd};
use std::sync::Arc;

/// Drop-observable stand-in for a mapped `VirtArea`: the shared `mapped`
/// flag is the ground truth of the model's "page table" — flipped by Drop
/// ("munmap") and read directly (not through the instrumented memory
/// model: a real dereference faults on the real mapping state, not on a
/// stale view of it).
struct TestArea {
    mapped: Arc<StdAtomicBool>,
}

impl Reclaimable for TestArea {
    fn vma_estimate(&self) -> usize {
        1
    }
}

impl Drop for TestArea {
    fn drop(&mut self) {
        self.mapped.store(false, StdOrd::SeqCst);
    }
}

#[derive(Clone, Copy)]
enum PinKind {
    Correct,
    SeededRelaxed,
}

#[derive(Clone, Copy)]
enum ReclaimKind {
    Correct,
    SeededUnfenced,
    SeededScanFirst,
}

fn scenario(pin: PinKind, reclaim: ReclaimKind) -> impl Fn() + Send + Sync + 'static {
    move || {
        // Explicit Dekker: this suite proves the RMW-pin/fence pairing.
        // (`new()` would auto-detect and, on membarrier-capable hosts,
        // switch to the asymmetric pairing — proved separately, with its
        // own seeds, in `loom_asym_pin.rs` — and the membarrier would
        // even rescue the relaxed-pin seed below, making the teeth tests
        // vacuous.)
        let core = Arc::new(RetireCore::<TestArea>::with_strategy(PinStrategy::Dekker));
        let mapped = Arc::new(StdAtomicBool::new(true));
        // Publication word standing in for the seqlock'd directory state:
        // 1 = the old area is published (a reader that loads 1 considers
        // itself entitled to dereference the old base).
        let published = Arc::new(AtomicU64::new(1));

        // A long-unreachable area retired before the race begins (epoch 1):
        // it lets the reclaimer pass `try_reclaim`'s empty-list guard
        // without synchronizing with the racing retirement (see module
        // docs, point 2).
        let old_mapped = Arc::new(StdAtomicBool::new(true));
        core.retire(TestArea {
            mapped: Arc::clone(&old_mapped),
        });

        let reader = {
            let core = Arc::clone(&core);
            let mapped = Arc::clone(&mapped);
            let published = Arc::clone(&published);
            thread::spawn(move || {
                let pin_guard = match pin {
                    PinKind::Correct => core.pin(),
                    PinKind::SeededRelaxed => core.pin_seeded_relaxed(),
                };
                if published.load(Ordering::Acquire) == 1 {
                    // Dereference window: hold the published base across a
                    // scheduling point, then "load" through it.
                    thread::yield_now();
                    assert!(
                        mapped.load(StdOrd::SeqCst),
                        "area unmapped under a live pre-scan pin"
                    );
                }
                drop(pin_guard);
            })
        };

        let writer = {
            let core = Arc::clone(&core);
            let mapped = Arc::clone(&mapped);
            let published = Arc::clone(&published);
            thread::spawn(move || {
                // Unpublish, then retire — the order the seqlock enforces.
                published.store(0, Ordering::Release);
                core.retire(TestArea {
                    mapped: Arc::clone(&mapped),
                });
            })
        };

        let reclaimer = {
            let core = Arc::clone(&core);
            thread::spawn(move || match reclaim {
                ReclaimKind::Correct => core.try_reclaim(),
                ReclaimKind::SeededUnfenced => core.try_reclaim_seeded_unfenced(),
                ReclaimKind::SeededScanFirst => core.try_reclaim_seeded_scan_first(),
            })
        };

        reader.join().unwrap();
        writer.join().unwrap();
        reclaimer.join().unwrap();

        // Quiesced world: a final scan reclaims whatever the racing tick
        // legitimately deferred, and nothing stays behind.
        core.try_reclaim();
        assert_eq!(core.retired_count(), 0, "area leaked past a clean scan");
        assert!(!mapped.load(StdOrd::SeqCst));
        assert!(!old_mapped.load(StdOrd::SeqCst));
    }
}

fn builder() -> Builder {
    Builder::new()
        .ordering_sensitive(true)
        .preemption_bound(Some(3))
}

#[test]
fn pin_reclaim_protocol_holds_exhaustively() {
    let report = builder()
        .check(scenario(PinKind::Correct, ReclaimKind::Correct))
        .unwrap_or_else(|cx| panic!("pin/reclaim counterexample: {cx}"));
    println!(
        "pin/reclaim: {} interleavings explored, invariant held",
        report.executions
    );
    assert!(
        report.executions > 1_000,
        "suspiciously small exploration: {}",
        report.executions
    );
}

/// Teeth check: relaxing the pin increment (SeqCst → Relaxed) breaks the
/// Dekker pairing — the scan can miss a live pin while the reader misses
/// the unpublication — and the checker must produce a counterexample.
#[test]
fn seeded_relaxed_pin_is_caught() {
    let err = builder()
        .check(scenario(PinKind::SeededRelaxed, ReclaimKind::Correct))
        .expect_err("relaxed pin not caught — the model checker has lost its teeth");
    assert!(
        err.message.contains("unmapped under a live pre-scan pin"),
        "unexpected counterexample: {err}"
    );
}

/// Teeth check: dropping the SeqCst fence between the epoch snapshot and
/// the stripe scan lets the cross-thread reclaimer read stale zero
/// stripes. Must be caught.
#[test]
fn seeded_missing_fence_is_caught() {
    let err = builder()
        .check(scenario(PinKind::Correct, ReclaimKind::SeededUnfenced))
        .expect_err("missing fence not caught — the model checker has lost its teeth");
    assert!(
        err.message.contains("unmapped under a live pre-scan pin"),
        "unexpected counterexample: {err}"
    );
}

/// Teeth check: running the stripe scan *before* the epoch snapshot lets a
/// retirement that lands in between be covered by the returned epoch with
/// no reader verification. Must be caught.
#[test]
fn seeded_scan_before_snapshot_is_caught() {
    let err = builder()
        .check(scenario(PinKind::Correct, ReclaimKind::SeededScanFirst))
        .expect_err("scan-first reorder not caught — the model checker has lost its teeth");
    assert!(
        err.message.contains("unmapped under a live pre-scan pin"),
        "unexpected counterexample: {err}"
    );
}

/// The same protocol under plain sequentially-consistent-per-location
/// semantics (every interleaving, newest-value loads): a cheaper pass that
/// checks the *algorithmic* order (unpublish before retire, snapshot
/// before scan) independently of memory-ordering subtleties.
#[test]
fn pin_reclaim_holds_under_sc_interleavings() {
    let report = Builder::new()
        .preemption_bound(Some(3))
        .check(scenario(PinKind::Correct, ReclaimKind::Correct))
        .unwrap_or_else(|cx| panic!("pin/reclaim SC counterexample: {cx}"));
    println!("pin/reclaim (SC mode): {} interleavings", report.executions);
}
