//! Property tests: the rewiring substrate against pure-Rust shadow models.
//!
//! Two invariant families are exercised:
//!
//! 1. **Pool allocator**: arbitrary alloc/free sequences never hand out the
//!    same page twice, never lose pages, and keep the file exactly as large
//!    as needed (modulo growth slack / shrink threshold).
//! 2. **Rewiring**: a `VirtArea` whose pages are rewired according to an
//!    arbitrary script always reads back exactly what a `HashMap`-based
//!    shadow model predicts, including under remapping, resets, and
//!    fan-in > 1 (several slots aliasing one leaf).

use proptest::prelude::*;
use shortcut_rewire::{page_size, Mapping, PageIdx, PagePool, PoolConfig, VirtArea};
use std::collections::{HashMap, HashSet};

fn test_pool(initial: usize) -> PagePool {
    PagePool::new(PoolConfig {
        initial_pages: initial,
        min_growth_pages: 4,
        shrink_threshold_pages: 8,
        view_capacity_pages: 4096,
        ..PoolConfig::default()
    })
    .unwrap()
}

#[derive(Debug, Clone)]
enum PoolOp {
    Alloc,
    /// Free the i-th oldest live allocation (modulo live count).
    Free(usize),
}

fn pool_ops() -> impl Strategy<Value = Vec<PoolOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(PoolOp::Alloc),
            2 => (0usize..64).prop_map(PoolOp::Free),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pool_allocator_never_duplicates(ops in pool_ops()) {
        let mut pool = test_pool(1);
        let mut live: Vec<PageIdx> = Vec::new();
        let mut live_set: HashSet<usize> = HashSet::new();

        for op in ops {
            match op {
                PoolOp::Alloc => {
                    let p = pool.alloc_page().unwrap();
                    prop_assert!(
                        live_set.insert(p.0),
                        "page {p} handed out twice (live: {live_set:?})"
                    );
                    live.push(p);
                }
                PoolOp::Free(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = i % live.len();
                    let p = live.swap_remove(idx);
                    live_set.remove(&p.0);
                    pool.free_page(p).unwrap();
                }
            }
            prop_assert_eq!(pool.allocated_pages(), live.len());
            prop_assert!(pool.file_pages() >= live.len());
            // Every live page is addressable.
            for p in &live {
                prop_assert!(p.0 < pool.file_pages());
            }
        }
    }

    #[test]
    fn pool_pages_keep_their_data(ops in pool_ops()) {
        let mut pool = test_pool(1);
        let mut live: Vec<(PageIdx, u64)> = Vec::new();
        let mut stamp = 1u64;

        for op in ops {
            match op {
                PoolOp::Alloc => {
                    let p = pool.alloc_page().unwrap();
                    unsafe { *(pool.page_ptr(p) as *mut u64) = stamp; }
                    live.push((p, stamp));
                    stamp += 1;
                }
                PoolOp::Free(i) => {
                    if live.is_empty() { continue; }
                    let idx = i % live.len();
                    let (p, _) = live.swap_remove(idx);
                    // Scrub so that reuse without re-init is caught.
                    unsafe { *(pool.page_ptr(p) as *mut u64) = u64::MAX; }
                    pool.free_page(p).unwrap();
                }
            }
            for (p, v) in &live {
                let got = unsafe { *(pool.page_ptr(*p) as *const u64) };
                prop_assert_eq!(got, *v, "page {} corrupted", p);
            }
        }
    }
}

#[derive(Debug, Clone)]
enum WireOp {
    /// Rewire slot `v % slots` to leaf `l % leaves`.
    Wire(usize, usize),
    /// Reset slot `v % slots` to anonymous.
    Reset(usize),
    /// Write a fresh stamp into leaf `l % leaves` (through the pool view).
    Scribble(usize),
}

fn wire_ops() -> impl Strategy<Value = Vec<WireOp>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (0usize..1024, 0usize..1024).prop_map(|(v, l)| WireOp::Wire(v, l)),
            1 => (0usize..1024).prop_map(WireOp::Reset),
            2 => (0usize..1024).prop_map(WireOp::Scribble),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rewired_area_matches_shadow_model(ops in wire_ops(), slots in 1usize..16, leaves in 1usize..12) {
        let mut pool = test_pool(leaves);
        let handle = pool.handle();
        let leaf_pages: Vec<PageIdx> = (0..leaves).map(|_| pool.alloc_page().unwrap()).collect();
        let mut leaf_stamp: Vec<u64> = vec![0; leaves];
        let mut stamp = 1u64;
        // Stamp every leaf through the pool view.
        for (i, p) in leaf_pages.iter().enumerate() {
            unsafe { *(pool.page_ptr(*p) as *mut u64) = stamp; }
            leaf_stamp[i] = stamp;
            stamp += 1;
        }

        let mut area = VirtArea::reserve(slots).unwrap();
        // shadow: slot -> Option<leaf index>
        let mut shadow: HashMap<usize, usize> = HashMap::new();

        for op in ops {
            match op {
                WireOp::Wire(v, l) => {
                    let (v, l) = (v % slots, l % leaves);
                    area.rewire(v, &handle, leaf_pages[l]).unwrap();
                    shadow.insert(v, l);
                }
                WireOp::Reset(v) => {
                    let v = v % slots;
                    area.reset(v).unwrap();
                    shadow.remove(&v);
                }
                WireOp::Scribble(l) => {
                    let l = l % leaves;
                    unsafe { *(pool.page_ptr(leaf_pages[l]) as *mut u64) = stamp; }
                    leaf_stamp[l] = stamp;
                    stamp += 1;
                }
            }
            // Validate every slot against the shadow model.
            for v in 0..slots {
                let got = unsafe { *(area.page_ptr(v) as *const u64) };
                match shadow.get(&v) {
                    Some(&l) => {
                        prop_assert_eq!(got, leaf_stamp[l], "slot {} should alias leaf {}", v, l);
                        prop_assert_eq!(area.mapping(v), Mapping::Pool(leaf_pages[l]));
                    }
                    None => {
                        prop_assert_eq!(got, 0, "anon slot {} must read zero", v);
                        prop_assert_eq!(area.mapping(v), Mapping::Anon);
                    }
                }
            }
        }
    }

    #[test]
    fn batch_rewire_equals_individual_rewires(
        pairs in proptest::collection::btree_map(0usize..32, 0usize..16, 1..24)
    ) {
        // Same assignments applied (a) one by one and (b) as a coalesced
        // batch must produce identical areas.
        let leaves = 16usize;
        let mut pool = test_pool(leaves);
        let handle = pool.handle();
        let run_start = pool.alloc_run(leaves).unwrap();
        for i in 0..leaves {
            unsafe { *(pool.page_ptr(PageIdx(run_start.0 + i)) as *mut u64) = 1000 + i as u64; }
        }

        let assignments: Vec<(usize, PageIdx)> = pairs
            .iter()
            .map(|(&v, &l)| (v, PageIdx(run_start.0 + l)))
            .collect();

        let mut one_by_one = VirtArea::reserve(32).unwrap();
        for &(v, p) in &assignments {
            one_by_one.rewire(v, &handle, p).unwrap();
        }
        let mut batched = VirtArea::reserve(32).unwrap();
        let calls = batched.rewire_batch(&handle, &assignments).unwrap();
        prop_assert!(calls as usize <= assignments.len());

        for v in 0..32 {
            prop_assert_eq!(one_by_one.mapping(v), batched.mapping(v));
            let a = unsafe { *(one_by_one.page_ptr(v) as *const u64) };
            let b = unsafe { *(batched.page_ptr(v) as *const u64) };
            prop_assert_eq!(a, b);
        }
    }
}

#[test]
fn full_page_copy_through_shortcut() {
    // Byte-level check across an entire page, not just the first word.
    let mut pool = test_pool(2);
    let handle = pool.handle();
    let leaf = pool.alloc_page().unwrap();
    let mut area = VirtArea::reserve(1).unwrap();
    area.rewire(0, &handle, leaf).unwrap();

    let n = page_size();
    unsafe {
        let through_shortcut = std::slice::from_raw_parts_mut(area.page_ptr(0), n);
        for (i, b) in through_shortcut.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
    }
    unsafe {
        let through_pool = std::slice::from_raw_parts(pool.page_ptr(leaf), n);
        for (i, b) in through_pool.iter().enumerate() {
            assert_eq!(*b, (i % 251) as u8, "byte {i} mismatch");
        }
    }
}
