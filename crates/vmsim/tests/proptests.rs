//! Property tests: simulator components against `HashMap`-based oracles.

use proptest::prelude::*;
use shortcut_vmsim::address_space::FileId;
use shortcut_vmsim::{AddressSpace, Machine, MachineConfig, Mmu, PageTable, Pfn, VirtAddr, Vpn};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum PtOp {
    Map(u64, u64),
    Unmap(u64),
}

fn pt_ops() -> impl Strategy<Value = Vec<PtOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u64..1 << 30, 0u64..1 << 20).prop_map(|(v, p)| PtOp::Map(v, p)),
            1 => (0u64..1 << 30).prop_map(PtOp::Unmap),
        ],
        1..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn page_table_matches_hashmap_oracle(ops in pt_ops()) {
        let mut pt = PageTable::new();
        let mut oracle: HashMap<u64, u64> = HashMap::new();

        for op in &ops {
            match *op {
                PtOp::Map(v, p) => {
                    let old = pt.map(Vpn(v), Pfn(p));
                    let oracle_old = oracle.insert(v, p);
                    prop_assert_eq!(old.map(|pte| pte.pfn.0), oracle_old);
                }
                PtOp::Unmap(v) => {
                    let old = pt.unmap(Vpn(v));
                    let oracle_old = oracle.remove(&v);
                    prop_assert_eq!(old.map(|pte| pte.pfn.0), oracle_old);
                }
            }
        }
        prop_assert_eq!(pt.entry_count(), oracle.len());
        for (&v, &p) in &oracle {
            prop_assert_eq!(pt.translate(Vpn(v)), Some(Pfn(p)));
            // The walk agrees with the pure translation.
            let w = pt.walk(Vpn(v));
            prop_assert_eq!(w.pte.map(|pte| pte.pfn), Some(Pfn(p)));
            prop_assert_eq!(w.touched.len(), 4);
        }
    }

    #[test]
    fn tlb_never_contradicts_inserts(
        inserts in proptest::collection::vec((0u64..512, 0u64..1 << 20), 1..200)
    ) {
        // Whatever the TLB answers on lookup must be the *latest* inserted
        // pfn for that vpn (it may forget, but must never lie).
        let mut tlb = shortcut_vmsim::Tlb::new(shortcut_vmsim::TlbConfig { entries: 16, ways: 4 });
        let mut latest: HashMap<u64, u64> = HashMap::new();
        for (v, p) in inserts {
            tlb.insert(Vpn(v), Pfn(p));
            latest.insert(v, p);
            if let Some(hit) = tlb.lookup(Vpn(v)) {
                prop_assert_eq!(hit.0, latest[&v]);
            } else {
                prop_assert!(false, "entry just inserted must hit");
            }
        }
        for (&v, &p) in &latest {
            if let Some(hit) = tlb.lookup(Vpn(v)) {
                prop_assert_eq!(hit.0, p, "stale translation for vpn {}", v);
            }
        }
    }

    #[test]
    fn mmu_translation_equals_direct_translation(
        accesses in proptest::collection::vec(0u64..64, 1..200),
        populate_first in any::<bool>(),
    ) {
        // However the access is resolved (TLB level, walk, fault), the
        // physical frame must equal what the page table/backing dictates.
        let mut aspace = AddressSpace::new();
        let file = aspace.create_file();
        aspace.resize_file(file, 64).unwrap();
        let addr = aspace.mmap_anon(64);
        aspace.mmap_file_fixed(addr, 64, file, 0, populate_first).unwrap();
        let mut mmu = Mmu::with_defaults();

        for page in accesses {
            let va = VirtAddr(addr.0 + page * 4096);
            mmu.access(&mut aspace, va).unwrap();
            let got = aspace.translate(va.vpn()).unwrap();
            let want = aspace.translate(va.vpn()).unwrap();
            prop_assert_eq!(got, want);
        }
        // Every touched page now maps to its file frame.
        let s = &mmu.stats;
        prop_assert!(s.total_accesses() > 0);
        if populate_first {
            prop_assert_eq!(s.soft_faults, 0);
        }
    }

    #[test]
    fn shootdowns_preserve_translation_correctness(
        script in proptest::collection::vec((0usize..4, 0u64..16, 0usize..32, any::<bool>()), 1..100)
    ) {
        // Random interleaving of accesses and remaps across 4 cores: after
        // every step, any TLB-cached translation a core uses must match the
        // current page table (no stale reads), which we check by comparing
        // the access outcome against a model of "current file page".
        let mut m = Machine::new(MachineConfig { cores: 4, ..MachineConfig::default() });
        let file = m.aspace.create_file();
        m.aspace.resize_file(file, 64).unwrap();
        let addr = m.aspace.mmap_anon(16);
        m.aspace.mmap_file_fixed(addr, 16, file, 0, true).unwrap();
        // model: vpage -> file page
        let mut model: Vec<usize> = (0..16).collect();

        for (core, vpage, filepage, is_remap) in script {
            let vpage = (vpage % 16) as usize;
            let va = VirtAddr(addr.0 + (vpage as u64) * 4096);
            if is_remap {
                let fp = filepage % 32;
                m.remap_from_core(shortcut_vmsim::CoreId(core), va, 1, file, fp, true).unwrap();
                model[vpage] = fp;
            } else {
                m.access(shortcut_vmsim::CoreId(core), va).unwrap();
                // After the access, the core's translation of va must match
                // the frame of the file page the model says it maps to.
                let expect_pfn = {
                    let aspace = &m.aspace;
                    aspace.translate(va.vpn()).unwrap()
                };
                // translate() consults the page table, which mmap_file_fixed
                // keeps in sync with the model by construction; make sure
                // the *backing* also agrees.
                match m.aspace.backing_of(va.vpn()) {
                    Some(shortcut_vmsim::MapKind::File { page, .. }) => {
                        prop_assert_eq!(page, model[vpage]);
                    }
                    other => prop_assert!(false, "unexpected backing {:?}", other),
                }
                let _ = expect_pfn;
            }
        }
    }
}

#[test]
fn wide_area_walks_cost_more_than_narrow() {
    // The Figure-4 mechanism: random accesses over a 2^15-page area must
    // spend more on page walks than the same count over a 2^8-page area.
    let mut aspace = AddressSpace::new();
    let wide = aspace.mmap_anon(1 << 15);
    let narrow = aspace.mmap_anon(1 << 8);
    for i in 0..(1 << 15) {
        aspace.populate(wide.vpn().add(i)).unwrap();
    }
    for i in 0..(1 << 8) {
        aspace.populate(narrow.vpn().add(i)).unwrap();
    }

    let mut rng_state = 0x12345678u64;
    let mut next = move || {
        // xorshift
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };

    let mut mmu_wide = Mmu::with_defaults();
    let mut mmu_narrow = Mmu::with_defaults();
    let n = 20_000;
    let mut wide_ns = 0.0;
    let mut narrow_ns = 0.0;
    for _ in 0..n {
        let r = next();
        wide_ns += mmu_wide
            .access(&mut aspace, VirtAddr(wide.0 + (r % (1 << 15)) * 4096))
            .unwrap()
            .ns;
        narrow_ns += mmu_narrow
            .access(&mut aspace, VirtAddr(narrow.0 + (r % (1 << 8)) * 4096))
            .unwrap()
            .ns;
    }
    assert!(
        wide_ns > 1.5 * narrow_ns,
        "wide {wide_ns} should cost much more than narrow {narrow_ns}"
    );
    assert!(mmu_wide.stats.tlb_miss_rate() > mmu_narrow.stats.tlb_miss_rate());
}

#[test]
fn file_identity_is_preserved_across_remaps() {
    // Two virtual pages rewired to the same file page must resolve to the
    // same physical frame; remapping one away must split them again.
    let mut aspace = AddressSpace::new();
    let file = aspace.create_file();
    aspace.resize_file(file, 4).unwrap();
    let a = aspace.mmap_anon(1);
    let b = aspace.mmap_anon(1);
    aspace.mmap_file_fixed(a, 1, file, 2, true).unwrap();
    aspace.mmap_file_fixed(b, 1, file, 2, true).unwrap();
    assert_eq!(aspace.translate(a.vpn()), aspace.translate(b.vpn()));
    aspace.mmap_file_fixed(b, 1, file, 3, true).unwrap();
    assert_ne!(aspace.translate(a.vpn()), aspace.translate(b.vpn()));
    let _ = FileId(0);
}
