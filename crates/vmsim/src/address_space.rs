//! Simulated `mmap` semantics over the model page table.
//!
//! Reproduces the behaviours the paper's §2.1 and §3 rely on:
//!
//! * `mmap(MAP_PRIVATE | MAP_ANON)` — reserve a virtual area; physical
//!   frames and PTEs appear lazily on first touch (soft fault).
//! * `mmap(MAP_SHARED | MAP_FIXED, file, offset)` — **rewire** pages of an
//!   existing area to main-memory-file pages. The PTE of each remapped
//!   virtual page is *dropped*; the next access takes a page fault that
//!   installs the new PTE — unless `populate` (the `MAP_POPULATE` flag)
//!   installs it eagerly during the call.
//! * `munmap` — drop the area, its PTEs, and any lazily allocated frames.

use crate::addr::{VirtAddr, Vpn, PAGE_SIZE};
use crate::memfile::{FrameAllocator, SimMemFile};
use crate::page_table::PageTable;
use std::collections::HashMap;

/// Identifier of a simulated main-memory file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(pub usize);

/// Identifier of a mapped region (diagnostic only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(pub usize);

/// What backs one mapped virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapKind {
    /// Anonymous; the frame is allocated on first touch.
    Anon,
    /// Shared mapping of the given page of a main-memory file.
    File {
        /// Backing file.
        file: FileId,
        /// Page offset within the file.
        page: usize,
    },
}

#[derive(Debug, Clone, Copy)]
struct Backing {
    kind: MapKind,
    /// Frame lazily allocated for an Anon page (None until first touch).
    anon_frame: Option<crate::addr::Pfn>,
}

/// Errors from simulated memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Access to an unmapped virtual page (a segfault in real life).
    Unmapped(Vpn),
    /// File mapping points beyond the end of the file (SIGBUS).
    BeyondEof(Vpn),
    /// Bad file id.
    NoSuchFile(FileId),
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::Unmapped(v) => write!(f, "segfault: vpn {v:?} not mapped"),
            MemError::BeyondEof(v) => write!(f, "sigbus: vpn {v:?} maps beyond EOF"),
            MemError::NoSuchFile(id) => write!(f, "no such mem-file {id:?}"),
        }
    }
}

impl std::error::Error for MemError {}

/// A process address space: page table + region/backing bookkeeping.
pub struct AddressSpace {
    page_table: PageTable,
    frames: FrameAllocator,
    files: Vec<SimMemFile>,
    backing: HashMap<u64, Backing>,
    next_map_addr: u64,
    /// mmap invocations (reservations, rewirings).
    pub mmap_calls: u64,
    /// soft page faults taken.
    pub soft_faults: u64,
}

impl AddressSpace {
    /// Fresh, empty address space.
    pub fn new() -> Self {
        AddressSpace {
            page_table: PageTable::new(),
            frames: FrameAllocator::new(),
            files: Vec::new(),
            backing: HashMap::new(),
            next_map_addr: 0x7f00_0000_0000, // mimic Linux mmap base
            mmap_calls: 0,
            soft_faults: 0,
        }
    }

    /// Create an empty main-memory file (`memfd_create`).
    pub fn create_file(&mut self) -> FileId {
        self.files.push(SimMemFile::new());
        FileId(self.files.len() - 1)
    }

    /// Resize a file (`ftruncate`), allocating/freeing frames.
    pub fn resize_file(&mut self, id: FileId, pages: usize) -> Result<(), MemError> {
        let f = self.files.get_mut(id.0).ok_or(MemError::NoSuchFile(id))?;
        f.resize(pages, &mut self.frames);
        Ok(())
    }

    /// Length of a file in pages.
    pub fn file_len(&self, id: FileId) -> Result<usize, MemError> {
        Ok(self
            .files
            .get(id.0)
            .ok_or(MemError::NoSuchFile(id))?
            .len_pages())
    }

    /// Reserve `pages` of anonymous virtual memory at a kernel-chosen
    /// address. No PTEs are installed; the reservation is free, as the
    /// paper's Table 1 "Allocate" row shows.
    pub fn mmap_anon(&mut self, pages: usize) -> VirtAddr {
        self.mmap_calls += 1;
        let base = self.next_map_addr;
        // Keep a guard gap between mappings, like real mmap tends to.
        self.next_map_addr += (pages as u64 + 16) * PAGE_SIZE;
        let base_vpn = VirtAddr(base).vpn();
        for i in 0..pages {
            self.backing.insert(
                base_vpn.add(i as u64).0,
                Backing {
                    kind: MapKind::Anon,
                    anon_frame: None,
                },
            );
        }
        VirtAddr(base)
    }

    /// Rewire `[addr, addr + pages)` to file pages `[file_page, …)` —
    /// `mmap(MAP_SHARED | MAP_FIXED)`. Existing PTEs are dropped; with
    /// `populate`, fresh PTEs are installed eagerly. Returns the VPNs whose
    /// translation changed (input to the TLB-shootdown protocol).
    pub fn mmap_file_fixed(
        &mut self,
        addr: VirtAddr,
        pages: usize,
        file: FileId,
        file_page: usize,
        populate: bool,
    ) -> Result<Vec<Vpn>, MemError> {
        if self.files.get(file.0).is_none() {
            return Err(MemError::NoSuchFile(file));
        }
        self.mmap_calls += 1;
        let base_vpn = addr.vpn();
        let mut changed = Vec::with_capacity(pages);
        for i in 0..pages {
            let vpn = base_vpn.add(i as u64);
            // Free a lazily allocated anon frame being replaced.
            if let Some(old) = self.backing.get(&vpn.0) {
                if let Some(f) = old.anon_frame {
                    self.frames.free(f);
                }
            }
            self.backing.insert(
                vpn.0,
                Backing {
                    kind: MapKind::File {
                        file,
                        page: file_page + i,
                    },
                    anon_frame: None,
                },
            );
            // Paper §2.1 "Details": rewiring drops the PTE.
            self.page_table.unmap(vpn);
            changed.push(vpn);
            if populate {
                self.populate(vpn)?;
            }
        }
        Ok(changed)
    }

    /// Unmap `pages` pages starting at `addr`, dropping PTEs and backing.
    pub fn munmap(&mut self, addr: VirtAddr, pages: usize) {
        let base_vpn = addr.vpn();
        for i in 0..pages {
            let vpn = base_vpn.add(i as u64);
            if let Some(b) = self.backing.remove(&vpn.0) {
                if let Some(f) = b.anon_frame {
                    self.frames.free(f);
                }
            }
            self.page_table.unmap(vpn);
        }
    }

    /// Install the PTE for `vpn` right now (MAP_POPULATE / prefault),
    /// without charging a soft fault.
    pub fn populate(&mut self, vpn: Vpn) -> Result<(), MemError> {
        let pfn = self.resolve_backing(vpn)?;
        self.page_table.map(vpn, pfn);
        Ok(())
    }

    /// Take a soft page fault on `vpn`: resolve its backing, install the
    /// PTE, bump the fault counter.
    pub fn fault(&mut self, vpn: Vpn) -> Result<crate::addr::Pfn, MemError> {
        let pfn = self.resolve_backing(vpn)?;
        self.page_table.map(vpn, pfn);
        self.soft_faults += 1;
        Ok(pfn)
    }

    fn resolve_backing(&mut self, vpn: Vpn) -> Result<crate::addr::Pfn, MemError> {
        let b = *self.backing.get(&vpn.0).ok_or(MemError::Unmapped(vpn))?;
        match b.kind {
            MapKind::Anon => {
                if let Some(f) = b.anon_frame {
                    return Ok(f);
                }
                let f = self.frames.alloc();
                self.backing.insert(
                    vpn.0,
                    Backing {
                        kind: MapKind::Anon,
                        anon_frame: Some(f),
                    },
                );
                Ok(f)
            }
            MapKind::File { file, page } => self.files[file.0]
                .frame_at(page)
                .ok_or(MemError::BeyondEof(vpn)),
        }
    }

    /// What currently backs `vpn`, if mapped.
    pub fn backing_of(&self, vpn: Vpn) -> Option<MapKind> {
        self.backing.get(&vpn.0).map(|b| b.kind)
    }

    /// Read-only access to the page table (for the MMU walk).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Direct translation without TLB or cost accounting.
    pub fn translate(&self, vpn: Vpn) -> Option<crate::addr::Pfn> {
        self.page_table.translate(vpn)
    }

    /// Number of live data frames (excludes page-table node frames).
    pub fn live_frames(&self) -> u64 {
        self.frames.live_frames()
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anon_pages_fault_lazily() {
        let mut a = AddressSpace::new();
        let addr = a.mmap_anon(4);
        let vpn = addr.vpn();
        assert_eq!(a.translate(vpn), None);
        assert_eq!(a.live_frames(), 0);
        let pfn = a.fault(vpn).unwrap();
        assert_eq!(a.translate(vpn), Some(pfn));
        assert_eq!(a.live_frames(), 1);
        assert_eq!(a.soft_faults, 1);
        // Faulting again resolves to the same frame.
        assert_eq!(a.fault(vpn).unwrap(), pfn);
        assert_eq!(a.live_frames(), 1);
    }

    #[test]
    fn unmapped_access_is_segfault() {
        let mut a = AddressSpace::new();
        assert_eq!(a.fault(Vpn(123)), Err(MemError::Unmapped(Vpn(123))));
    }

    #[test]
    fn file_fixed_remap_drops_pte() {
        let mut a = AddressSpace::new();
        let file = a.create_file();
        a.resize_file(file, 2).unwrap();
        let addr = a.mmap_anon(2);
        let vpn = addr.vpn();
        // Touch to install an anon PTE.
        a.fault(vpn).unwrap();
        assert!(a.translate(vpn).is_some());

        let changed = a.mmap_file_fixed(addr, 1, file, 0, false).unwrap();
        assert_eq!(changed, vec![vpn]);
        // PTE dropped (lazy): next access faults.
        assert_eq!(a.translate(vpn), None);
        let pfn = a.fault(vpn).unwrap();
        assert_eq!(Some(pfn), a.files[file.0].frame_at(0));
    }

    #[test]
    fn populate_installs_pte_eagerly() {
        let mut a = AddressSpace::new();
        let file = a.create_file();
        a.resize_file(file, 1).unwrap();
        let addr = a.mmap_anon(1);
        let before_faults = a.soft_faults;
        a.mmap_file_fixed(addr, 1, file, 0, true).unwrap();
        assert!(a.translate(addr.vpn()).is_some());
        assert_eq!(a.soft_faults, before_faults, "populate is not a fault");
    }

    #[test]
    fn two_vpages_can_alias_one_file_page() {
        let mut a = AddressSpace::new();
        let file = a.create_file();
        a.resize_file(file, 1).unwrap();
        let addr1 = a.mmap_anon(1);
        let addr2 = a.mmap_anon(1);
        a.mmap_file_fixed(addr1, 1, file, 0, true).unwrap();
        a.mmap_file_fixed(addr2, 1, file, 0, true).unwrap();
        assert_eq!(a.translate(addr1.vpn()), a.translate(addr2.vpn()));
    }

    #[test]
    fn mapping_beyond_eof_is_sigbus_on_access() {
        let mut a = AddressSpace::new();
        let file = a.create_file();
        a.resize_file(file, 1).unwrap();
        let addr = a.mmap_anon(2);
        // Mapping succeeds (like real mmap)…
        a.mmap_file_fixed(addr, 2, file, 0, false).unwrap();
        // …but touching the page beyond EOF faults fatally.
        let vpn1 = addr.vpn().add(1);
        assert_eq!(a.fault(vpn1), Err(MemError::BeyondEof(vpn1)));
    }

    #[test]
    fn munmap_releases_frames_and_ptes() {
        let mut a = AddressSpace::new();
        let addr = a.mmap_anon(3);
        for i in 0..3 {
            a.fault(addr.vpn().add(i)).unwrap();
        }
        assert_eq!(a.live_frames(), 3);
        a.munmap(addr, 3);
        assert_eq!(a.live_frames(), 0);
        assert_eq!(a.translate(addr.vpn()), None);
        assert_eq!(a.backing_of(addr.vpn()), None);
    }

    #[test]
    fn remap_frees_replaced_anon_frame() {
        let mut a = AddressSpace::new();
        let file = a.create_file();
        a.resize_file(file, 1).unwrap();
        let addr = a.mmap_anon(1);
        a.fault(addr.vpn()).unwrap(); // allocates anon frame
        let live_with_anon = a.live_frames();
        a.mmap_file_fixed(addr, 1, file, 0, false).unwrap();
        assert_eq!(a.live_frames(), live_with_anon - 1);
    }

    #[test]
    fn file_shrink_then_access_is_sigbus() {
        let mut a = AddressSpace::new();
        let file = a.create_file();
        a.resize_file(file, 4).unwrap();
        let addr = a.mmap_anon(4);
        a.mmap_file_fixed(addr, 4, file, 0, true).unwrap();
        a.resize_file(file, 1).unwrap();
        // Re-fault page 2 after its PTE is shot down: now beyond EOF.
        let vpn2 = addr.vpn().add(2);
        assert_eq!(a.fault(vpn2), Err(MemError::BeyondEof(vpn2)));
    }
}
