//! A physically-indexed set-associative cache model.
//!
//! Both ordinary data accesses and page-walk accesses are charged through
//! this cache (real page walkers fetch PTEs through the data cache
//! hierarchy). This is the mechanism that makes *wide* virtual spans
//! expensive in the simulation: a 2²²-page shortcut node owns 2²²·8 B
//! = 32 MB of leaf-level page table, which cannot stay cache-resident,
//! whereas a traditional pointer array of the same fan-out only needs its
//! 8 B slots plus a few hundred PT pages.

use crate::addr::PhysAddr;

/// Cache geometry.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// A last-level cache like the paper's i7-12700KF (25 MB, 64 B lines).
    pub fn llc_default() -> Self {
        CacheConfig {
            capacity_bytes: 25 * 1024 * 1024,
            line_bytes: 64,
            ways: 10,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    stamp: u64,
}

/// Set-associative LRU cache over physical line addresses.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    lines: Vec<Option<Line>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two());
        let total_lines = cfg.capacity_bytes / cfg.line_bytes;
        assert!(cfg.ways > 0 && total_lines >= cfg.ways);
        let sets = total_lines / cfg.ways;
        Cache {
            cfg,
            sets,
            lines: vec![None; sets * cfg.ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Access the line containing `paddr`; returns `true` on hit. On miss
    /// the line is filled (LRU eviction).
    pub fn access(&mut self, paddr: PhysAddr) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let line_addr = paddr.0 / self.cfg.line_bytes as u64;
        let set = (line_addr as usize) % self.sets;
        let w = self.cfg.ways;
        let slots = &mut self.lines[set * w..(set + 1) * w];

        for l in slots.iter_mut().flatten() {
            if l.tag == line_addr {
                l.stamp = tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        // Fill: free slot or evict LRU.
        if let Some(slot) = slots.iter_mut().find(|s| s.is_none()) {
            *slot = Some(Line {
                tag: line_addr,
                stamp: tick,
            });
        } else {
            let lru = slots
                .iter_mut()
                .min_by_key(|s| s.as_ref().map(|l| l.stamp).unwrap_or(0))
                .expect("ways > 0");
            *lru = Some(Line {
                tag: line_addr,
                stamp: tick,
            });
        }
        false
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drop all lines.
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            *l = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            capacity_bytes: 4 * 64, // 4 lines
            line_bytes: 64,
            ways: 2, // 2 sets × 2 ways
        })
    }

    #[test]
    fn second_access_hits() {
        let mut c = tiny();
        assert!(!c.access(PhysAddr(0)));
        assert!(c.access(PhysAddr(0)));
        assert!(c.access(PhysAddr(63))); // same line
        assert!(!c.access(PhysAddr(64))); // next line
    }

    #[test]
    fn conflict_evicts_lru() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (line_addr % 2 == 0).
        c.access(PhysAddr(0));
        c.access(PhysAddr(128));
        assert!(c.access(PhysAddr(0))); // 0 is MRU now
        c.access(PhysAddr(256)); // evicts line 128
        assert!(!c.access(PhysAddr(128)));
        let (h, m) = c.counters();
        assert_eq!(h, 1);
        assert_eq!(m, 4);
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let mut c = Cache::new(CacheConfig {
            capacity_bytes: 1024 * 64,
            line_bytes: 64,
            ways: 8,
        });
        for i in 0..1024u64 {
            c.access(PhysAddr(i * 64));
        }
        let (_, misses_cold) = c.counters();
        assert_eq!(misses_cold, 1024);
        for i in 0..1024u64 {
            assert!(c.access(PhysAddr(i * 64)), "line {i} evicted unexpectedly");
        }
    }

    #[test]
    fn flush_forgets() {
        let mut c = tiny();
        c.access(PhysAddr(0));
        c.flush();
        assert!(!c.access(PhysAddr(0)));
    }
}
