//! A 4-level radix page table, "the index of the memory subsystem of the OS".
//!
//! The model mirrors the x86-64 structure: a root node (PML4) of 512
//! entries, three further levels, and leaf entries holding the physical
//! frame number. A translation **walk** visits one node per level; the walk
//! reports the *physical address of every node entry it touched* so the MMU
//! can charge those accesses through the cache model — this is what makes
//! wide virtual spans more expensive to walk, the effect behind the paper's
//! Figure 4 crossover.

use crate::addr::{Pfn, Vpn, FANOUT, LEVELS};

/// One leaf page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Target physical frame.
    pub pfn: Pfn,
}

enum Node {
    /// Interior node with 512 slots pointing to lower-level nodes.
    Interior {
        /// Simulated physical frame holding this node (for cache charging).
        frame: Pfn,
        children: Vec<Option<Box<Node>>>,
    },
    /// Leaf node (PT level) with 512 PTE slots.
    Leaf { frame: Pfn, ptes: Vec<Option<Pte>> },
}

impl Node {
    fn new_interior(frame: Pfn) -> Self {
        Node::Interior {
            frame,
            children: (0..FANOUT).map(|_| None).collect(),
        }
    }

    fn new_leaf(frame: Pfn) -> Self {
        Node::Leaf {
            frame,
            ptes: vec![None; FANOUT],
        }
    }

    fn frame(&self) -> Pfn {
        match self {
            Node::Interior { frame, .. } | Node::Leaf { frame, .. } => *frame,
        }
    }
}

/// Result of a page-table walk.
#[derive(Debug, Clone)]
pub struct Walk {
    /// The translation, if the leaf PTE was present.
    pub pte: Option<Pte>,
    /// Physical addresses of the page-table entries touched, one per level
    /// actually visited (≤ 4). The MMU sends these through the cache model.
    pub touched: Vec<crate::addr::PhysAddr>,
}

/// The 4-level radix page table.
pub struct PageTable {
    root: Node,
    /// Allocator for the frames that hold page-table nodes themselves.
    next_node_frame: u64,
    entries: usize,
}

/// Page-table node frames are carved from a reserved high region so they
/// never collide with data frames handed out by the frame allocator.
const NODE_FRAME_BASE: u64 = 1 << 40;

impl PageTable {
    /// An empty page table (root node allocated).
    pub fn new() -> Self {
        PageTable {
            root: Node::new_interior(Pfn(NODE_FRAME_BASE)),
            next_node_frame: NODE_FRAME_BASE + 1,
            entries: 0,
        }
    }

    /// Number of present leaf PTEs.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Install (or replace) the translation `vpn -> pfn`, creating interior
    /// nodes on demand. Returns the previous PTE if one existed.
    pub fn map(&mut self, vpn: Vpn, pfn: Pfn) -> Option<Pte> {
        // Pre-allocate the frames we might need to avoid borrow conflicts.
        let spare = [
            Pfn(self.next_node_frame),
            Pfn(self.next_node_frame + 1),
            Pfn(self.next_node_frame + 2),
        ];
        let mut spare_used = 0;

        let mut node = &mut self.root;
        for level in 0..LEVELS - 1 {
            let idx = vpn.level_index(level);
            let is_last_interior = level == LEVELS - 2;
            match node {
                Node::Interior { children, .. } => {
                    if children[idx].is_none() {
                        let frame = spare[spare_used];
                        spare_used += 1;
                        let child = if is_last_interior {
                            Node::new_leaf(frame)
                        } else {
                            Node::new_interior(frame)
                        };
                        children[idx] = Some(Box::new(child));
                    }
                    node = children[idx].as_mut().unwrap();
                }
                Node::Leaf { .. } => unreachable!("leaf above PT level"),
            }
        }
        self.next_node_frame += spare_used as u64;

        match node {
            Node::Leaf { ptes, .. } => {
                let idx = vpn.level_index(LEVELS - 1);
                let old = ptes[idx].replace(Pte { pfn });
                if old.is_none() {
                    self.entries += 1;
                }
                old
            }
            Node::Interior { .. } => unreachable!("interior at PT level"),
        }
    }

    /// Drop the translation for `vpn` (the `mmap(MAP_FIXED)` rewiring
    /// behaviour from paper §2.1: the PTE of the remapped virtual page is
    /// dropped). Returns the removed PTE, if any.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        let mut node = &mut self.root;
        for level in 0..LEVELS - 1 {
            let idx = vpn.level_index(level);
            match node {
                Node::Interior { children, .. } => match children[idx].as_mut() {
                    Some(child) => node = child,
                    None => return None,
                },
                Node::Leaf { .. } => unreachable!(),
            }
        }
        match node {
            Node::Leaf { ptes, .. } => {
                let idx = vpn.level_index(LEVELS - 1);
                let old = ptes[idx].take();
                if old.is_some() {
                    self.entries -= 1;
                }
                old
            }
            Node::Interior { .. } => unreachable!(),
        }
    }

    /// Pure lookup without walk accounting.
    pub fn translate(&self, vpn: Vpn) -> Option<Pfn> {
        let mut node = &self.root;
        for level in 0..LEVELS - 1 {
            let idx = vpn.level_index(level);
            match node {
                Node::Interior { children, .. } => match children[idx].as_ref() {
                    Some(child) => node = child,
                    None => return None,
                },
                Node::Leaf { .. } => unreachable!(),
            }
        }
        match node {
            Node::Leaf { ptes, .. } => ptes[vpn.level_index(LEVELS - 1)].map(|p| p.pfn),
            Node::Interior { .. } => unreachable!(),
        }
    }

    /// Hardware-style walk: visits up to 4 node entries and reports the
    /// physical address of each entry touched (node frame + entry offset),
    /// so the MMU can charge them through the cache hierarchy.
    pub fn walk(&self, vpn: Vpn) -> Walk {
        let mut touched = Vec::with_capacity(LEVELS);
        let mut node = &self.root;
        for level in 0..LEVELS - 1 {
            let idx = vpn.level_index(level);
            touched.push(entry_paddr(node.frame(), idx));
            match node {
                Node::Interior { children, .. } => match children[idx].as_ref() {
                    Some(child) => node = child,
                    None => return Walk { pte: None, touched },
                },
                Node::Leaf { .. } => unreachable!(),
            }
        }
        let idx = vpn.level_index(LEVELS - 1);
        touched.push(entry_paddr(node.frame(), idx));
        match node {
            Node::Leaf { ptes, .. } => Walk {
                pte: ptes[idx],
                touched,
            },
            Node::Interior { .. } => unreachable!(),
        }
    }
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Physical address of entry `idx` in the node stored in `frame`
/// (8 bytes per entry, like real PTEs).
fn entry_paddr(frame: Pfn, idx: usize) -> crate::addr::PhysAddr {
    crate::addr::PhysAddr(frame.base().0 + (idx as u64) * 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_roundtrip() {
        let mut pt = PageTable::new();
        assert_eq!(pt.translate(Vpn(5)), None);
        pt.map(Vpn(5), Pfn(100));
        assert_eq!(pt.translate(Vpn(5)), Some(Pfn(100)));
        assert_eq!(pt.entry_count(), 1);
    }

    #[test]
    fn remap_replaces_and_reports_old() {
        let mut pt = PageTable::new();
        assert_eq!(pt.map(Vpn(5), Pfn(1)), None);
        let old = pt.map(Vpn(5), Pfn(2));
        assert_eq!(old, Some(Pte { pfn: Pfn(1) }));
        assert_eq!(pt.translate(Vpn(5)), Some(Pfn(2)));
        assert_eq!(pt.entry_count(), 1);
    }

    #[test]
    fn unmap_removes() {
        let mut pt = PageTable::new();
        pt.map(Vpn(7), Pfn(3));
        assert_eq!(pt.unmap(Vpn(7)), Some(Pte { pfn: Pfn(3) }));
        assert_eq!(pt.translate(Vpn(7)), None);
        assert_eq!(pt.unmap(Vpn(7)), None);
        assert_eq!(pt.entry_count(), 0);
    }

    #[test]
    fn walk_touches_four_levels_when_present() {
        let mut pt = PageTable::new();
        pt.map(Vpn(12345), Pfn(9));
        let w = pt.walk(Vpn(12345));
        assert_eq!(w.pte, Some(Pte { pfn: Pfn(9) }));
        assert_eq!(w.touched.len(), 4);
    }

    #[test]
    fn walk_short_circuits_on_missing_interior() {
        let pt = PageTable::new();
        let w = pt.walk(Vpn(12345));
        assert_eq!(w.pte, None);
        assert_eq!(w.touched.len(), 1); // only the root entry was consulted
    }

    #[test]
    fn neighbor_pages_share_leaf_node() {
        let mut pt = PageTable::new();
        pt.map(Vpn(0), Pfn(1));
        pt.map(Vpn(1), Pfn(2));
        let w0 = pt.walk(Vpn(0));
        let w1 = pt.walk(Vpn(1));
        // Same nodes at levels 0..3 → same frame, different entry offsets.
        for level in 0..3 {
            assert_eq!(w0.touched[level], w1.touched[level]);
        }
        assert_ne!(w0.touched[3], w1.touched[3]);
    }

    #[test]
    fn distant_pages_use_distinct_leaf_nodes() {
        let mut pt = PageTable::new();
        pt.map(Vpn(0), Pfn(1));
        pt.map(Vpn(1 << 9), Pfn(2)); // next PT node
        let w0 = pt.walk(Vpn(0));
        let w1 = pt.walk(Vpn(1 << 9));
        assert_ne!(
            w0.touched[3].0 & !0xfff,
            w1.touched[3].0 & !0xfff,
            "leaf nodes must differ"
        );
    }

    #[test]
    fn many_mappings_count_correctly() {
        let mut pt = PageTable::new();
        for i in 0..10_000u64 {
            pt.map(Vpn(i * 7), Pfn(i));
        }
        assert_eq!(pt.entry_count(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(pt.translate(Vpn(i * 7)), Some(Pfn(i)));
        }
    }
}
