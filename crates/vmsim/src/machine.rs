//! A multi-core machine model with TLB shootdowns (paper §3.3).
//!
//! TLBs have no hardware coherency. When one core remaps a page
//! (`mmap(MAP_FIXED)` over an existing mapping), the OS must invalidate the
//! stale translation in every other core's TLB by sending inter-processor
//! interrupts (IPIs). The model charges:
//!
//! * the `mmap` syscall plus **one IPI send per remote core that may hold
//!   the translation** to the *shooting* core — this is why, as Figure 5
//!   shows, shootdowns "do not affect the threads being targeted, but
//!   actually slow down the shooting thread";
//! * a small IPI-handling cost to each targeted core, whose only lasting
//!   penalty is a TLB entry loss (it re-walks on next access).

use crate::addr::VirtAddr;
use crate::address_space::{AddressSpace, FileId, MemError};
use crate::cache::CacheConfig;
use crate::cost::CostModel;
use crate::mmu::{AccessOutcome, Mmu};
use crate::stats::SimStats;
use crate::tlb::TlbHierarchyConfig;

/// Index of a simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreId(pub usize);

/// Machine geometry and cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Number of cores (each with a private TLB hierarchy and cache).
    pub cores: usize,
    /// Per-core TLB geometry.
    pub tlb: TlbHierarchyConfig,
    /// Per-core cache geometry.
    pub cache: CacheConfig,
    /// Cost model shared by all cores.
    pub cost: CostModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cores: 8,
            tlb: TlbHierarchyConfig::default(),
            cache: CacheConfig::llc_default(),
            cost: CostModel::default(),
        }
    }
}

/// A shared address space executed on `n` cores.
pub struct Machine {
    /// The single shared address space (one process, many threads).
    pub aspace: AddressSpace,
    cores: Vec<Mmu>,
    cost: CostModel,
    /// IPIs sent per core (indexed by shooter).
    ipis_sent: Vec<u64>,
}

impl Machine {
    /// Build a machine.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.cores > 0);
        Machine {
            aspace: AddressSpace::new(),
            cores: (0..cfg.cores)
                .map(|_| Mmu::new(cfg.tlb, cfg.cache, cfg.cost))
                .collect(),
            cost: cfg.cost,
            ipis_sent: vec![0; cfg.cores],
        }
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Data access from `core`.
    pub fn access(&mut self, core: CoreId, addr: VirtAddr) -> Result<AccessOutcome, MemError> {
        self.cores[core.0].access(&mut self.aspace, addr)
    }

    /// Remap `[addr, addr+pages)` to `file` at `file_page` from `core`,
    /// running the TLB-shootdown protocol. Returns the simulated cost in
    /// nanoseconds charged to the shooting core.
    pub fn remap_from_core(
        &mut self,
        core: CoreId,
        addr: VirtAddr,
        pages: usize,
        file: FileId,
        file_page: usize,
        populate: bool,
    ) -> Result<f64, MemError> {
        let changed = self
            .aspace
            .mmap_file_fixed(addr, pages, file, file_page, populate)?;

        let mut ns = self.cost.mmap_ns;
        if populate {
            // Eager PTE installation costs roughly a fault per page, paid
            // inside the syscall instead of at access time.
            ns += self.cost.soft_fault_ns * 0.5 * pages as f64;
        }

        // Local invalidation is cheap (INVLPG, no IPI).
        for vpn in &changed {
            self.cores[core.0].tlb.invalidate(*vpn);
        }

        // Remote shootdown: one IPI per remote core holding any of the
        // changed translations.
        let shooter = core.0;
        for (i, remote) in self.cores.iter_mut().enumerate() {
            if i == shooter {
                continue;
            }
            let holds_any = changed.iter().any(|vpn| remote.tlb.contains(*vpn));
            if holds_any {
                ns += self.cost.ipi_send_ns;
                self.ipis_sent[shooter] += 1;
                let mut remote_ns = self.cost.ipi_receive_ns;
                for vpn in &changed {
                    if remote.tlb.invalidate(*vpn) {
                        remote.stats.remote_invalidations += 1;
                    }
                }
                remote.stats.total_ns += remote_ns;
                remote_ns = 0.0;
                let _ = remote_ns;
            }
        }

        let st = &mut self.cores[shooter].stats;
        st.mmap_calls += 1;
        st.ipis_sent = self.ipis_sent[shooter];
        st.total_ns += ns;
        Ok(ns)
    }

    /// Per-core statistics.
    pub fn core_stats(&self, core: CoreId) -> &SimStats {
        &self.cores[core.0].stats
    }

    /// Statistics merged over all cores.
    pub fn merged_stats(&self) -> SimStats {
        let mut out = SimStats::default();
        for c in &self.cores {
            out.merge(&c.stats);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_machine(cores: usize) -> (Machine, VirtAddr, FileId) {
        let mut m = Machine::new(MachineConfig {
            cores,
            ..MachineConfig::default()
        });
        let file = m.aspace.create_file();
        m.aspace.resize_file(file, 64).unwrap();
        let addr = m.aspace.mmap_anon(32);
        m.aspace.mmap_file_fixed(addr, 32, file, 0, true).unwrap();
        (m, addr, file)
    }

    #[test]
    fn remap_invalidates_remote_tlbs() {
        let (mut m, addr, file) = small_machine(2);
        // Core 1 caches the translation of page 0.
        m.access(CoreId(1), addr).unwrap();
        assert!(m.cores[1].tlb.contains(addr.vpn()));
        // Core 0 remaps page 0 to a different file page.
        m.remap_from_core(CoreId(0), addr, 1, file, 40, true)
            .unwrap();
        assert!(!m.cores[1].tlb.contains(addr.vpn()));
        assert_eq!(m.cores[1].stats.remote_invalidations, 1);
        assert_eq!(m.core_stats(CoreId(0)).ipis_sent, 1);
    }

    #[test]
    fn shootdown_cost_scales_with_holders() {
        // More cores holding the translation => the *shooter* pays more.
        let cost_with_holders = {
            let (mut m, addr, file) = small_machine(8);
            for c in 1..8 {
                m.access(CoreId(c), addr).unwrap();
            }
            m.remap_from_core(CoreId(0), addr, 1, file, 40, true)
                .unwrap()
        };
        let cost_alone = {
            let (mut m, addr, file) = small_machine(8);
            m.remap_from_core(CoreId(0), addr, 1, file, 40, true)
                .unwrap()
        };
        assert!(
            cost_with_holders > cost_alone,
            "shooter with 7 holders ({cost_with_holders}) must pay more than alone ({cost_alone})"
        );
    }

    #[test]
    fn readers_are_barely_affected() {
        // Figure 5's observation: reading cost is independent of the
        // shootdowns; readers only re-walk once per shot page.
        let (mut m, addr, file) = small_machine(2);
        // Reader warms up page 0.
        m.access(CoreId(1), addr).unwrap();
        let before = m.core_stats(CoreId(1)).total_ns;
        m.remap_from_core(CoreId(0), addr, 1, file, 40, true)
            .unwrap();
        let reader_penalty = m.core_stats(CoreId(1)).total_ns - before;
        // The reader's penalty is a fraction of the shooter's mmap cost.
        assert!(reader_penalty < CostModel::default().mmap_ns / 2.0);
    }

    #[test]
    fn no_ipi_when_nobody_holds_entry() {
        let (mut m, addr, file) = small_machine(4);
        let ns = m
            .remap_from_core(CoreId(0), addr, 1, file, 40, false)
            .unwrap();
        assert_eq!(m.core_stats(CoreId(0)).ipis_sent, 0);
        assert!((ns - CostModel::default().mmap_ns).abs() < 1e-9);
    }

    #[test]
    fn remap_redirects_translation() {
        let (mut m, addr, file) = small_machine(1);
        let pfn_before = m.aspace.translate(addr.vpn()).unwrap();
        m.remap_from_core(CoreId(0), addr, 1, file, 33, true)
            .unwrap();
        let pfn_after = m.aspace.translate(addr.vpn()).unwrap();
        assert_ne!(pfn_before, pfn_after);
    }
}
