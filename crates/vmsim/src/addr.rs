//! Address types and x86-64 4-level radix decomposition.

/// Simulated page size (4 KB, matching the paper's node/bucket size).
///
/// Deliberately independent of `shortcut_rewire::PAGE_SIZE_4K` (the
/// canonical constant for the *real*-mapping layers): the simulator
/// models a fixed 4 KB-paged x86-64 machine for deterministic cost
/// accounting, and must not drift when the rewiring stack runs with
/// larger physical slots (`shortcut_rewire::SlotLayout`) or hugepages.
pub const PAGE_SIZE: u64 = 4096;

/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// Bits of virtual-page number consumed per radix level (x86-64: 9).
pub const LEVEL_BITS: u32 = 9;

/// Number of radix levels (x86-64 with 4 KB pages: PML4→PDPT→PD→PT).
pub const LEVELS: usize = 4;

/// Entries per page-table node (2^9).
pub const FANOUT: usize = 1 << LEVEL_BITS;

/// A virtual byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

/// A physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

/// A virtual page number (virtual address >> 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vpn(pub u64);

/// A physical frame number (physical address >> 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pfn(pub u64);

impl VirtAddr {
    /// The page this address falls into.
    #[inline]
    pub fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Offset within the page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }
}

impl Vpn {
    /// First byte address of the page.
    #[inline]
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// Radix index of this VPN at `level`, where level 0 is the **root**
    /// (PML4) and level 3 is the leaf page-table level (PT).
    #[inline]
    pub fn level_index(self, level: usize) -> usize {
        debug_assert!(level < LEVELS);
        let shift = LEVEL_BITS * (LEVELS - 1 - level) as u32;
        ((self.0 >> shift) as usize) & (FANOUT - 1)
    }

    /// The page `n` places after this one.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, n: u64) -> Vpn {
        Vpn(self.0 + n)
    }
}

impl Pfn {
    /// First byte address of the frame.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }
}

impl PhysAddr {
    /// The frame this address falls into.
    #[inline]
    pub fn pfn(self) -> Pfn {
        Pfn(self.0 >> PAGE_SHIFT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_and_offset() {
        let a = VirtAddr(0x1234_5678);
        assert_eq!(a.vpn(), Vpn(0x12345));
        assert_eq!(a.page_offset(), 0x678);
        assert_eq!(a.vpn().base(), VirtAddr(0x1234_5000));
    }

    #[test]
    fn level_indices_cover_36_bits() {
        // vpn = 0b l0(9) l1(9) l2(9) l3(9)
        let vpn = Vpn((1u64 << 27) | (2 << 18) | (3 << 9) | 4);
        assert_eq!(vpn.level_index(0), 1);
        assert_eq!(vpn.level_index(1), 2);
        assert_eq!(vpn.level_index(2), 3);
        assert_eq!(vpn.level_index(3), 4);
    }

    #[test]
    fn consecutive_pages_differ_only_in_leaf_index_usually() {
        let a = Vpn(511);
        let b = a.add(1);
        assert_eq!(a.level_index(3), 511);
        assert_eq!(b.level_index(3), 0);
        assert_eq!(b.level_index(2), a.level_index(2) + 1);
    }

    #[test]
    fn phys_roundtrip() {
        let p = Pfn(42);
        assert_eq!(p.base().pfn(), p);
        assert_eq!(p.base(), PhysAddr(42 * PAGE_SIZE));
    }
}
