//! Aggregated simulation statistics.

/// Counters accumulated by an [`crate::Mmu`] / [`crate::Machine`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Accesses satisfied by the L1 TLB.
    pub tlb_l1_hits: u64,
    /// Accesses satisfied by the L2 TLB.
    pub tlb_l2_hits: u64,
    /// Accesses that required a page walk.
    pub tlb_misses: u64,
    /// Individual page-table entry touches performed by walks.
    pub walk_touches: u64,
    /// Walk touches that missed the cache model (went to DRAM).
    pub walk_dram_touches: u64,
    /// Data touches that missed the cache model.
    pub data_dram_touches: u64,
    /// Soft page faults taken (lazy PTE population).
    pub soft_faults: u64,
    /// mmap syscalls issued.
    pub mmap_calls: u64,
    /// IPIs sent for TLB shootdowns.
    pub ipis_sent: u64,
    /// Shootdown invalidations applied on remote TLBs.
    pub remote_invalidations: u64,
    /// Total simulated time in nanoseconds.
    pub total_ns: f64,
}

impl SimStats {
    /// Sum of all TLB lookups.
    pub fn total_accesses(&self) -> u64 {
        self.tlb_l1_hits + self.tlb_l2_hits + self.tlb_misses
    }

    /// Fraction of accesses that required a page walk.
    pub fn tlb_miss_rate(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.tlb_misses as f64 / total as f64
        }
    }

    /// Merge counters from another run (e.g. across cores).
    pub fn merge(&mut self, other: &SimStats) {
        self.tlb_l1_hits += other.tlb_l1_hits;
        self.tlb_l2_hits += other.tlb_l2_hits;
        self.tlb_misses += other.tlb_misses;
        self.walk_touches += other.walk_touches;
        self.walk_dram_touches += other.walk_dram_touches;
        self.data_dram_touches += other.data_dram_touches;
        self.soft_faults += other.soft_faults;
        self.mmap_calls += other.mmap_calls;
        self.ipis_sent += other.ipis_sent;
        self.remote_invalidations += other.remote_invalidations;
        self.total_ns += other.total_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_computation() {
        let s = SimStats {
            tlb_l1_hits: 6,
            tlb_l2_hits: 2,
            tlb_misses: 2,
            ..SimStats::default()
        };
        assert_eq!(s.total_accesses(), 10);
        assert!((s.tlb_miss_rate() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_miss_rate_is_zero() {
        assert_eq!(SimStats::default().tlb_miss_rate(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = SimStats {
            tlb_l1_hits: 1,
            total_ns: 10.0,
            ..Default::default()
        };
        let b = SimStats {
            tlb_l1_hits: 2,
            soft_faults: 3,
            total_ns: 5.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.tlb_l1_hits, 3);
        assert_eq!(a.soft_faults, 3);
        assert!((a.total_ns - 15.0).abs() < 1e-9);
    }
}
