//! Simulated physical frames and main-memory files.
//!
//! [`FrameAllocator`] hands out physical frame numbers; [`SimMemFile`] is
//! the model analogue of a `memfd` file: a resizable sequence of frames
//! addressed by page offset, providing the *handle to physical memory* that
//! rewiring needs.

use crate::addr::Pfn;

/// Allocator of simulated physical frames (with a free list, so freed
/// frames are reused — mirroring a real OS physical allocator closely
/// enough for cache-behaviour purposes).
#[derive(Debug, Default)]
pub struct FrameAllocator {
    next: u64,
    free: Vec<Pfn>,
    live: u64,
}

impl FrameAllocator {
    /// New allocator starting at frame 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate one frame.
    pub fn alloc(&mut self) -> Pfn {
        self.live += 1;
        self.free.pop().unwrap_or_else(|| {
            let f = Pfn(self.next);
            self.next += 1;
            f
        })
    }

    /// Return a frame to the allocator.
    pub fn free(&mut self, f: Pfn) {
        debug_assert!(!self.free.contains(&f), "double free of frame {f:?}");
        self.live -= 1;
        self.free.push(f);
    }

    /// Number of live (allocated, unfreed) frames.
    pub fn live_frames(&self) -> u64 {
        self.live
    }
}

/// A main-memory file: page-indexed frames, resizable like `ftruncate`.
#[derive(Debug, Default)]
pub struct SimMemFile {
    frames: Vec<Pfn>,
}

impl SimMemFile {
    /// An empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current length in pages.
    pub fn len_pages(&self) -> usize {
        self.frames.len()
    }

    /// Resize to `pages`: growing allocates fresh zero frames, shrinking
    /// returns the tail frames to the allocator.
    pub fn resize(&mut self, pages: usize, frames: &mut FrameAllocator) {
        while self.frames.len() < pages {
            self.frames.push(frames.alloc());
        }
        while self.frames.len() > pages {
            let f = self.frames.pop().expect("len > pages >= 0");
            frames.free(f);
        }
    }

    /// Frame backing file page `page`, if within the file.
    pub fn frame_at(&self, page: usize) -> Option<Pfn> {
        self.frames.get(page).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_reuses_freed_frames() {
        let mut a = FrameAllocator::new();
        let f0 = a.alloc();
        let f1 = a.alloc();
        assert_ne!(f0, f1);
        a.free(f0);
        let f2 = a.alloc();
        assert_eq!(f2, f0);
        assert_eq!(a.live_frames(), 2);
    }

    #[test]
    fn file_grow_and_shrink() {
        let mut a = FrameAllocator::new();
        let mut f = SimMemFile::new();
        f.resize(4, &mut a);
        assert_eq!(f.len_pages(), 4);
        assert_eq!(a.live_frames(), 4);
        let frame2 = f.frame_at(2).unwrap();
        f.resize(2, &mut a);
        assert_eq!(f.len_pages(), 2);
        assert_eq!(a.live_frames(), 2);
        assert_eq!(f.frame_at(2), None);
        // Regrowing reuses the freed frames (LIFO).
        f.resize(3, &mut a);
        assert!(f.frame_at(2).is_some());
        let _ = frame2;
    }

    #[test]
    fn distinct_pages_distinct_frames() {
        let mut a = FrameAllocator::new();
        let mut f = SimMemFile::new();
        f.resize(100, &mut a);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            assert!(seen.insert(f.frame_at(i).unwrap()));
        }
    }
}
