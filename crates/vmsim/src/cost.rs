//! Cost model: nanosecond charges for the events the simulator produces.
//!
//! The defaults approximate the paper's testbed (i7-12700KF, DDR5-4800).
//! They are deliberately round numbers — the simulator's job is to
//! reproduce *shapes* (crossovers, ratios), not absolute wall-clock times.

/// Nanosecond charges per event.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Base cost of executing one load through the core (includes L1/L2
    /// data cache on average).
    pub base_access_ns: f64,
    /// Extra cost of a last-level-cache hit.
    pub llc_hit_ns: f64,
    /// Extra cost of going to DRAM.
    pub dram_ns: f64,
    /// Extra cost of a lookup that hits the L2 TLB instead of the L1 TLB.
    pub tlb_l2_hit_ns: f64,
    /// A soft (minor) page fault: kernel entry, PTE installation.
    pub soft_fault_ns: f64,
    /// One `mmap` system call (reservation or rewiring).
    pub mmap_ns: f64,
    /// One `ftruncate` system call.
    pub ftruncate_ns: f64,
    /// Sending one inter-processor interrupt during a TLB shootdown,
    /// charged to the *initiating* core (paper §3.3 / reference \[2\]).
    pub ipi_send_ns: f64,
    /// Handling an incoming shootdown IPI on a remote core.
    pub ipi_receive_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base_access_ns: 2.0,
            llc_hit_ns: 12.0,
            dram_ns: 80.0,
            tlb_l2_hit_ns: 5.0,
            soft_fault_ns: 1200.0,
            mmap_ns: 1800.0,
            ftruncate_ns: 1500.0,
            ipi_send_ns: 1000.0,
            ipi_receive_ns: 400.0,
        }
    }
}

impl CostModel {
    /// Cost of one memory touch given whether it hit the cache model.
    #[inline]
    pub fn memory_touch_ns(&self, cache_hit: bool) -> f64 {
        if cache_hit {
            self.llc_hit_ns
        } else {
            self.dram_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_costs_more_than_cache() {
        let c = CostModel::default();
        assert!(c.memory_touch_ns(false) > c.memory_touch_ns(true));
    }

    #[test]
    fn syscalls_dominate_accesses() {
        let c = CostModel::default();
        assert!(c.mmap_ns > 10.0 * c.dram_ns);
        assert!(c.soft_fault_ns > c.dram_ns);
    }
}
