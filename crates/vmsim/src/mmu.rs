//! The per-core MMU: TLB hierarchy + hardware page walker + cache charging.
//!
//! An access first consults the TLBs (paper: "modern CPUs implement
//! hardware-accelerated lookups in the page table" and "the TLB caches the
//! most recent address translations"). On a TLB miss the 4-level walk
//! touches one page-table entry per level, each charged through the cache
//! model. If the PTE is absent, a soft page fault resolves the backing and
//! installs it — the expensive path that `MAP_POPULATE` avoids.

use crate::addr::{PhysAddr, VirtAddr};
use crate::address_space::{AddressSpace, MemError};
use crate::cache::{Cache, CacheConfig};
use crate::cost::CostModel;
use crate::stats::SimStats;
use crate::tlb::{TlbHierarchy, TlbHierarchyConfig, TlbLevel};

/// How a single access was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslationPath {
    /// L1 TLB hit.
    TlbL1,
    /// L2 TLB hit.
    TlbL2,
    /// TLB miss, page walk found the PTE.
    Walk,
    /// TLB miss, walk found no PTE, soft fault taken.
    Fault,
}

/// Result of one simulated memory access.
#[derive(Debug, Clone, Copy)]
pub struct AccessOutcome {
    /// Simulated cost of this access in nanoseconds.
    pub ns: f64,
    /// Path the translation took.
    pub path: TranslationPath,
}

/// One core's memory-management unit.
pub struct Mmu {
    /// TLB hierarchy of this core.
    pub tlb: TlbHierarchy,
    /// Cache model shared by data accesses and page walks on this core.
    pub cache: Cache,
    cost: CostModel,
    /// Accumulated statistics.
    pub stats: SimStats,
}

impl Mmu {
    /// Build an MMU with the given TLB/cache geometry and cost model.
    pub fn new(tlb_cfg: TlbHierarchyConfig, cache_cfg: CacheConfig, cost: CostModel) -> Self {
        Mmu {
            tlb: TlbHierarchy::new(tlb_cfg),
            cache: Cache::new(cache_cfg),
            cost,
            stats: SimStats::default(),
        }
    }

    /// Default geometry (paper's i7-12700KF) and default costs.
    pub fn with_defaults() -> Self {
        Self::new(
            TlbHierarchyConfig::default(),
            CacheConfig::llc_default(),
            CostModel::default(),
        )
    }

    /// Perform one data access at `addr`, translating through TLBs, walking
    /// the page table on a miss, faulting if the PTE is absent.
    pub fn access(
        &mut self,
        aspace: &mut AddressSpace,
        addr: VirtAddr,
    ) -> Result<AccessOutcome, MemError> {
        let vpn = addr.vpn();
        let mut ns = self.cost.base_access_ns;

        let (pfn, path) = match self.tlb.lookup(vpn) {
            (Some(pfn), TlbLevel::L1) => {
                self.stats.tlb_l1_hits += 1;
                (pfn, TranslationPath::TlbL1)
            }
            (Some(pfn), TlbLevel::L2 | TlbLevel::Miss) => {
                self.stats.tlb_l2_hits += 1;
                ns += self.cost.tlb_l2_hit_ns;
                (pfn, TranslationPath::TlbL2)
            }
            (None, _) => {
                self.stats.tlb_misses += 1;
                // Hardware page walk: each touched PTE goes through the cache.
                let walk = aspace.page_table().walk(vpn);
                for paddr in &walk.touched {
                    let hit = self.cache.access(*paddr);
                    self.stats.walk_touches += 1;
                    if !hit {
                        self.stats.walk_dram_touches += 1;
                    }
                    ns += self.cost.memory_touch_ns(hit);
                }
                match walk.pte {
                    Some(pte) => {
                        self.tlb.insert(vpn, pte.pfn);
                        (pte.pfn, TranslationPath::Walk)
                    }
                    None => {
                        // Soft fault: the OS resolves the backing, installs
                        // the PTE; the hardware then re-walks (we charge the
                        // fault constant, which subsumes the re-walk).
                        let pfn = aspace.fault(vpn)?;
                        ns += self.cost.soft_fault_ns;
                        self.stats.soft_faults += 1;
                        self.tlb.insert(vpn, pfn);
                        (pfn, TranslationPath::Fault)
                    }
                }
            }
        };

        // The data touch itself.
        let paddr = PhysAddr(pfn.base().0 + addr.page_offset());
        let hit = self.cache.access(paddr);
        if !hit {
            self.stats.data_dram_touches += 1;
        }
        ns += self.cost.memory_touch_ns(hit);

        self.stats.total_ns += ns;
        Ok(AccessOutcome { ns, path })
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Mmu, AddressSpace, VirtAddr) {
        let mut aspace = AddressSpace::new();
        let addr = aspace.mmap_anon(16);
        (Mmu::with_defaults(), aspace, addr)
    }

    #[test]
    fn first_touch_faults_then_hits_tlb() {
        let (mut mmu, mut aspace, addr) = setup();
        let o1 = mmu.access(&mut aspace, addr).unwrap();
        assert_eq!(o1.path, TranslationPath::Fault);
        let o2 = mmu.access(&mut aspace, addr).unwrap();
        assert_eq!(o2.path, TranslationPath::TlbL1);
        assert!(o2.ns < o1.ns, "TLB hit must be cheaper than fault");
    }

    #[test]
    fn populated_page_walks_without_fault() {
        let (mut mmu, mut aspace, addr) = setup();
        aspace.populate(addr.vpn()).unwrap();
        let o = mmu.access(&mut aspace, addr).unwrap();
        assert_eq!(o.path, TranslationPath::Walk);
        assert_eq!(mmu.stats.soft_faults, 0);
    }

    #[test]
    fn eager_population_makes_first_access_cheaper() {
        // The Table-1 effect: populate before accessing.
        let mut aspace = AddressSpace::new();
        let lazy_addr = aspace.mmap_anon(64);
        let eager_addr = aspace.mmap_anon(64);
        for i in 0..64 {
            aspace.populate(eager_addr.vpn().add(i)).unwrap();
        }
        let mut mmu_lazy = Mmu::with_defaults();
        let mut mmu_eager = Mmu::with_defaults();
        let mut lazy_ns = 0.0;
        let mut eager_ns = 0.0;
        for i in 0..64u64 {
            lazy_ns += mmu_lazy
                .access(&mut aspace, VirtAddr(lazy_addr.0 + i * 4096))
                .unwrap()
                .ns;
            eager_ns += mmu_eager
                .access(&mut aspace, VirtAddr(eager_addr.0 + i * 4096))
                .unwrap()
                .ns;
        }
        assert!(
            eager_ns * 2.0 < lazy_ns,
            "eager {eager_ns} should be much cheaper than lazy {lazy_ns}"
        );
    }

    #[test]
    fn unmapped_access_propagates_segfault() {
        let mut mmu = Mmu::with_defaults();
        let mut aspace = AddressSpace::new();
        assert!(mmu.access(&mut aspace, VirtAddr(0xdead_beef000)).is_err());
    }

    #[test]
    fn small_working_set_stops_missing_tlb() {
        let (mut mmu, mut aspace, addr) = setup();
        // 16 pages fit easily in the L1 TLB: after a warmup round,
        // everything should be L1 hits.
        for round in 0..3 {
            for i in 0..16u64 {
                let o = mmu
                    .access(&mut aspace, VirtAddr(addr.0 + i * 4096))
                    .unwrap();
                if round > 0 {
                    assert_eq!(o.path, TranslationPath::TlbL1);
                }
            }
        }
    }

    #[test]
    fn huge_working_set_thrashes_tlb() {
        // More pages than the L2 TLB has entries -> sustained misses.
        let mut mmu = Mmu::with_defaults();
        let mut aspace = AddressSpace::new();
        let pages = 8192; // > 3072 L2 entries
        let addr = aspace.mmap_anon(pages);
        for i in 0..pages as u64 {
            aspace.populate(addr.vpn().add(i)).unwrap();
        }
        // One sequential round to warm, then measure.
        for i in 0..pages as u64 {
            mmu.access(&mut aspace, VirtAddr(addr.0 + i * 4096))
                .unwrap();
        }
        let misses_before = mmu.stats.tlb_misses;
        for i in 0..pages as u64 {
            mmu.access(&mut aspace, VirtAddr(addr.0 + i * 4096))
                .unwrap();
        }
        let misses = mmu.stats.tlb_misses - misses_before;
        assert!(
            misses > (pages as u64) / 2,
            "expected sustained TLB misses, got {misses}/{pages}"
        );
    }
}
