//! # shortcut-vmsim — a software model of the virtual-memory subsystem
//!
//! The paper's experiments depend on hardware behaviour that is neither
//! observable nor controllable in most execution environments: TLB hit/miss
//! behaviour (§3.2), page-walk locality (§1, Figure 2), and inter-processor
//! TLB shootdowns (§3.3, Figure 5). This crate provides a deterministic,
//! fully-inspectable model of exactly those mechanisms:
//!
//! * a 4-level x86-64-style radix **page table** ([`page_table::PageTable`]),
//!   the "central hardware-accelerated index structure of the OS" the paper
//!   wants to put to work;
//! * a two-level, set-associative **TLB hierarchy** ([`tlb`]) sized like the
//!   paper's i7-12700KF (256 L1 entries / 3072 L2 entries for 4 KB pages);
//! * a physically-indexed **cache model** ([`cache`]) through which both
//!   data accesses and page-walk accesses are charged, reproducing the
//!   "larger virtual span ⇒ more expensive walks" effect behind Figure 4;
//! * **mmap semantics** ([`address_space`]): anonymous reservations,
//!   main-memory files, `MAP_FIXED` remapping that drops the PTE (paper
//!   §2.1 "Details"), `MAP_POPULATE`, and lazy faulting;
//! * a multi-core **TLB-shootdown model** ([`machine`]) in which remaps
//!   issue IPIs to every core that may cache the translation, charging the
//!   cost to the *shooting* core — the mechanism behind Figure 5.
//!
//! Costs are charged in nanoseconds through a configurable [`cost::CostModel`].
//! The simulator is deterministic: identical operation sequences produce
//! identical cost totals and statistics.

pub mod addr;
pub mod address_space;
pub mod cache;
pub mod cost;
pub mod machine;
pub mod memfile;
pub mod mmu;
pub mod page_table;
pub mod stats;
pub mod tlb;

pub use addr::{Pfn, PhysAddr, VirtAddr, Vpn, PAGE_SHIFT, PAGE_SIZE};
pub use address_space::{AddressSpace, MapKind, RegionId};
pub use cache::{Cache, CacheConfig};
pub use cost::CostModel;
pub use machine::{CoreId, Machine, MachineConfig};
pub use memfile::{FrameAllocator, SimMemFile};
pub use mmu::{AccessOutcome, Mmu, TranslationPath};
pub use page_table::PageTable;
pub use stats::SimStats;
pub use tlb::{Tlb, TlbConfig, TlbHierarchy, TlbHierarchyConfig};
