//! Set-associative TLB model with a two-level hierarchy.
//!
//! Defaults follow the paper's testbed (Intel i7-12700KF): an L1 TLB with
//! 256 entries for 4 KB pages and an L2 TLB with 3072 entries. Replacement
//! is LRU within each set. TLBs have **no hardware coherency** — exactly the
//! property §3.3 builds on — so stale entries persist until explicitly
//! invalidated (by a shootdown) or evicted.

use crate::addr::{Pfn, Vpn};

/// Geometry of one TLB level.
#[derive(Debug, Clone, Copy)]
pub struct TlbConfig {
    /// Total entry count (must be a multiple of `ways`).
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl TlbConfig {
    /// The paper's L1 dTLB: 256 entries for 4 KB pages, 4-way.
    pub fn l1_default() -> Self {
        TlbConfig {
            entries: 256,
            ways: 4,
        }
    }

    /// The paper's L2 sTLB: 3072 entries, 12-way (Alder Lake).
    pub fn l2_default() -> Self {
        TlbConfig {
            entries: 3072,
            ways: 12,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    vpn: Vpn,
    pfn: Pfn,
    /// Per-set LRU stamp; larger = more recently used.
    stamp: u64,
}

/// One set-associative TLB level.
#[derive(Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    sets: usize,
    slots: Vec<Option<Entry>>, // sets × ways
    tick: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl Tlb {
    /// Build a TLB with the given geometry.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.ways > 0 && cfg.entries > 0);
        assert_eq!(cfg.entries % cfg.ways, 0, "entries must divide into ways");
        let sets = cfg.entries / cfg.ways;
        Tlb {
            cfg,
            sets,
            slots: vec![None; cfg.entries],
            tick: 0,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    #[inline]
    fn set_of(&self, vpn: Vpn) -> usize {
        (vpn.0 as usize) % self.sets
    }

    #[inline]
    fn set_slots(&mut self, set: usize) -> &mut [Option<Entry>] {
        let w = self.cfg.ways;
        &mut self.slots[set * w..(set + 1) * w]
    }

    /// Look up a translation; updates LRU and hit/miss counters.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<Pfn> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(vpn);
        let mut found = None;
        for e in self.set_slots(set).iter_mut().flatten() {
            if e.vpn == vpn {
                e.stamp = tick;
                found = Some(e.pfn);
                break;
            }
        }
        match found {
            Some(pfn) => {
                self.hits += 1;
                Some(pfn)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without touching LRU or counters (used by the shootdown model
    /// to ask "does this core cache this translation?").
    pub fn contains(&self, vpn: Vpn) -> bool {
        let set = self.set_of(vpn);
        let w = self.cfg.ways;
        self.slots[set * w..(set + 1) * w]
            .iter()
            .flatten()
            .any(|e| e.vpn == vpn)
    }

    /// Insert a translation, evicting the set's LRU entry if needed.
    pub fn insert(&mut self, vpn: Vpn, pfn: Pfn) {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(vpn);
        let slots = self.set_slots(set);
        // Update in place if present.
        for e in slots.iter_mut().flatten() {
            if e.vpn == vpn {
                e.pfn = pfn;
                e.stamp = tick;
                return;
            }
        }
        // Free slot?
        for slot in slots.iter_mut() {
            if slot.is_none() {
                *slot = Some(Entry {
                    vpn,
                    pfn,
                    stamp: tick,
                });
                return;
            }
        }
        // Evict LRU.
        let lru = slots
            .iter_mut()
            .min_by_key(|s| s.as_ref().map(|e| e.stamp).unwrap_or(0))
            .expect("ways > 0");
        *lru = Some(Entry {
            vpn,
            pfn,
            stamp: tick,
        });
    }

    /// Drop the entry for `vpn` if cached. Returns whether one was dropped.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        let set = self.set_of(vpn);
        for slot in self.set_slots(set) {
            if matches!(slot, Some(e) if e.vpn == vpn) {
                *slot = None;
                self.invalidations += 1;
                return true;
            }
        }
        false
    }

    /// Drop everything (full flush).
    pub fn flush(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
    }

    /// (hits, misses, invalidations) so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.invalidations)
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().flatten().count()
    }
}

/// Configuration of a two-level TLB hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct TlbHierarchyConfig {
    /// L1 geometry.
    pub l1: TlbConfig,
    /// L2 geometry.
    pub l2: TlbConfig,
}

impl Default for TlbHierarchyConfig {
    fn default() -> Self {
        TlbHierarchyConfig {
            l1: TlbConfig::l1_default(),
            l2: TlbConfig::l2_default(),
        }
    }
}

/// Where a TLB lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLevel {
    /// Hit in the first-level TLB.
    L1,
    /// Miss in L1, hit in L2.
    L2,
    /// Miss in both: a page walk is required.
    Miss,
}

/// Two-level TLB as found on the paper's CPU.
#[derive(Debug)]
pub struct TlbHierarchy {
    /// First level (small, fast).
    pub l1: Tlb,
    /// Second level (large, slower).
    pub l2: Tlb,
}

impl TlbHierarchy {
    /// Build both levels from `cfg`.
    pub fn new(cfg: TlbHierarchyConfig) -> Self {
        TlbHierarchy {
            l1: Tlb::new(cfg.l1),
            l2: Tlb::new(cfg.l2),
        }
    }

    /// Hierarchical lookup: L1, then L2 (promoting on L2 hit).
    pub fn lookup(&mut self, vpn: Vpn) -> (Option<Pfn>, TlbLevel) {
        if let Some(pfn) = self.l1.lookup(vpn) {
            return (Some(pfn), TlbLevel::L1);
        }
        if let Some(pfn) = self.l2.lookup(vpn) {
            self.l1.insert(vpn, pfn);
            return (Some(pfn), TlbLevel::L2);
        }
        (None, TlbLevel::Miss)
    }

    /// Install a fresh translation in both levels (as a page walk does).
    pub fn insert(&mut self, vpn: Vpn, pfn: Pfn) {
        self.l1.insert(vpn, pfn);
        self.l2.insert(vpn, pfn);
    }

    /// Whether either level caches `vpn` (no LRU side effects).
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.l1.contains(vpn) || self.l2.contains(vpn)
    }

    /// Invalidate `vpn` in both levels; true if any entry was dropped.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        let a = self.l1.invalidate(vpn);
        let b = self.l2.invalidate(vpn);
        a || b
    }

    /// Full flush of both levels.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }
}

impl Default for TlbHierarchy {
    fn default() -> Self {
        Self::new(TlbHierarchyConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 8,
            ways: 2,
        }) // 4 sets × 2 ways
    }

    #[test]
    fn hit_after_insert() {
        let mut t = tiny();
        assert_eq!(t.lookup(Vpn(1)), None);
        t.insert(Vpn(1), Pfn(10));
        assert_eq!(t.lookup(Vpn(1)), Some(Pfn(10)));
        let (h, m, _) = t.counters();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest_in_set() {
        let mut t = tiny(); // set = vpn % 4
                            // Three VPNs mapping to set 0: 0, 4, 8. Two ways.
        t.insert(Vpn(0), Pfn(100));
        t.insert(Vpn(4), Pfn(104));
        assert_eq!(t.lookup(Vpn(0)), Some(Pfn(100))); // 0 now MRU
        t.insert(Vpn(8), Pfn(108)); // evicts 4 (LRU)
        assert_eq!(t.lookup(Vpn(4)), None);
        assert_eq!(t.lookup(Vpn(0)), Some(Pfn(100)));
        assert_eq!(t.lookup(Vpn(8)), Some(Pfn(108)));
    }

    #[test]
    fn insert_updates_existing() {
        let mut t = tiny();
        t.insert(Vpn(3), Pfn(1));
        t.insert(Vpn(3), Pfn(2));
        assert_eq!(t.lookup(Vpn(3)), Some(Pfn(2)));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn invalidate_drops_entry() {
        let mut t = tiny();
        t.insert(Vpn(5), Pfn(1));
        assert!(t.contains(Vpn(5)));
        assert!(t.invalidate(Vpn(5)));
        assert!(!t.contains(Vpn(5)));
        assert!(!t.invalidate(Vpn(5)));
    }

    #[test]
    fn flush_empties() {
        let mut t = tiny();
        for i in 0..8 {
            t.insert(Vpn(i), Pfn(i));
        }
        assert!(t.occupancy() > 0);
        t.flush();
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn hierarchy_promotes_l2_hits() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig {
            l1: TlbConfig {
                entries: 2,
                ways: 1,
            },
            l2: TlbConfig {
                entries: 8,
                ways: 2,
            },
        });
        h.insert(Vpn(0), Pfn(7));
        // Evict from tiny L1 by inserting a conflicting page (set = vpn % 2).
        h.l1.insert(Vpn(2), Pfn(9));
        let (pfn, lvl) = h.lookup(Vpn(0));
        assert_eq!(pfn, Some(Pfn(7)));
        assert_eq!(lvl, TlbLevel::L2);
        // Promoted back to L1 now.
        let (_, lvl2) = h.lookup(Vpn(0));
        assert_eq!(lvl2, TlbLevel::L1);
    }

    #[test]
    fn hierarchy_miss_reports_miss() {
        let mut h = TlbHierarchy::default();
        let (pfn, lvl) = h.lookup(Vpn(42));
        assert_eq!(pfn, None);
        assert_eq!(lvl, TlbLevel::Miss);
    }

    #[test]
    fn capacity_matches_paper_defaults() {
        let cfg = TlbHierarchyConfig::default();
        assert_eq!(cfg.l1.entries, 256);
        assert_eq!(cfg.l2.entries, 3072);
        // A working set of 256 pages fits L1 entirely.
        let mut h = TlbHierarchy::new(cfg);
        for i in 0..256u64 {
            h.insert(Vpn(i), Pfn(i));
        }
        for i in 0..256u64 {
            let (pfn, lvl) = h.lookup(Vpn(i));
            assert_eq!(pfn, Some(Pfn(i)));
            assert_eq!(lvl, TlbLevel::L1, "page {i} should still hit L1");
        }
    }
}
