//! Asynchronous shortcut maintenance (paper §4.1).
//!
//! All directory-modifying operations are reflected synchronously in the
//! *traditional* directory; the shortcut directory replays them
//! asynchronously. Coordination runs through a concurrent lock-free FIFO
//! queue ([`crossbeam::queue::SegQueue`]):
//!
//! * **Update** — after a bucket split, two (or more) slots must be
//!   remapped; the index pushes one request per slot carrying the slot
//!   index and the pool page (file offset) to map it to.
//! * **Create** — after a directory doubling, the old shortcut is obsolete;
//!   the index pushes the new slot count plus the full assignment vector.
//!   Pending updates that precede a create are superseded and discarded.
//!
//! A separate **mapper thread** polls the queue at a fixed interval (the
//! paper found 25 ms to work well), executes requests, eagerly populates
//! the page table, and only then stamps the shortcut's version — so no
//! access through an in-sync shortcut ever takes a page fault.
//!
//! Retired shortcut areas (after a create) stay mapped until the
//! [`Maintainer`] is dropped: a reader that raced a rebuild reads stale but
//! *mapped* memory, and the seqlock ticket makes it discard the value.

use crate::metrics::{MaintMetrics, MaintSnapshot};
use crate::shortcut_node::ShortcutNode;
use crate::version::SharedDirectoryState;
use crossbeam::queue::SegQueue;
use parking_lot::{Condvar, Mutex};
use shortcut_rewire::{Error, PageIdx, PoolHandle, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A maintenance request, as pushed by the index's main thread.
#[derive(Debug, Clone)]
pub enum MaintRequest {
    /// Remap one slot of the current shortcut (bucket split).
    Update {
        /// Slot to remap.
        slot: usize,
        /// Pool page of the bucket it must reference.
        ppage: PageIdx,
        /// Traditional-directory version this update brings us to.
        version: u64,
    },
    /// Replace the shortcut with a fresh one (directory doubling).
    Create {
        /// Slot count of the new directory.
        slots: usize,
        /// Complete `(slot, pool page)` assignment, sorted by slot.
        assignments: Vec<(usize, PageIdx)>,
        /// Traditional-directory version this rebuild reflects.
        version: u64,
    },
}

impl MaintRequest {
    fn version(&self) -> u64 {
        match self {
            MaintRequest::Update { version, .. } | MaintRequest::Create { version, .. } => *version,
        }
    }
}

/// Mapper configuration.
#[derive(Debug, Clone)]
pub struct MaintConfig {
    /// Queue polling interval of the mapper thread (paper: 25 ms).
    pub poll_interval: Duration,
    /// Whether rewirings eagerly populate the page table (`MAP_POPULATE`).
    /// The paper's design always populates before bumping the version.
    pub eager_populate: bool,
}

impl Default for MaintConfig {
    fn default() -> Self {
        MaintConfig {
            poll_interval: Duration::from_millis(25),
            eager_populate: true,
        }
    }
}

/// The synchronous core of the mapper: applies requests to the shortcut it
/// owns. Separated from the thread so the logic is unit-testable and so
/// benches can drive maintenance deterministically.
pub struct MapperEngine {
    pool: PoolHandle,
    state: Arc<SharedDirectoryState>,
    metrics: Arc<MaintMetrics>,
    cfg: MaintConfig,
    current: Option<ShortcutNode>,
    /// Replaced areas, kept mapped for reader safety (see module docs).
    retired: Vec<ShortcutNode>,
}

impl MapperEngine {
    /// Build an engine that maintains shortcuts over `pool`.
    pub fn new(
        pool: PoolHandle,
        state: Arc<SharedDirectoryState>,
        metrics: Arc<MaintMetrics>,
        cfg: MaintConfig,
    ) -> Self {
        MapperEngine {
            pool,
            state,
            metrics,
            cfg,
            current: None,
            retired: Vec::new(),
        }
    }

    /// Apply a batch of requests in FIFO order, honoring supersession: only
    /// the *last* create in the batch is executed, and updates older than it
    /// are discarded. Returns the number of requests consumed.
    pub fn apply_batch(&mut self, batch: Vec<MaintRequest>) -> Result<usize> {
        if batch.is_empty() {
            return Ok(0);
        }
        let n = batch.len();
        // Find the last create; everything before it is superseded.
        let last_create = batch
            .iter()
            .rposition(|r| matches!(r, MaintRequest::Create { .. }));
        let start = match last_create {
            Some(i) => {
                let discarded = batch[..i]
                    .iter()
                    .filter(|r| matches!(r, MaintRequest::Update { .. }))
                    .count();
                self.metrics
                    .updates_discarded
                    .fetch_add(discarded as u64, Ordering::Relaxed);
                i
            }
            None => 0,
        };
        for req in batch.into_iter().skip(start) {
            self.apply_one(req)?;
        }
        Ok(n)
    }

    fn apply_one(&mut self, req: MaintRequest) -> Result<()> {
        let version = req.version();
        match req {
            MaintRequest::Update { slot, ppage, .. } => {
                let node = match self.current.as_mut() {
                    Some(n) if slot < n.slots() => n,
                    _ => {
                        // Stale update (raced a rebuild that shrank… or no
                        // node yet). Protocol-respecting producers never hit
                        // this; drop defensively.
                        self.metrics
                            .updates_discarded
                            .fetch_add(1, Ordering::Relaxed);
                        return Ok(());
                    }
                };
                node.set_slot(slot, &self.pool, ppage)?;
                if self.cfg.eager_populate {
                    // Touch just the remapped slot to install its PTE.
                    // SAFETY: slot was just rewired to a valid pool page.
                    unsafe {
                        std::ptr::read_volatile(node.slot_ptr(slot));
                    }
                    self.metrics.pages_populated.fetch_add(1, Ordering::Relaxed);
                }
                self.metrics.updates_applied.fetch_add(1, Ordering::Relaxed);
                self.metrics.slots_rewired.fetch_add(1, Ordering::Relaxed);
                let node = self.current.as_ref().expect("checked above");
                self.state.publish(node.base(), node.slots(), version);
            }
            MaintRequest::Create {
                slots, assignments, ..
            } => {
                let mut node = if self.cfg.eager_populate {
                    ShortcutNode::new_populated(slots)?
                } else {
                    ShortcutNode::new(slots)?
                };
                let calls = node.set_batch(&self.pool, &assignments)?;
                if self.cfg.eager_populate {
                    let touched = node.populate();
                    self.metrics
                        .pages_populated
                        .fetch_add(touched as u64, Ordering::Relaxed);
                }
                self.metrics.creates_applied.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .slots_rewired
                    .fetch_add(assignments.len() as u64, Ordering::Relaxed);
                self.metrics
                    .create_mmap_calls
                    .fetch_add(calls, Ordering::Relaxed);
                self.state.publish(node.base(), node.slots(), version);
                if let Some(old) = self.current.replace(node) {
                    self.retired.push(old);
                }
            }
        }
        Ok(())
    }

    /// The node currently serving the shortcut, if any.
    pub fn current(&self) -> Option<&ShortcutNode> {
        self.current.as_ref()
    }

    /// Number of retired (still mapped) areas.
    pub fn retired_count(&self) -> usize {
        self.retired.len()
    }
}

/// Handle owning the mapper thread. Dropping it stops and joins the thread
/// (and only then unmaps all shortcut areas, current and retired).
pub struct Maintainer {
    queue: Arc<SegQueue<MaintRequest>>,
    state: Arc<SharedDirectoryState>,
    metrics: Arc<MaintMetrics>,
    stop: Arc<AtomicBool>,
    stop_signal: Arc<(Mutex<()>, Condvar)>,
    error: Arc<Mutex<Option<Error>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Maintainer {
    /// Spawn the mapper thread over `pool`.
    pub fn spawn(pool: PoolHandle, cfg: MaintConfig) -> Self {
        let queue: Arc<SegQueue<MaintRequest>> = Arc::new(SegQueue::new());
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let stop = Arc::new(AtomicBool::new(false));
        let stop_signal: Arc<(Mutex<()>, Condvar)> = Arc::new((Mutex::new(()), Condvar::new()));
        let error: Arc<Mutex<Option<Error>>> = Arc::new(Mutex::new(None));

        let t_queue = Arc::clone(&queue);
        let t_state = Arc::clone(&state);
        let t_metrics = Arc::clone(&metrics);
        let t_stop = Arc::clone(&stop);
        let t_signal = Arc::clone(&stop_signal);
        let t_error = Arc::clone(&error);
        let poll = cfg.poll_interval;

        let handle = std::thread::Builder::new()
            .name("shortcut-mapper".into())
            .spawn(move || {
                let mut engine = MapperEngine::new(pool, t_state, Arc::clone(&t_metrics), cfg);
                loop {
                    let mut batch = Vec::new();
                    while let Some(req) = t_queue.pop() {
                        batch.push(req);
                    }
                    if batch.is_empty() {
                        t_metrics.idle_polls.fetch_add(1, Ordering::Relaxed);
                        if t_stop.load(Ordering::Acquire) {
                            break;
                        }
                        // Wait out the poll interval on a condvar so Drop
                        // can interrupt immediately (a sliced sleep would
                        // both oversleep on coarse-timer hosts and delay
                        // shutdown).
                        let (lock, cv) = &*t_signal;
                        let mut guard = lock.lock();
                        if !t_stop.load(Ordering::Acquire) {
                            cv.wait_for(&mut guard, poll);
                        }
                        continue;
                    }
                    t_metrics.busy_polls.fetch_add(1, Ordering::Relaxed);
                    if let Err(e) = engine.apply_batch(batch) {
                        *t_error.lock() = Some(e);
                        break;
                    }
                    // Drain again immediately after work: insert bursts
                    // enqueue faster than one batch per poll.
                }
            })
            .expect("failed to spawn mapper thread");

        Maintainer {
            queue,
            state,
            metrics,
            stop,
            stop_signal,
            error,
            handle: Some(handle),
        }
    }

    /// Shared version/publication state (for readers).
    #[inline]
    pub fn state(&self) -> &Arc<SharedDirectoryState> {
        &self.state
    }

    /// Enqueue a request.
    pub fn submit(&self, req: MaintRequest) {
        self.queue.push(req);
    }

    /// Pop all *pending* requests (the paper's main thread does this right
    /// before pushing a create, as they became outdated). Returns how many
    /// were dropped.
    pub fn drop_pending(&self) -> usize {
        let mut n = 0;
        while self.queue.pop().is_some() {
            n += 1;
        }
        n
    }

    /// Current queue length (approximate, lock-free).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Maintenance counters.
    pub fn metrics(&self) -> MaintSnapshot {
        self.metrics.snapshot()
    }

    /// First error the mapper hit, if any.
    pub fn error(&self) -> Option<Error> {
        self.error.lock().clone()
    }

    /// Block until the shortcut is in sync with the traditional directory
    /// (or `timeout` elapses). Returns whether sync was reached. Test and
    /// benchmark helper; production readers never wait, they just fall back.
    pub fn wait_sync(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.error.lock().is_some() {
                return false;
            }
            if self.pending() == 0 && self.state.in_sync() {
                return true;
            }
            std::thread::yield_now();
            std::thread::sleep(Duration::from_millis(1));
        }
        self.pending() == 0 && self.state.in_sync()
    }
}

impl Drop for Maintainer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the mapper if it is waiting out a poll interval.
        let (lock, cv) = &*self.stop_signal;
        {
            let _guard = lock.lock();
            cv.notify_all();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcut_rewire::{PagePool, PoolConfig};

    fn pool() -> PagePool {
        PagePool::new(PoolConfig {
            initial_pages: 16,
            min_growth_pages: 16,
            view_capacity_pages: 4096,
            ..PoolConfig::default()
        })
        .unwrap()
    }

    fn stamp(pool: &PagePool, p: PageIdx, v: u64) {
        unsafe {
            *(pool.page_ptr(p) as *mut u64) = v;
        }
    }

    #[test]
    fn engine_create_publishes_in_sync() {
        let mut pl = pool();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            metrics,
            MaintConfig::default(),
        );
        let l0 = pl.alloc_page().unwrap();
        let l1 = pl.alloc_page().unwrap();
        stamp(&pl, l0, 10);
        stamp(&pl, l1, 11);

        let v = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots: 2,
            assignments: vec![(0, l0), (1, l1)],
            version: v,
        }])
        .unwrap();
        assert!(state.in_sync());
        let t = state.begin_read().unwrap();
        unsafe {
            assert_eq!(*(t.base as *const u64), 10);
            assert_eq!(*(t.base.add(4096) as *const u64), 11);
        }
        assert!(state.still_valid(t));
    }

    #[test]
    fn engine_update_remaps_single_slot() {
        let mut pl = pool();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            Arc::clone(&metrics),
            MaintConfig::default(),
        );
        let l0 = pl.alloc_page().unwrap();
        let l1 = pl.alloc_page().unwrap();
        stamp(&pl, l0, 10);
        stamp(&pl, l1, 11);

        let v1 = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots: 2,
            assignments: vec![(0, l0), (1, l0)],
            version: v1,
        }])
        .unwrap();

        let v2 = state.bump_traditional();
        assert!(!state.in_sync());
        eng.apply_batch(vec![MaintRequest::Update {
            slot: 1,
            ppage: l1,
            version: v2,
        }])
        .unwrap();
        assert!(state.in_sync());
        let t = state.begin_read().unwrap();
        unsafe {
            assert_eq!(*(t.base as *const u64), 10);
            assert_eq!(*(t.base.add(4096) as *const u64), 11);
        }
        assert_eq!(metrics.snapshot().updates_applied, 1);
    }

    #[test]
    fn create_supersedes_older_updates() {
        let mut pl = pool();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            Arc::clone(&metrics),
            MaintConfig::default(),
        );
        let l0 = pl.alloc_page().unwrap();
        let l1 = pl.alloc_page().unwrap();

        let v1 = state.bump_traditional();
        let v2 = state.bump_traditional();
        let v3 = state.bump_traditional();
        // Updates for v1/v2 arrive together with the create for v3.
        eng.apply_batch(vec![
            MaintRequest::Update {
                slot: 0,
                ppage: l0,
                version: v1,
            },
            MaintRequest::Update {
                slot: 1,
                ppage: l1,
                version: v2,
            },
            MaintRequest::Create {
                slots: 4,
                assignments: vec![(0, l0), (1, l0), (2, l1), (3, l1)],
                version: v3,
            },
        ])
        .unwrap();
        let s = metrics.snapshot();
        assert_eq!(s.updates_discarded, 2);
        assert_eq!(s.creates_applied, 1);
        assert!(state.in_sync());
        assert_eq!(state.begin_read().unwrap().slots, 4);
    }

    #[test]
    fn update_after_create_in_same_batch_applies() {
        let mut pl = pool();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            Arc::clone(&metrics),
            MaintConfig::default(),
        );
        let l0 = pl.alloc_page().unwrap();
        let l1 = pl.alloc_page().unwrap();
        stamp(&pl, l1, 42);

        let v1 = state.bump_traditional();
        let v2 = state.bump_traditional();
        eng.apply_batch(vec![
            MaintRequest::Create {
                slots: 2,
                assignments: vec![(0, l0), (1, l0)],
                version: v1,
            },
            MaintRequest::Update {
                slot: 1,
                ppage: l1,
                version: v2,
            },
        ])
        .unwrap();
        assert!(state.in_sync());
        let t = state.begin_read().unwrap();
        unsafe {
            assert_eq!(*(t.base.add(4096) as *const u64), 42);
        }
    }

    #[test]
    fn retired_areas_stay_mapped() {
        let mut pl = pool();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            metrics,
            MaintConfig::default(),
        );
        let l0 = pl.alloc_page().unwrap();
        stamp(&pl, l0, 7);

        let v1 = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots: 1,
            assignments: vec![(0, l0)],
            version: v1,
        }])
        .unwrap();
        let old_base = state.begin_read().unwrap().base;

        let v2 = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots: 2,
            assignments: vec![(0, l0), (1, l0)],
            version: v2,
        }])
        .unwrap();
        assert_eq!(eng.retired_count(), 1);
        // The old base is still readable (stale but mapped).
        unsafe {
            assert_eq!(*(old_base as *const u64), 7);
        }
    }

    #[test]
    fn update_without_node_is_discarded_not_fatal() {
        let pl = pool();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            Arc::clone(&metrics),
            MaintConfig::default(),
        );
        let v = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Update {
            slot: 0,
            ppage: PageIdx(0),
            version: v,
        }])
        .unwrap();
        assert_eq!(metrics.snapshot().updates_discarded, 1);
        assert!(!state.in_sync());
    }

    #[test]
    fn threaded_maintainer_reaches_sync() {
        let mut pl = pool();
        let l0 = pl.alloc_page().unwrap();
        let l1 = pl.alloc_page().unwrap();
        stamp(&pl, l0, 100);
        stamp(&pl, l1, 200);

        let m = Maintainer::spawn(
            pl.handle(),
            MaintConfig {
                poll_interval: Duration::from_millis(1),
                ..MaintConfig::default()
            },
        );
        let v = m.state().bump_traditional();
        m.submit(MaintRequest::Create {
            slots: 2,
            assignments: vec![(0, l0), (1, l1)],
            version: v,
        });
        assert!(m.wait_sync(Duration::from_secs(5)), "mapper never synced");
        let t = m.state().begin_read().unwrap();
        unsafe {
            assert_eq!(*(t.base as *const u64), 100);
            assert_eq!(*(t.base.add(4096) as *const u64), 200);
        }
        assert!(m.state().still_valid(t));
        assert!(m.error().is_none());
    }

    #[test]
    fn threaded_maintainer_processes_update_stream() {
        let mut pl = pool();
        let pages: Vec<PageIdx> = (0..8).map(|_| pl.alloc_page().unwrap()).collect();
        for (i, p) in pages.iter().enumerate() {
            stamp(&pl, *p, 1000 + i as u64);
        }
        let m = Maintainer::spawn(
            pl.handle(),
            MaintConfig {
                poll_interval: Duration::from_millis(1),
                ..MaintConfig::default()
            },
        );
        let v = m.state().bump_traditional();
        m.submit(MaintRequest::Create {
            slots: 8,
            assignments: (0..8).map(|i| (i, pages[0])).collect(),
            version: v,
        });
        // Stream of split-style updates.
        for (i, p) in pages.iter().enumerate() {
            let v = m.state().bump_traditional();
            m.submit(MaintRequest::Update {
                slot: i,
                ppage: *p,
                version: v,
            });
        }
        assert!(m.wait_sync(Duration::from_secs(5)));
        let t = m.state().begin_read().unwrap();
        for i in 0..8 {
            unsafe {
                assert_eq!(*(t.base.add(i * 4096) as *const u64), 1000 + i as u64);
            }
        }
        assert!(m.error().is_none());
        let s = m.metrics();
        assert_eq!(s.creates_applied, 1);
        assert!(s.updates_applied + s.updates_discarded >= 8);
    }

    #[test]
    fn drop_pending_empties_queue() {
        let pl = pool();
        let m = Maintainer::spawn(
            pl.handle(),
            MaintConfig {
                // Long interval so requests stay queued.
                poll_interval: Duration::from_secs(60),
                ..MaintConfig::default()
            },
        );
        // Give the thread a moment to enter its sleep.
        std::thread::sleep(Duration::from_millis(20));
        for i in 0..5 {
            m.submit(MaintRequest::Update {
                slot: i,
                ppage: PageIdx(0),
                version: i as u64 + 1,
            });
        }
        let dropped = m.drop_pending();
        assert!(dropped <= 5);
        assert_eq!(m.pending(), 0);
    }
}
