//! Asynchronous shortcut maintenance (paper §4.1).
//!
//! All directory-modifying operations are reflected synchronously in the
//! *traditional* directory; the shortcut directory replays them
//! asynchronously. Coordination runs through a concurrent lock-free FIFO
//! queue ([`crossbeam::queue::SegQueue`]):
//!
//! * **Update** — after a bucket split, two (or more) slots must be
//!   remapped; the index pushes one request per slot carrying the slot
//!   index and the pool page (file offset) to map it to.
//! * **Create** — after a directory doubling, the old shortcut is obsolete;
//!   the index pushes the new slot count plus the full assignment vector.
//!   Pending updates that precede a create are superseded and discarded.
//!
//! A separate **mapper thread** polls the queue at a fixed interval (the
//! paper found 25 ms to work well), executes requests, eagerly populates
//! the page table, and only then stamps the shortcut's version — so no
//! access through an in-sync shortcut ever takes a page fault.
//!
//! **Retired-area lifecycle.** A create supersedes the previous shortcut
//! area. It is *retired* into the pool's [`shortcut_rewire::RetireList`]
//! (epoch-stamped, kept mapped): a reader that raced the rebuild reads
//! stale but *mapped* memory and the seqlock ticket makes it discard the
//! value. On every poll tick the mapper drives reclamation — a retired
//! area is munmapped once every reader pin taken before its retirement has
//! drained — so VMA use plateaus at roughly the live directory instead of
//! growing with every doubling as it did in the seed.
//!
//! **VMA budget.** Before building a directory the mapper asks the pool's
//! [`shortcut_rewire::VmaBudget`] whether the rebuild's mapping footprint
//! fits under `vm.max_map_count`. If not (even after retiring the stale
//! current area and reclaiming), the create is **skipped** and the state
//! is marked *suspended*: lookups keep working through the traditional
//! directory, and the index no longer dies inside `mmap` with `ENOMEM`.

use crate::metrics::{MaintMetrics, MaintSnapshot};
use crate::shortcut_node::ShortcutNode;
use crate::version::SharedDirectoryState;
use crossbeam::queue::SegQueue;
use parking_lot::{Condvar, Mutex};
use shortcut_rewire::{Error, PageIdx, PoolHandle, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Mappings left unaccounted for the rest of the process (binary, heap,
/// stacks, the pool view's transient splits) when admitting a rebuild.
/// Re-exported from the budget layer (where fair-share arithmetic needs
/// the same number) so producers — the write path's suspension rescue —
/// can target exactly what admission will accept.
pub use shortcut_rewire::budget_headroom;

/// Maximum coarsening of the published shortcut depth (up to 2⁴ = 16×
/// fewer slots) tried by rebuild admission before a create is refused.
pub const MAX_PUBLISH_SHIFT: u32 = 4;

/// Derive the `shift`-coarser directory from a **full** assignment vector
/// (`assignments[i].0 == i`): coarse slot `s` maps the page of its first
/// covered fine slot. Buckets with `local_depth ≤ published_depth` cover
/// whole coarse slots, so they resolve exactly; deeper buckets share a
/// coarse slot with a sibling and are detected by readers via the
/// bucket's stored local depth (they fall back to the traditional
/// directory for those keys).
fn coarsen_assignments(assignments: &[(usize, PageIdx)], shift: u32) -> Vec<(usize, PageIdx)> {
    let coarse_slots = assignments.len() >> shift;
    (0..coarse_slots)
        .map(|s| {
            let (slot, page) = assignments[s << shift];
            debug_assert_eq!(slot, s << shift, "assignments must be full and sorted");
            (s, page)
        })
        .collect()
}

/// Service census of a **full, sorted** assignment vector: `resolvable[s]`
/// counts the buckets — maximal runs of consecutive slots mapping the same
/// pool slot, which are exactly the covering ranges — that span at least
/// `2^s` fine slots, i.e. whose local depth still fits a publish `s`
/// levels coarser. Those are the buckets such a publish resolves through
/// the shortcut; deeper buckets fall back per key via the reader-side
/// local-depth check. Returns `(total_buckets, resolvable)`.
pub fn service_census(assignments: &[(usize, PageIdx)], max_shift: u32) -> (usize, Vec<usize>) {
    let mut total = 0usize;
    let mut resolvable = vec![0usize; max_shift as usize + 1];
    let mut i = 0;
    while i < assignments.len() {
        let page = assignments[i].1;
        let mut run = 1;
        while i + run < assignments.len() && assignments[i + run].1 == page {
            run += 1;
        }
        total += 1;
        for (s, r) in resolvable.iter_mut().enumerate() {
            if run >= (1usize << s) {
                *r += 1;
            }
        }
        i += run;
    }
    (total, resolvable)
}

/// A maintenance request, as pushed by the index's main thread.
#[derive(Debug, Clone)]
pub enum MaintRequest {
    /// Remap one slot of the current shortcut (bucket split).
    Update {
        /// Slot to remap.
        slot: usize,
        /// Pool page of the bucket it must reference.
        ppage: PageIdx,
        /// Traditional-directory version this update brings us to.
        version: u64,
    },
    /// Replace the shortcut with a fresh one (directory doubling).
    Create {
        /// Slot count of the new directory.
        slots: usize,
        /// Complete `(slot, pool page)` assignment, sorted by slot.
        assignments: Vec<(usize, PageIdx)>,
        /// Traditional-directory version this rebuild reflects.
        version: u64,
    },
}

impl MaintRequest {
    fn version(&self) -> u64 {
        match self {
            MaintRequest::Update { version, .. } | MaintRequest::Create { version, .. } => *version,
        }
    }
}

/// Policy for physically compacting bucket pages into directory order.
///
/// A scattered bucket layout costs roughly one VMA per directory slot
/// (adjacent slots map non-consecutive pool offsets, so the kernel cannot
/// merge them); laid out in directory order, fan-in-1 runs become identity
/// mappings that collapse into a handful of VMAs. The *decision* to
/// compact is made here in the maintenance layer — the mapper's poll loop
/// watches the live footprint and raises
/// [`SharedDirectoryState::set_compaction_wanted`], and rebuild admission
/// switches from worst-case to layout-exact reservations — while the
/// physical page moves execute on the index's write path, the only place
/// with exclusive access to the bucket pages.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// Compact during directory doublings: the rebuild's assignment vector
    /// is then an identity run over freshly placed pages, so the Create
    /// the mapper receives coalesces into a handful of `mmap` calls and
    /// VMAs — the pass rides a moment that already rebuilds everything.
    pub on_rebuild: bool,
    /// Buckets moved per write-path step while an incremental background
    /// plan is active (0 disables background compaction; the trigger flag
    /// is then ignored). Splits between doublings fragment the layout a
    /// few VMAs at a time; background moves repair it without a
    /// stop-the-world pass.
    pub background_moves: usize,
    /// The mapper requests compaction once the live directory's VMA
    /// estimate exceeds this fraction of the budget limit (floored at
    /// [`CompactionPolicy::TRIGGER_FLOOR`]; cleared again below half the
    /// trigger for hysteresis).
    pub trigger_fraction: f64,
}

impl CompactionPolicy {
    /// Minimum absolute trigger, so tiny directories do not cause
    /// busywork compactions. Small enough that injected test budgets
    /// (hundreds of mappings) still exercise the trigger path.
    pub const TRIGGER_FLOOR: usize = 64;

    /// Compaction fully disabled — the PR 3 behavior (worst-case rebuild
    /// admission, no page relocation). This is the default.
    pub fn disabled() -> Self {
        CompactionPolicy {
            on_rebuild: false,
            background_moves: 0,
            trigger_fraction: 0.25,
        }
    }

    /// The recommended production policy: compact at every doubling and
    /// repair split-driven fragmentation with 32 background moves per
    /// write-path step once the footprint passes a quarter of the budget.
    pub fn on() -> Self {
        CompactionPolicy {
            on_rebuild: true,
            background_moves: 32,
            trigger_fraction: 0.25,
        }
    }

    /// Whether any form of compaction is active (this also switches
    /// rebuild admission from worst-case to layout-exact reservations,
    /// because compaction bounds how far the layout can fragment).
    pub fn enabled(&self) -> bool {
        self.on_rebuild || self.background_moves > 0
    }

    /// The VMA estimate above which the mapper raises the compaction flag.
    pub fn trigger_vmas(&self, budget_limit: usize) -> usize {
        ((budget_limit as f64 * self.trigger_fraction) as usize).max(Self::TRIGGER_FLOOR)
    }
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Mapper configuration.
#[derive(Debug, Clone)]
pub struct MaintConfig {
    /// Queue polling interval of the mapper thread (paper: 25 ms).
    pub poll_interval: Duration,
    /// Whether rewirings eagerly populate the page table (`MAP_POPULATE`).
    /// The paper's design always populates before bumping the version.
    pub eager_populate: bool,
    /// Whether superseded directories are retired into the pool's
    /// [`shortcut_rewire::RetireList`] and reclaimed once readers drain,
    /// with rebuilds admission-checked against the pool's VMA budget.
    /// `false` restores the seed's keep-everything-mapped behavior (VMA
    /// use then grows with every doubling until `vm.max_map_count`).
    pub reclaim: bool,
    /// Physical bucket-layout compaction (see [`CompactionPolicy`];
    /// default disabled).
    pub compaction: CompactionPolicy,
    /// Stagger this mapper's effective poll interval against the other
    /// mappers in the process (see [`staggered_poll_interval`]). On by
    /// default: the first mapper keeps `poll_interval` exactly, so a
    /// single-index process is unaffected, while N sharded mappers
    /// spawned together spread their reclaim/compaction ticks instead of
    /// scanning in lockstep. Set `false` to pin the interval (tests that
    /// reason about exact tick counts).
    pub poll_stagger: bool,
}

impl Default for MaintConfig {
    fn default() -> Self {
        MaintConfig {
            poll_interval: Duration::from_millis(25),
            eager_populate: true,
            reclaim: true,
            compaction: CompactionPolicy::default(),
            poll_stagger: true,
        }
    }
}

/// Deterministic per-mapper poll staggering: mapper number `seq` (in
/// process-wide spawn order) polls every `base + base * step/256`, where
/// `step` walks 1..=64 — i.e. up to +25 % of the base, in distinct
/// increments for up to 64 co-resident mappers. Mapper 0 keeps `base`
/// exactly. Two mappers started together therefore *cannot* share a
/// period, so their idle ticks (reclaim scans, compaction triggers,
/// deferred-create retries) drift apart instead of thundering onto the
/// shared budget at the same instant.
pub fn staggered_poll_interval(base: Duration, seq: usize) -> Duration {
    if seq == 0 {
        return base;
    }
    let step = ((seq - 1) % 64) as u32 + 1;
    base + base * step / 256
}

/// Process-wide mapper spawn counter feeding [`staggered_poll_interval`].
fn next_mapper_seq() -> usize {
    static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// The synchronous core of the mapper: applies requests to the shortcut it
/// owns. Separated from the thread so the logic is unit-testable and so
/// benches can drive maintenance deterministically.
pub struct MapperEngine {
    pool: PoolHandle,
    state: Arc<SharedDirectoryState>,
    metrics: Arc<MaintMetrics>,
    cfg: MaintConfig,
    current: Option<ShortcutNode>,
    /// Replaced areas in legacy (`reclaim: false`) mode, kept mapped until
    /// the engine is dropped. With reclamation on, superseded areas go to
    /// the pool's retire list instead.
    retired: Vec<ShortcutNode>,
    /// A create that was skipped because its footprint did not fit the
    /// budget *at that moment* (e.g. a reader pin stalled the reclaim
    /// scan). Retried on poll ticks once it would fit, so a transient
    /// reclaim failure does not suspend the shortcut permanently.
    /// Superseded by any newer create.
    deferred: Option<MaintRequest>,
    /// `traditional_depth − published_depth` of the current node: 0 when
    /// the shortcut resolves the full directory, > 0 when admission
    /// coarsened the published depth to fit the budget. Update slots are
    /// shifted right by this amount before being applied.
    published_shift: u32,
    /// Smallest footprint any *admissible* depth of the deferred create
    /// would reserve (exact depth, or a coarser depth that still
    /// resolves at least one bucket) — computed when the create is
    /// deferred, so the per-tick retry probe is one O(1) `would_fit`
    /// that agrees with what admission will actually accept. Folded
    /// updates can leave it slightly stale; a retry that then fails
    /// recomputes it, so the probe self-corrects instead of looping.
    deferred_min_want: usize,
}

impl MapperEngine {
    /// Build an engine that maintains shortcuts over `pool`.
    pub fn new(
        pool: PoolHandle,
        state: Arc<SharedDirectoryState>,
        metrics: Arc<MaintMetrics>,
        cfg: MaintConfig,
    ) -> Self {
        MapperEngine {
            pool,
            state,
            metrics,
            cfg,
            current: None,
            retired: Vec::new(),
            deferred: None,
            published_shift: 0,
            deferred_min_want: 0,
        }
    }

    /// Apply a batch of requests in FIFO order, honoring supersession: only
    /// the *last* create in the batch is executed, and updates older than it
    /// are discarded. Returns the number of requests consumed.
    pub fn apply_batch(&mut self, batch: Vec<MaintRequest>) -> Result<usize> {
        if batch.is_empty() {
            return Ok(0);
        }
        let n = batch.len();
        // Find the last create; everything before it is superseded.
        let last_create = batch
            .iter()
            .rposition(|r| matches!(r, MaintRequest::Create { .. }));
        let start = match last_create {
            Some(i) => {
                let discarded = batch[..i]
                    .iter()
                    .filter(|r| matches!(r, MaintRequest::Update { .. }))
                    .count();
                self.metrics
                    .updates_discarded
                    .fetch_add(discarded as u64, Ordering::Relaxed);
                i
            }
            None => 0,
        };
        for req in batch.into_iter().skip(start) {
            self.apply_one(req)?;
        }
        Ok(n)
    }

    fn apply_one(&mut self, req: MaintRequest) -> Result<()> {
        let version = req.version();
        match req {
            MaintRequest::Update { slot, ppage, .. } => {
                // While a create is deferred (budget-skipped, awaiting
                // retry), updates describe the *deferred* directory — fold
                // them into its assignment vector rather than discarding
                // them, or the retried create would publish pre-split
                // slots and a later update could restore version equality
                // over a stale mapping.
                if let Some(MaintRequest::Create {
                    slots,
                    assignments,
                    version: deferred_version,
                }) = &mut self.deferred
                {
                    if slot < *slots {
                        match assignments.binary_search_by_key(&slot, |a| a.0) {
                            Ok(i) => assignments[i].1 = ppage,
                            Err(i) => assignments.insert(i, (slot, ppage)),
                        }
                        *deferred_version = version;
                        return Ok(());
                    }
                }
                // Producers address slots at the traditional directory's
                // depth; a coarsely published node resolves them at its
                // own granularity. A split deeper than the published
                // depth clobbers the shared coarse slot with one sibling
                // — readers detect the over-depth bucket via its stored
                // local depth and fall back for those keys.
                let slot = slot >> self.published_shift;
                let node = match self.current.as_mut() {
                    Some(n) if slot < n.slots() => n,
                    _ => {
                        // Stale update (raced a rebuild that shrank… or no
                        // node yet). Protocol-respecting producers never hit
                        // this; drop defensively.
                        self.metrics
                            .updates_discarded
                            .fetch_add(1, Ordering::Relaxed);
                        return Ok(());
                    }
                };
                node.set_slot(slot, &self.pool, ppage)?;
                if self.cfg.eager_populate {
                    // Touch just the remapped slot to install its PTE.
                    // SAFETY: slot was just rewired to a valid pool page.
                    unsafe {
                        std::ptr::read_volatile(node.slot_ptr(slot));
                    }
                    self.metrics.pages_populated.fetch_add(1, Ordering::Relaxed);
                }
                self.metrics.updates_applied.fetch_add(1, Ordering::Relaxed);
                self.metrics.slots_rewired.fetch_add(1, Ordering::Relaxed);
                let node = self.current.as_ref().expect("checked above");
                self.state.publish(node.base(), node.slots(), version);
            }
            MaintRequest::Create {
                slots, assignments, ..
            } => {
                // Any newer create supersedes a deferred one.
                self.deferred = None;
                let (shift, reservation) = if self.cfg.reclaim {
                    match self.admit_create(slots, &assignments) {
                        Some((shift, r)) => (shift, Some(r)),
                        None => {
                            self.deferred = Some(MaintRequest::Create {
                                slots,
                                assignments,
                                version,
                            });
                            return Ok(());
                        }
                    }
                } else {
                    (0, None)
                };
                let coarse;
                let (pub_slots, pub_assignments) = if shift == 0 {
                    (slots, &assignments)
                } else {
                    coarse = coarsen_assignments(&assignments, shift);
                    (slots >> shift, &coarse)
                };
                // The node inherits the pool's slot layout: each published
                // slot spans a whole 2^k-page physical slot.
                let mut node =
                    ShortcutNode::for_pool(pub_slots, &self.pool, self.cfg.eager_populate)?;
                let calls = node.set_batch(&self.pool, pub_assignments)?;
                if self.cfg.eager_populate {
                    let touched = node.populate();
                    self.metrics
                        .pages_populated
                        .fetch_add(touched as u64, Ordering::Relaxed);
                }
                // Hand the worst-case reservation over to the built node
                // as its exact charge in one atomic adjustment — the
                // budget never transiently double-counts the directory
                // (which could trip `in_use <= limit` asserts) and never
                // dips (which would let a concurrent pool steal margin).
                match reservation {
                    Some(r) => {
                        r.settle(node.vma_estimate());
                        node.charge_to_prepaid(&self.pool);
                    }
                    None => node.charge_to(&self.pool),
                }
                self.metrics.creates_applied.fetch_add(1, Ordering::Relaxed);
                if shift > 0 {
                    self.metrics.creates_coarse.fetch_add(1, Ordering::Relaxed);
                }
                self.metrics
                    .slots_rewired
                    .fetch_add(pub_assignments.len() as u64, Ordering::Relaxed);
                self.metrics
                    .create_mmap_calls
                    .fetch_add(calls, Ordering::Relaxed);
                self.published_shift = shift;
                self.state.publish(node.base(), node.slots(), version);
                self.state.set_suspended(false);
                if let Some(old) = self.current.replace(node) {
                    if self.cfg.reclaim {
                        self.pool.retire_list().retire(old.into_area());
                    } else {
                        self.retired.push(old);
                    }
                }
            }
        }
        Ok(())
    }

    /// The coarsening shifts admission may try for a rebuild: always the
    /// exact depth; additionally, with compaction enabled and a full
    /// assignment vector, up to [`MAX_PUBLISH_SHIFT`] halvings of the
    /// published depth (each halving of a compacted directory folds
    /// aliased covering ranges back onto single slots, so the identity
    /// run gets *more* mergeable, not less).
    fn candidate_shifts(&self, slots: usize, assignments: &[(usize, PageIdx)]) -> u32 {
        if self.cfg.compaction.enabled() && assignments.len() == slots {
            MAX_PUBLISH_SHIFT.min(slots.trailing_zeros())
        } else {
            0
        }
    }

    /// VMAs to reserve for a rebuild at coarsening `shift`. Without
    /// compaction this is the **worst case** — a `slots`-page area can
    /// fragment to one VMA per slot as later bucket splits break merged
    /// runs, so admitting at `slots` guarantees the live directory can
    /// never outgrow the budget between doublings. With compaction
    /// enabled the layout's fragmentation is bounded (splits are repaired
    /// by background moves and every doubling re-sorts the pool), so
    /// admission uses the rebuild's **exact** initial footprint instead —
    /// this is what lets a compacted multi-million-slot directory through
    /// a stock `vm.max_map_count`.
    fn rebuild_reservation(
        &self,
        slots: usize,
        assignments: &[(usize, PageIdx)],
        shift: u32,
    ) -> usize {
        if shift > 0 {
            let coarse = coarsen_assignments(assignments, shift);
            shortcut_rewire::planned_vmas(slots >> shift, &coarse)
        } else if self.cfg.compaction.enabled() {
            shortcut_rewire::planned_vmas(slots, assignments)
        } else {
            slots
        }
    }

    /// Admission control for a rebuild: atomically reserve the rebuild's
    /// footprint (see [`MapperEngine::rebuild_reservation`]), preferring
    /// the exact depth and falling back to coarser published depths (the
    /// paper's directory at half depth still resolves every bucket whose
    /// local depth fits; deeper buckets are detected by readers and
    /// served traditionally). Among coarse depths the engine picks by
    /// **service fraction** — the share of buckets resolvable at that
    /// depth ([`service_census`]) — rather than the first footprint that
    /// fits: depths with equal service are tie-broken toward the smaller
    /// mapping footprint (the same keys are shortcut-served either way,
    /// so the spare VMAs are pure headroom), and a depth that resolves
    /// *no* bucket is never published (it would cost mappings while every
    /// read falls back — strictly worse than staying suspended). When
    /// nothing fits, the stale current node is retired (the traditional
    /// version has already moved past it, so no new reader can route
    /// through it), a reclaim is attempted, and — if the rebuild still
    /// does not fit — the state is marked suspended and the create
    /// skipped. The skip is counted as *deferred* (transient: pinned
    /// readers stalled the reclaim scan, the retry on an upcoming tick
    /// will succeed) when retired areas remain, and as *skipped*
    /// (genuine: nothing left to reclaim, the directory simply does not
    /// fit) otherwise.
    fn admit_create(
        &mut self,
        slots: usize,
        assignments: &[(usize, PageIdx)],
    ) -> Option<(u32, shortcut_rewire::BudgetReservation)> {
        let budget = Arc::clone(self.pool.budget());
        let usage = Arc::clone(self.pool.usage());
        let headroom = budget_headroom(budget.limit());
        let max_shift = self.candidate_shifts(slots, assignments);
        // Exact depth first. Building while the superseded directory is
        // still mapped (the common fast path) doubles the kernel's
        // transient mapping count, so the overlap is only allowed while
        // it leaves a quarter of the limit spare; otherwise fall through
        // to retire-then-build. If the exact depth does not fit even
        // then, free what can be freed and try it *again* before settling
        // for a coarser published depth — coarse publishes cost service
        // (over-depth buckets fall back), so they must never be picked
        // just because a reclaimable directory was still charged.
        let want = self.rebuild_reservation(slots, assignments, 0);
        let overlap_headroom = headroom.max(budget.limit() / 4);
        if let Some(r) = budget.try_reserve_for(&usage, want, overlap_headroom) {
            self.metrics
                .coarse_service_pct
                .store(100, Ordering::Relaxed);
            return Some((0, r));
        }
        if let Some(old) = self.current.take() {
            self.pool.retire_list().retire(old.into_area());
        }
        self.pool.retire_list().try_reclaim();
        let mut min_want = want;
        if let Some(r) = budget.try_reserve_for(&usage, want, headroom) {
            self.metrics
                .coarse_service_pct
                .store(100, Ordering::Relaxed);
            return Some((0, r));
        }
        if max_shift > 0 {
            // ROADMAP follow-up (c): depth selection by service fraction.
            let (total, resolvable) = service_census(assignments, max_shift);
            let mut candidates: Vec<(u32, usize, usize)> = (1..=max_shift)
                .map(|s| {
                    (
                        s,
                        resolvable[s as usize],
                        self.rebuild_reservation(slots, assignments, s),
                    )
                })
                .collect();
            candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)).then(a.0.cmp(&b.0)));
            for (shift, served, want) in candidates {
                if served == 0 {
                    // Resolves nothing: never published (every read would
                    // fall back while the mapping cost is still paid), and
                    // therefore not part of the retry bound either.
                    continue;
                }
                min_want = min_want.min(want);
                if let Some(r) = budget.try_reserve_for(&usage, want, headroom) {
                    let pct = (served * 100 / total.max(1)) as u64;
                    self.metrics
                        .coarse_service_pct
                        .store(pct, Ordering::Relaxed);
                    return Some((shift, r));
                }
            }
        }
        // Deferred: cache the cheapest admissible footprint so the
        // per-tick retry probe is one O(1) `would_fit` that agrees with
        // what this function will accept (recomputed here on every
        // failed retry, so a stale bound self-corrects).
        self.deferred_min_want = min_want;
        self.state.set_suspended(true);
        if self.pool.retire_list().retired_count() > 0 {
            self.metrics
                .creates_deferred
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.metrics.creates_skipped.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// Drive retired-area reclamation, then retry a deferred create if it
    /// would now fit (called by the mapper thread on every poll tick).
    /// Also evaluates the compaction trigger: when the live directory's
    /// VMA estimate crosses the policy threshold, the shared
    /// `compaction_wanted` flag asks the write path — the only place with
    /// exclusive access to the bucket pages — to run the moves. Returns
    /// the number of areas unmapped.
    pub fn reclaim_tick(&mut self) -> Result<usize> {
        self.compaction_tick();
        if !self.cfg.reclaim {
            return Ok(0);
        }
        let reclaimed = self.pool.retire_list().try_reclaim();
        if matches!(self.deferred, Some(MaintRequest::Create { .. })) {
            // Racy pre-check to avoid re-counting a skip every tick; the
            // retry's real admission goes through try_reserve again. The
            // probe is one O(1) `would_fit` against the smallest
            // footprint any admissible depth would reserve, cached by
            // the failed admission that deferred the create (and
            // recomputed whenever a retry fails, so a slightly-stale
            // bound — folded updates can shift footprints by a few VMAs
            // — costs at most one futile retry, never a per-tick loop).
            let budget = Arc::clone(self.pool.budget());
            let headroom = budget_headroom(budget.limit());
            if budget.would_fit_for(self.pool.usage(), self.deferred_min_want, headroom) {
                if let Some(req) = self.deferred.take() {
                    self.apply_one(req)?;
                }
            }
        }
        Ok(reclaimed)
    }

    /// Raise/clear the compaction flag from the live node's footprint
    /// (with hysteresis: set above the trigger, cleared below half of it).
    fn compaction_tick(&self) {
        if self.cfg.compaction.background_moves == 0 {
            return;
        }
        let trigger = self.cfg.compaction.trigger_vmas(self.pool.budget().limit());
        let estimate = self.current.as_ref().map_or(0, |n| n.vma_estimate());
        if estimate > trigger {
            self.state.set_compaction_wanted(true);
        } else if estimate < trigger / 2 {
            self.state.set_compaction_wanted(false);
        }
    }

    /// The node currently serving the shortcut, if any.
    pub fn current(&self) -> Option<&ShortcutNode> {
        self.current.as_ref()
    }

    /// Number of retired, still mapped areas (legacy engine-held ones plus
    /// those awaiting reader drain in the pool's retire list).
    pub fn retired_count(&self) -> usize {
        self.retired.len() + self.pool.retire_list().retired_count()
    }
}

/// Handle owning the mapper thread. Dropping it stops and joins the thread
/// (and only then unmaps all shortcut areas, current and retired).
pub struct Maintainer {
    queue: Arc<SegQueue<MaintRequest>>,
    state: Arc<SharedDirectoryState>,
    metrics: Arc<MaintMetrics>,
    stop: Arc<AtomicBool>,
    stop_signal: Arc<(Mutex<()>, Condvar)>,
    error: Arc<Mutex<Option<Error>>>,
    poll_interval: Duration,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Maintainer {
    /// Spawn the mapper thread over `pool`.
    pub fn spawn(pool: PoolHandle, cfg: MaintConfig) -> Self {
        let queue: Arc<SegQueue<MaintRequest>> = Arc::new(SegQueue::new());
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let stop = Arc::new(AtomicBool::new(false));
        let stop_signal: Arc<(Mutex<()>, Condvar)> = Arc::new((Mutex::new(()), Condvar::new()));
        let error: Arc<Mutex<Option<Error>>> = Arc::new(Mutex::new(None));

        let t_queue = Arc::clone(&queue);
        let t_state = Arc::clone(&state);
        let t_metrics = Arc::clone(&metrics);
        let t_stop = Arc::clone(&stop);
        let t_signal = Arc::clone(&stop_signal);
        let t_error = Arc::clone(&error);
        let poll = if cfg.poll_stagger {
            staggered_poll_interval(cfg.poll_interval, next_mapper_seq())
        } else {
            cfg.poll_interval
        };

        let handle = std::thread::Builder::new()
            .name("shortcut-mapper".into())
            .spawn(move || {
                let mut engine = MapperEngine::new(pool, t_state, Arc::clone(&t_metrics), cfg);
                loop {
                    let mut batch = Vec::new();
                    while let Some(req) = t_queue.pop() {
                        batch.push(req);
                    }
                    if batch.is_empty() {
                        t_metrics.idle_polls.fetch_add(1, Ordering::Relaxed);
                        // Idle tick: drive retired-area reclamation (and a
                        // deferred-create retry) while the queue is quiet.
                        if let Err(e) = engine.reclaim_tick() {
                            *t_error.lock() = Some(e);
                            break;
                        }
                        if t_stop.load(Ordering::Acquire) {
                            break;
                        }
                        // Wait out the poll interval on a condvar so Drop
                        // can interrupt immediately (a sliced sleep would
                        // both oversleep on coarse-timer hosts and delay
                        // shutdown).
                        let (lock, cv) = &*t_signal;
                        let mut guard = lock.lock();
                        if !t_stop.load(Ordering::Acquire) {
                            cv.wait_for(&mut guard, poll);
                        }
                        continue;
                    }
                    t_metrics.busy_polls.fetch_add(1, Ordering::Relaxed);
                    if let Err(e) = engine.apply_batch(batch) {
                        *t_error.lock() = Some(e);
                        break;
                    }
                    if let Err(e) = engine.reclaim_tick() {
                        *t_error.lock() = Some(e);
                        break;
                    }
                    // Drain again immediately after work: insert bursts
                    // enqueue faster than one batch per poll.
                }
            })
            .expect("failed to spawn mapper thread");

        Maintainer {
            queue,
            state,
            metrics,
            stop,
            stop_signal,
            error,
            poll_interval: poll,
            handle: Some(handle),
        }
    }

    /// The mapper thread's *effective* poll interval — the configured
    /// interval after process-wide staggering (see
    /// [`staggered_poll_interval`]); what the divergence of co-spawned
    /// mappers is asserted against.
    #[inline]
    pub fn poll_interval(&self) -> Duration {
        self.poll_interval
    }

    /// Shared version/publication state (for readers).
    #[inline]
    pub fn state(&self) -> &Arc<SharedDirectoryState> {
        &self.state
    }

    /// Enqueue a request.
    pub fn submit(&self, req: MaintRequest) {
        self.queue.push(req);
    }

    /// Pop all *pending* requests (the paper's main thread does this right
    /// before pushing a create, as they became outdated). Returns how many
    /// were dropped.
    pub fn drop_pending(&self) -> usize {
        let mut n = 0;
        while self.queue.pop().is_some() {
            n += 1;
        }
        n
    }

    /// Current queue length (approximate, lock-free).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Maintenance counters.
    pub fn metrics(&self) -> MaintSnapshot {
        self.metrics.snapshot()
    }

    /// Shared handle to the live counters, for producers that mirror
    /// write-path work (compaction moves) into the maintenance metrics.
    pub fn metrics_handle(&self) -> Arc<MaintMetrics> {
        Arc::clone(&self.metrics)
    }

    /// First error the mapper hit, if any.
    pub fn error(&self) -> Option<Error> {
        self.error.lock().clone()
    }

    /// Whether the mapper skipped the latest rebuild because the directory
    /// would not fit the VMA budget (see [`MaintConfig::reclaim`]).
    pub fn suspended(&self) -> bool {
        self.state.suspended()
    }

    /// Block until the shortcut is in sync with the traditional directory
    /// (or `timeout` elapses). Returns whether sync was reached; when
    /// maintenance is budget-suspended it returns `false` after a short
    /// grace period (a few poll ticks) rather than waiting out the whole
    /// timeout — the grace covers a *transient* suspension, where a
    /// reader pin stalled reclamation and the deferred rebuild succeeds
    /// on an upcoming tick, while a directory that genuinely does not
    /// fit the budget stays suspended and fails fast. Test and benchmark
    /// helper; production readers never wait, they just fall back.
    pub fn wait_sync(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let grace = (self.poll_interval * 4).max(Duration::from_millis(4));
        let mut suspended_since: Option<std::time::Instant> = None;
        while std::time::Instant::now() < deadline {
            if self.error.lock().is_some() {
                return false;
            }
            if self.pending() == 0 && self.state.in_sync() {
                return true;
            }
            if self.pending() == 0 && self.state.suspended() {
                let since = *suspended_since.get_or_insert_with(std::time::Instant::now);
                if since.elapsed() > grace {
                    return false;
                }
            } else {
                suspended_since = None;
            }
            std::thread::yield_now();
            std::thread::sleep(Duration::from_millis(1));
        }
        self.pending() == 0 && self.state.in_sync()
    }
}

impl Drop for Maintainer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the mapper if it is waiting out a poll interval.
        let (lock, cv) = &*self.stop_signal;
        {
            let _guard = lock.lock();
            cv.notify_all();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcut_rewire::{PagePool, PoolConfig, PAGE_SIZE_4K};

    fn pool() -> PagePool {
        PagePool::new(PoolConfig {
            initial_pages: 16,
            min_growth_pages: 16,
            view_capacity_pages: 4096, // audit:allow(page-literal): view capacity in pages (a count), not a byte size
            ..PoolConfig::default()
        })
        .unwrap()
    }

    fn stamp(pool: &PagePool, p: PageIdx, v: u64) {
        // SAFETY: t.base is the directory the ticket published; offsets stay
        // below t.slots slots and retirement cannot unmap it mid-test.
        unsafe {
            *(pool.page_ptr(p) as *mut u64) = v;
        }
    }

    #[test]
    fn engine_create_publishes_in_sync() {
        let mut pl = pool();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            metrics,
            MaintConfig::default(),
        );
        let l0 = pl.alloc_page().unwrap();
        let l1 = pl.alloc_page().unwrap();
        stamp(&pl, l0, 10);
        stamp(&pl, l1, 11);

        let v = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots: 2,
            assignments: vec![(0, l0), (1, l1)],
            version: v,
        }])
        .unwrap();
        assert!(state.in_sync());
        let t = state.begin_read().unwrap();
        // SAFETY: t.base is the directory the ticket published; offsets stay
        // below t.slots slots and retirement cannot unmap it mid-test.
        unsafe {
            assert_eq!(*(t.base as *const u64), 10);
            assert_eq!(*(t.base.add(PAGE_SIZE_4K) as *const u64), 11);
        }
        assert!(state.still_valid(t));
    }

    #[test]
    fn engine_update_remaps_single_slot() {
        let mut pl = pool();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            Arc::clone(&metrics),
            MaintConfig::default(),
        );
        let l0 = pl.alloc_page().unwrap();
        let l1 = pl.alloc_page().unwrap();
        stamp(&pl, l0, 10);
        stamp(&pl, l1, 11);

        let v1 = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots: 2,
            assignments: vec![(0, l0), (1, l0)],
            version: v1,
        }])
        .unwrap();

        let v2 = state.bump_traditional();
        assert!(!state.in_sync());
        eng.apply_batch(vec![MaintRequest::Update {
            slot: 1,
            ppage: l1,
            version: v2,
        }])
        .unwrap();
        assert!(state.in_sync());
        let t = state.begin_read().unwrap();
        // SAFETY: t.base is the directory the ticket published; offsets stay
        // below t.slots slots and retirement cannot unmap it mid-test.
        unsafe {
            assert_eq!(*(t.base as *const u64), 10);
            assert_eq!(*(t.base.add(PAGE_SIZE_4K) as *const u64), 11);
        }
        assert_eq!(metrics.snapshot().updates_applied, 1);
    }

    #[test]
    fn create_supersedes_older_updates() {
        let mut pl = pool();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            Arc::clone(&metrics),
            MaintConfig::default(),
        );
        let l0 = pl.alloc_page().unwrap();
        let l1 = pl.alloc_page().unwrap();

        let v1 = state.bump_traditional();
        let v2 = state.bump_traditional();
        let v3 = state.bump_traditional();
        // Updates for v1/v2 arrive together with the create for v3.
        eng.apply_batch(vec![
            MaintRequest::Update {
                slot: 0,
                ppage: l0,
                version: v1,
            },
            MaintRequest::Update {
                slot: 1,
                ppage: l1,
                version: v2,
            },
            MaintRequest::Create {
                slots: 4,
                assignments: vec![(0, l0), (1, l0), (2, l1), (3, l1)],
                version: v3,
            },
        ])
        .unwrap();
        let s = metrics.snapshot();
        assert_eq!(s.updates_discarded, 2);
        assert_eq!(s.creates_applied, 1);
        assert!(state.in_sync());
        assert_eq!(state.begin_read().unwrap().slots, 4);
    }

    #[test]
    fn update_after_create_in_same_batch_applies() {
        let mut pl = pool();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            Arc::clone(&metrics),
            MaintConfig::default(),
        );
        let l0 = pl.alloc_page().unwrap();
        let l1 = pl.alloc_page().unwrap();
        stamp(&pl, l1, 42);

        let v1 = state.bump_traditional();
        let v2 = state.bump_traditional();
        eng.apply_batch(vec![
            MaintRequest::Create {
                slots: 2,
                assignments: vec![(0, l0), (1, l0)],
                version: v1,
            },
            MaintRequest::Update {
                slot: 1,
                ppage: l1,
                version: v2,
            },
        ])
        .unwrap();
        assert!(state.in_sync());
        let t = state.begin_read().unwrap();
        // SAFETY: t.base is the directory the ticket published; offsets stay
        // below t.slots slots and retirement cannot unmap it mid-test.
        unsafe {
            assert_eq!(*(t.base.add(PAGE_SIZE_4K) as *const u64), 42);
        }
    }

    #[test]
    fn retired_areas_stay_mapped_until_readers_drain() {
        let mut pl = pool();
        let handle = pl.handle();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            handle.clone(),
            Arc::clone(&state),
            metrics,
            MaintConfig::default(),
        );
        let l0 = pl.alloc_page().unwrap();
        stamp(&pl, l0, 7);

        let v1 = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots: 1,
            assignments: vec![(0, l0)],
            version: v1,
        }])
        .unwrap();
        // A reader pins, takes its ticket, and is about to dereference.
        let pin = handle.retire_list().pin();
        let old_base = state.begin_read().unwrap().base;

        let v2 = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots: 2,
            assignments: vec![(0, l0), (1, l0)],
            version: v2,
        }])
        .unwrap();
        assert_eq!(eng.retired_count(), 1);
        // Reclamation must not unmap under the outstanding pin.
        assert_eq!(eng.reclaim_tick().unwrap(), 0);
        assert_eq!(eng.retired_count(), 1);
        // The old base is still readable (stale but mapped).
        // SAFETY: t.base is the directory the ticket published; offsets stay
        // below t.slots slots and retirement cannot unmap it mid-test.
        unsafe {
            assert_eq!(*(old_base as *const u64), 7);
        }
        // Once the reader drains, the next tick reclaims the area.
        drop(pin);
        assert_eq!(eng.reclaim_tick().unwrap(), 1);
        assert_eq!(eng.retired_count(), 0);
        assert_eq!(handle.retire_list().counters().1, 1);
    }

    #[test]
    fn legacy_mode_keeps_retired_areas_mapped_forever() {
        let mut pl = pool();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            metrics,
            MaintConfig {
                reclaim: false,
                ..MaintConfig::default()
            },
        );
        let l0 = pl.alloc_page().unwrap();
        stamp(&pl, l0, 7);
        for slots in [1usize, 2] {
            let v = state.bump_traditional();
            eng.apply_batch(vec![MaintRequest::Create {
                slots,
                assignments: (0..slots).map(|s| (s, l0)).collect(),
                version: v,
            }])
            .unwrap();
        }
        assert_eq!(eng.retired_count(), 1);
        assert_eq!(eng.reclaim_tick().unwrap(), 0, "legacy mode never reclaims");
        assert_eq!(eng.retired_count(), 1);
    }

    #[test]
    fn over_budget_create_is_skipped_and_suspends() {
        // A pool whose private 32-mapping budget (headroom 32/16 = 2,
        // effective 30) cannot possibly hold a 64-slot aliased directory:
        // the rebuild must be skipped (no ENOMEM, no error), the stale
        // current node retired, and the state suspended.
        let mut pl = PagePool::new(PoolConfig {
            initial_pages: 16,
            min_growth_pages: 16,
            view_capacity_pages: 4096, // audit:allow(page-literal): view capacity in pages (a count), not a byte size
            vma_budget: Some(shortcut_rewire::VmaBudget::with_limit(32)),
            ..PoolConfig::default()
        })
        .unwrap();
        let handle = pl.handle();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            handle.clone(),
            Arc::clone(&state),
            Arc::clone(&metrics),
            MaintConfig::default(),
        );
        let l0 = pl.alloc_page().unwrap();

        // A small directory fits.
        let v1 = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots: 2,
            assignments: vec![(0, l0), (1, l0)],
            version: v1,
        }])
        .unwrap();
        assert!(state.in_sync());
        assert!(!state.suspended());

        // A 64-slot fan-in-64 directory (64 unmergeable VMAs) does not.
        let v2 = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots: 64,
            assignments: (0..64).map(|s| (s, l0)).collect(),
            version: v2,
        }])
        .unwrap();
        assert!(state.suspended());
        assert!(!state.in_sync());
        assert_eq!(metrics.snapshot().creates_skipped, 1);
        assert_eq!(metrics.snapshot().creates_applied, 1);
        // The stale current node was retired and (no readers) reclaimed on
        // the next tick, so the budget drops back to the pool view alone.
        eng.reclaim_tick().unwrap();
        assert_eq!(eng.retired_count(), 0);
        assert!(handle.budget().in_use() <= 2 + 1);
    }

    #[test]
    fn deferred_create_applies_after_readers_drain() {
        // A rebuild that fails admission only because a reader pin stalls
        // the reclaim of the superseded directory must not suspend the
        // shortcut forever: once the pin drops, the next tick reclaims,
        // retries the deferred create, and re-publishes in sync.
        let mut pl = PagePool::new(PoolConfig {
            initial_pages: 16,
            min_growth_pages: 16,
            view_capacity_pages: 4096, // audit:allow(page-literal): view capacity in pages (a count), not a byte size
            // limit 8 < 16 → headroom 0 → effective budget 8.
            vma_budget: Some(shortcut_rewire::VmaBudget::with_limit(8)),
            ..PoolConfig::default()
        })
        .unwrap();
        let handle = pl.handle();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            handle.clone(),
            Arc::clone(&state),
            Arc::clone(&metrics),
            MaintConfig::default(),
        );
        let l0 = pl.alloc_page().unwrap();
        let l1 = pl.alloc_page().unwrap();
        stamp(&pl, l0, 70);
        stamp(&pl, l1, 71);

        let v1 = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots: 2,
            assignments: vec![(0, l0), (1, l0)],
            version: v1,
        }])
        .unwrap();
        assert!(state.in_sync());

        // A reader stalls mid-read; the 6-slot rebuild (worst case 6
        // VMAs) does not fit while the old directory cannot be reclaimed.
        let pin = handle.retire_list().pin();
        let v2 = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots: 6,
            assignments: (0..6).map(|s| (s, l0)).collect(),
            version: v2,
        }])
        .unwrap();
        assert!(state.suspended());
        // The skip is transient (a pinned reader stalled reclamation), so
        // it is counted as deferred, not as a genuine suspension.
        assert_eq!(metrics.snapshot().creates_deferred, 1);
        assert_eq!(metrics.snapshot().creates_skipped, 0);

        // A bucket split lands while the create is deferred: the update
        // must be folded into the deferred assignments, not discarded —
        // otherwise the retry would publish a stale slot that a later
        // version-restoring update could legitimize.
        let v3 = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Update {
            slot: 3,
            ppage: l1,
            version: v3,
        }])
        .unwrap();
        assert_eq!(metrics.snapshot().updates_discarded, 0);

        // Pin still held: the tick reclaims nothing and must not retry.
        assert_eq!(eng.reclaim_tick().unwrap(), 0);
        assert!(state.suspended());

        // Reader drains → the tick reclaims the old directory, retries
        // the deferred create (with the folded update, at the folded
        // version), and the shortcut is back in sync.
        drop(pin);
        assert_eq!(eng.reclaim_tick().unwrap(), 1);
        assert!(!state.suspended());
        assert!(state.in_sync());
        let t = state.begin_read().unwrap();
        assert_eq!(t.slots, 6);
        // SAFETY: t.base is the directory the ticket published; offsets stay
        // below t.slots slots and retirement cannot unmap it mid-test.
        unsafe {
            assert_eq!(*(t.base.add(2 << 12) as *const u64), 70);
            assert_eq!(
                *(t.base.add(3 << 12) as *const u64),
                71,
                "folded update lost"
            );
        }
        assert_eq!(metrics.snapshot().creates_applied, 2);
        assert_eq!(metrics.snapshot().creates_deferred, 1);
        assert_eq!(metrics.snapshot().creates_skipped, 0);
    }

    #[test]
    fn compaction_admission_uses_exact_footprint() {
        // A 64-slot **identity** directory is one mergeable run (one VMA).
        // Worst-case admission (compaction off) refuses it under a
        // 32-mapping budget; with compaction enabled, admission reserves
        // the exact planned footprint and the rebuild goes through.
        for (compaction, expect_applied) in [
            (CompactionPolicy::disabled(), false),
            (CompactionPolicy::on(), true),
        ] {
            let mut pl = PagePool::new(PoolConfig {
                initial_pages: 0,
                min_growth_pages: 64,
                view_capacity_pages: 4096, // audit:allow(page-literal): view capacity in pages (a count), not a byte size
                vma_budget: Some(shortcut_rewire::VmaBudget::with_limit(32)),
                ..PoolConfig::default()
            })
            .unwrap();
            let state = Arc::new(SharedDirectoryState::new());
            let metrics = Arc::new(MaintMetrics::default());
            let mut eng = MapperEngine::new(
                pl.handle(),
                Arc::clone(&state),
                Arc::clone(&metrics),
                MaintConfig {
                    compaction,
                    ..MaintConfig::default()
                },
            );
            let run = pl.alloc_run(64).unwrap();
            let v = state.bump_traditional();
            eng.apply_batch(vec![MaintRequest::Create {
                slots: 64,
                assignments: (0..64).map(|s| (s, PageIdx(run.0 + s))).collect(),
                version: v,
            }])
            .unwrap();
            assert_eq!(
                state.in_sync(),
                expect_applied,
                "compaction.enabled()={} must {} the identity rebuild",
                compaction.enabled(),
                if expect_applied { "admit" } else { "refuse" }
            );
            assert_eq!(state.suspended(), !expect_applied);
        }
    }

    #[test]
    fn over_budget_rebuild_publishes_at_coarser_depth() {
        // 16 slots, fan-in 2 over 8 directory-ordered pages: exact-depth
        // planned footprint is 16 − 8 + 1 = 9. Budget 8 (headroom 0)
        // refuses it, but the half-depth view is a pure identity run
        // (planned 1) and must be published instead of suspending.
        let mut pl = PagePool::new(PoolConfig {
            initial_pages: 0,
            min_growth_pages: 8,
            view_capacity_pages: 4096, // audit:allow(page-literal): view capacity in pages (a count), not a byte size
            vma_budget: Some(shortcut_rewire::VmaBudget::with_limit(8)),
            ..PoolConfig::default()
        })
        .unwrap();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            Arc::clone(&metrics),
            MaintConfig {
                compaction: CompactionPolicy::on(),
                ..MaintConfig::default()
            },
        );
        let run = pl.alloc_run(8).unwrap();
        for i in 0..8 {
            stamp(&pl, PageIdx(run.0 + i), 500 + i as u64);
        }
        let v = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots: 16,
            assignments: (0..16).map(|s| (s, PageIdx(run.0 + s / 2))).collect(),
            version: v,
        }])
        .unwrap();
        assert!(state.in_sync(), "coarse publish must keep the shortcut up");
        assert!(!state.suspended());
        assert_eq!(metrics.snapshot().creates_coarse, 1);
        let t = state.begin_read().unwrap();
        assert_eq!(t.slots, 8, "published at half depth");
        for i in 0..8 {
            // SAFETY: t.base is the directory the ticket published; offsets stay
            // below t.slots slots and retirement cannot unmap it mid-test.
            unsafe {
                assert_eq!(*(t.base.add(i << 12) as *const u64), 500 + i as u64);
            }
        }
        assert!(pl.budget().in_use() <= 8);

        // Updates arrive addressed at the traditional (16-slot) depth and
        // must be shifted onto the coarse node: redirecting fine slots
        // 14 and 15 (one covering range at depth 4) lands on coarse
        // slot 7.
        let fresh = pl.alloc_run(1).unwrap();
        stamp(&pl, fresh, 999);
        for fine_slot in [14usize, 15] {
            let v = state.bump_traditional();
            eng.apply_batch(vec![MaintRequest::Update {
                slot: fine_slot,
                ppage: fresh,
                version: v,
            }])
            .unwrap();
        }
        assert!(state.in_sync());
        let t = state.begin_read().unwrap();
        // SAFETY: t.base is the directory the ticket published; offsets stay
        // below t.slots slots and retirement cannot unmap it mid-test.
        unsafe {
            assert_eq!(*(t.base.add(7 << 12) as *const u64), 999);
            assert_eq!(
                *(t.base.add(6 << 12) as *const u64),
                506,
                "neighbor untouched"
            );
        }
    }

    #[test]
    fn service_census_counts_resolvable_buckets_per_shift() {
        let a = |pairs: &[(usize, usize)]| -> Vec<(usize, PageIdx)> {
            pairs.iter().map(|&(s, p)| (s, PageIdx(p))).collect()
        };
        // Covers 4, 2, 1, 1 over 8 slots.
        let v = a(&[
            (0, 10),
            (1, 10),
            (2, 10),
            (3, 10),
            (4, 30),
            (5, 30),
            (6, 50),
            (7, 70),
        ]);
        let (total, r) = service_census(&v, 3);
        assert_eq!(total, 4);
        assert_eq!(r, vec![4, 2, 1, 0]);
    }

    #[test]
    fn coarse_depth_picked_by_service_fraction_not_first_fit() {
        // A skewed-depth directory: one bucket covering 8 of 16 slots
        // (local depth 1), one covering 4 (depth 2), four deep buckets
        // covering 1 each (depth 4). No bucket has local depth exactly 3,
        // so publishing at shift 1 (8 slots) and shift 2 (4 slots)
        // resolves the *same* two shallow buckets — equal service — while
        // the scattered pages make shift 1 cost 8 VMAs and shift 2 only
        // 4. First-fit-by-footprint would publish at shift 1; service
        // selection must tie-break to the cheaper shift 2.
        let mut pl = PagePool::new(PoolConfig {
            initial_pages: 0,
            min_growth_pages: 32,
            view_capacity_pages: 4096, // audit:allow(page-literal): view capacity in pages (a count), not a byte size
            vma_budget: Some(shortcut_rewire::VmaBudget::with_limit(10)),
            ..PoolConfig::default()
        })
        .unwrap();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            Arc::clone(&metrics),
            MaintConfig {
                compaction: CompactionPolicy::on(),
                ..MaintConfig::default()
            },
        );
        let run = pl.alloc_run(32).unwrap();
        // Scattered, pairwise non-consecutive pages: nothing merges.
        let pages: Vec<PageIdx> = [0usize, 5, 10, 12, 20, 27]
            .iter()
            .map(|&off| PageIdx(run.0 + off))
            .collect();
        let mut assignments: Vec<(usize, PageIdx)> = Vec::new();
        for s in 0..8 {
            assignments.push((s, pages[0])); // depth-1 bucket
        }
        for s in 8..12 {
            assignments.push((s, pages[1])); // depth-2 bucket
        }
        for (i, s) in (12..16).enumerate() {
            assignments.push((s, pages[2 + i])); // four depth-4 buckets
        }
        let v = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots: 16,
            assignments,
            version: v,
        }])
        .unwrap();
        assert!(state.in_sync());
        assert!(!state.suspended());
        let t = state.begin_read().unwrap();
        assert_eq!(
            t.slots, 4,
            "equal-service depths must tie-break to the smaller footprint"
        );
        let s = metrics.snapshot();
        assert_eq!(s.creates_coarse, 1);
        assert_eq!(
            s.coarse_service_pct,
            2 * 100 / 6,
            "2 of 6 buckets resolvable"
        );
    }

    #[test]
    fn genuine_no_fit_counts_as_skipped_not_deferred() {
        // No pins, nothing retired: the failed admission is a genuine
        // suspension and must be counted under creates_skipped.
        let mut pl = PagePool::new(PoolConfig {
            initial_pages: 16,
            min_growth_pages: 16,
            view_capacity_pages: 4096, // audit:allow(page-literal): view capacity in pages (a count), not a byte size
            vma_budget: Some(shortcut_rewire::VmaBudget::with_limit(16)),
            ..PoolConfig::default()
        })
        .unwrap();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            Arc::clone(&metrics),
            MaintConfig::default(),
        );
        let l0 = pl.alloc_page().unwrap();
        let v = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots: 64,
            assignments: (0..64).map(|s| (s, l0)).collect(),
            version: v,
        }])
        .unwrap();
        assert!(state.suspended());
        assert_eq!(metrics.snapshot().creates_skipped, 1);
        assert_eq!(metrics.snapshot().creates_deferred, 0);
    }

    #[test]
    fn compaction_trigger_sets_and_clears_with_hysteresis() {
        // Drive the engine over a tiny budget whose trigger floor we can
        // cross with a fan-in-heavy directory, and watch the shared flag.
        // limit 256: admission comfortably fits a ~72-slot directory while
        // the trigger sits at the 64 floor, which that directory crosses
        // when fully aliased.
        let mut pl = PagePool::new(PoolConfig {
            initial_pages: 16,
            min_growth_pages: 16,
            view_capacity_pages: 1 << 14,
            vma_budget: Some(shortcut_rewire::VmaBudget::with_limit(256)),
            ..PoolConfig::default()
        })
        .unwrap();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let policy = CompactionPolicy {
            on_rebuild: true,
            background_moves: 8,
            trigger_fraction: 0.25,
        };
        assert_eq!(policy.trigger_vmas(100_000), 25_000);
        assert_eq!(policy.trigger_vmas(100), CompactionPolicy::TRIGGER_FLOOR);
        assert_eq!(policy.trigger_vmas(256), CompactionPolicy::TRIGGER_FLOOR);
        assert_eq!(policy.trigger_vmas(4000), 1000);
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            Arc::clone(&metrics),
            MaintConfig {
                compaction: policy,
                ..MaintConfig::default()
            },
        );
        // No node yet: flag stays clear.
        eng.reclaim_tick().unwrap();
        assert!(!state.compaction_wanted());
        // An aliased directory larger than the floor raises the flag.
        let l0 = pl.alloc_page().unwrap();
        let slots = CompactionPolicy::TRIGGER_FLOOR + 8;
        let v = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots,
            assignments: (0..slots).map(|s| (s, l0)).collect(),
            version: v,
        }])
        .unwrap();
        eng.reclaim_tick().unwrap();
        assert!(state.compaction_wanted(), "estimate above trigger");
        // A compacted (identity) replacement clears it again.
        let run = pl.alloc_run(slots).unwrap();
        let v = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Create {
            slots,
            assignments: (0..slots).map(|s| (s, PageIdx(run.0 + s))).collect(),
            version: v,
        }])
        .unwrap();
        eng.reclaim_tick().unwrap();
        assert!(!state.compaction_wanted(), "estimate below half-trigger");
    }

    #[test]
    fn update_without_node_is_discarded_not_fatal() {
        let pl = pool();
        let state = Arc::new(SharedDirectoryState::new());
        let metrics = Arc::new(MaintMetrics::default());
        let mut eng = MapperEngine::new(
            pl.handle(),
            Arc::clone(&state),
            Arc::clone(&metrics),
            MaintConfig::default(),
        );
        let v = state.bump_traditional();
        eng.apply_batch(vec![MaintRequest::Update {
            slot: 0,
            ppage: PageIdx(0),
            version: v,
        }])
        .unwrap();
        assert_eq!(metrics.snapshot().updates_discarded, 1);
        assert!(!state.in_sync());
    }

    #[test]
    fn stagger_keeps_the_first_mapper_exact_and_bounds_the_rest() {
        let base = Duration::from_millis(25);
        assert_eq!(staggered_poll_interval(base, 0), base);
        let mut seen = std::collections::HashSet::new();
        for seq in 1..=64 {
            let p = staggered_poll_interval(base, seq);
            assert!(p > base, "seq {seq} must be staggered past the base");
            assert!(p <= base + base / 4, "seq {seq} stagger exceeds +25%");
            assert!(seen.insert(p), "seq {seq} collides with an earlier seq");
        }
    }

    #[test]
    fn co_spawned_mappers_diverge() {
        // Two maintainers started together (same config) must not share a
        // poll period — otherwise N sharded mappers tick their reclaim
        // and compaction scans in lockstep.
        let mut p1 = pool();
        let mut p2 = pool();
        let _ = p1.alloc_page().unwrap();
        let _ = p2.alloc_page().unwrap();
        let cfg = MaintConfig {
            poll_interval: Duration::from_millis(25),
            ..MaintConfig::default()
        };
        let m1 = Maintainer::spawn(p1.handle(), cfg.clone());
        let m2 = Maintainer::spawn(p2.handle(), cfg.clone());
        assert_ne!(
            m1.poll_interval(),
            m2.poll_interval(),
            "co-spawned mappers must stagger their poll ticks"
        );
        // Opting out pins the configured interval exactly.
        let m3 = Maintainer::spawn(
            p1.handle(),
            MaintConfig {
                poll_stagger: false,
                ..cfg
            },
        );
        assert_eq!(m3.poll_interval(), Duration::from_millis(25));
    }

    #[test]
    fn threaded_maintainer_reaches_sync() {
        let mut pl = pool();
        let l0 = pl.alloc_page().unwrap();
        let l1 = pl.alloc_page().unwrap();
        stamp(&pl, l0, 100);
        stamp(&pl, l1, 200);

        let m = Maintainer::spawn(
            pl.handle(),
            MaintConfig {
                poll_interval: Duration::from_millis(1),
                ..MaintConfig::default()
            },
        );
        let v = m.state().bump_traditional();
        m.submit(MaintRequest::Create {
            slots: 2,
            assignments: vec![(0, l0), (1, l1)],
            version: v,
        });
        assert!(m.wait_sync(Duration::from_secs(5)), "mapper never synced");
        let t = m.state().begin_read().unwrap();
        // SAFETY: t.base is the directory the ticket published; offsets stay
        // below t.slots slots and retirement cannot unmap it mid-test.
        unsafe {
            assert_eq!(*(t.base as *const u64), 100);
            assert_eq!(*(t.base.add(PAGE_SIZE_4K) as *const u64), 200);
        }
        assert!(m.state().still_valid(t));
        assert!(m.error().is_none());
    }

    #[test]
    fn threaded_maintainer_processes_update_stream() {
        let mut pl = pool();
        let pages: Vec<PageIdx> = (0..8).map(|_| pl.alloc_page().unwrap()).collect();
        for (i, p) in pages.iter().enumerate() {
            stamp(&pl, *p, 1000 + i as u64);
        }
        let m = Maintainer::spawn(
            pl.handle(),
            MaintConfig {
                poll_interval: Duration::from_millis(1),
                ..MaintConfig::default()
            },
        );
        let v = m.state().bump_traditional();
        m.submit(MaintRequest::Create {
            slots: 8,
            assignments: (0..8).map(|i| (i, pages[0])).collect(),
            version: v,
        });
        // Stream of split-style updates.
        for (i, p) in pages.iter().enumerate() {
            let v = m.state().bump_traditional();
            m.submit(MaintRequest::Update {
                slot: i,
                ppage: *p,
                version: v,
            });
        }
        assert!(m.wait_sync(Duration::from_secs(5)));
        let t = m.state().begin_read().unwrap();
        for i in 0..8 {
            // SAFETY: t.base is the directory the ticket published; offsets stay
            // below t.slots slots and retirement cannot unmap it mid-test.
            unsafe {
                assert_eq!(
                    *(t.base.add(i * PAGE_SIZE_4K) as *const u64),
                    1000 + i as u64
                );
            }
        }
        assert!(m.error().is_none());
        let s = m.metrics();
        assert_eq!(s.creates_applied, 1);
        assert!(s.updates_applied + s.updates_discarded >= 8);
    }

    #[test]
    fn drop_pending_empties_queue() {
        let pl = pool();
        let m = Maintainer::spawn(
            pl.handle(),
            MaintConfig {
                // Long interval so requests stay queued.
                poll_interval: Duration::from_secs(60),
                ..MaintConfig::default()
            },
        );
        // Give the thread a moment to enter its sleep.
        std::thread::sleep(Duration::from_millis(20));
        for i in 0..5 {
            m.submit(MaintRequest::Update {
                slot: i,
                ppage: PageIdx(0),
                version: i as u64 + 1,
            });
        }
        let dropped = m.drop_pending();
        assert!(dropped <= 5);
        assert_eq!(m.pending(), 0);
    }
}
