//! # shortcut-core — page-table-backed inner nodes
//!
//! The paper's contribution: replace the explicit pointer array of a
//! radix-style inner node with *implicit indirections in the OS page
//! table*, so that a slot lookup resolves a single hardware-accelerated
//! indirection instead of three.
//!
//! * [`TraditionalNode`] — the baseline: a `k`-slot array of pointers to
//!   page-sized leaf nodes (Figure 1a).
//! * [`ShortcutNode`] — the shortcut: a `k`-page virtual memory area whose
//!   i-th page *is* the i-th leaf, via rewiring (Figure 1b).
//! * [`maintenance`] — the asynchronous maintenance design of §4.1: a
//!   lock-free FIFO queue of update/create requests, a mapper thread that
//!   polls it (default every 25 ms), version numbers that gate when the
//!   shortcut may serve reads, and a seqlock-style read protocol.
//! * [`route`] — the fan-in-based access-path choice of §3.2 (shortcut only
//!   while average fan-in ≤ 8).

pub mod hybrid;
pub mod maintenance;
pub mod metrics;
pub mod route;
pub mod shortcut_node;
pub mod traditional;
pub mod version;

pub use hybrid::HybridNode;
pub use maintenance::{
    service_census, CompactionPolicy, MaintConfig, MaintRequest, Maintainer, MapperEngine,
    MAX_PUBLISH_SHIFT,
};
pub use metrics::MaintMetrics;
pub use route::RoutePolicy;
pub use shortcut_node::ShortcutNode;
pub use traditional::TraditionalNode;
pub use version::{ReadTicket, SharedDirectoryState};
