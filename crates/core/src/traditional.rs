//! The traditional pointer-based inner node (paper Figure 1a).
//!
//! A flat array of `k` slots, each holding a raw pointer to a page-sized
//! leaf node (or null). Looking up slot `i` costs one array load plus one
//! pointer dereference — and, invisibly, up to two page-table translations,
//! which is precisely the overhead the shortcut variant eliminates.

/// A `k`-slot inner node holding explicit pointers to leaf pages.
///
/// Leaf pointers typically point into a [`shortcut_rewire::PagePool`]'s
/// linear view (whose base address is stable), but any stable address
/// works — the node does not own the leaves.
pub struct TraditionalNode {
    slots: Box<[*mut u8]>,
}

impl TraditionalNode {
    /// A node with `k` null slots.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "node must have at least one slot");
        TraditionalNode {
            slots: vec![std::ptr::null_mut(); k].into_boxed_slice(),
        }
    }

    /// Number of slots.
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Store `leaf` in slot `i` (the paper's "setting an indirection").
    #[inline]
    pub fn set_slot(&mut self, i: usize, leaf: *mut u8) {
        self.slots[i] = leaf;
    }

    /// The pointer stored in slot `i` (possibly null).
    #[inline]
    pub fn get(&self, i: usize) -> *mut u8 {
        self.slots[i]
    }

    /// Follow slot `i` to its leaf. Returns `None` for null slots.
    ///
    /// This is the *three-indirection* path of Figure 1a: (1) the implicit
    /// page-table translation for the slot array access, (2) the explicit
    /// pointer, (3) the implicit translation for the leaf access performed
    /// by the caller's subsequent reads.
    #[inline]
    pub fn follow(&self, i: usize) -> Option<*mut u8> {
        let p = self.slots[i];
        if p.is_null() {
            None
        } else {
            Some(p)
        }
    }

    /// Grow to `new_k` slots (used by directory doubling): slot `i` of the
    /// new node receives the pointer of old slot `i / 2`, the extendible-
    /// hashing doubling rule.
    pub fn doubled(&self) -> TraditionalNode {
        let k = self.slots.len();
        let mut n = TraditionalNode::new(k * 2);
        for i in 0..k * 2 {
            n.slots[i] = self.slots[i / 2];
        }
        n
    }

    /// Iterate over `(slot, pointer)` pairs of non-null slots.
    pub fn iter_set(&self) -> impl Iterator<Item = (usize, *mut u8)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_null())
            .map(|(i, p)| (i, *p))
    }
}

// SAFETY: the node only stores pointers; dereferencing them is the caller's
// (unsafe) responsibility. Sending the table of pointers across threads is
// fine as long as the pointees outlive it, which the owner guarantees.
unsafe impl Send for TraditionalNode {}
// SAFETY: no interior mutability — every mutation requires `&mut self`, so
// shared references permit only reads of the plain pointer array.
unsafe impl Sync for TraditionalNode {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_null() {
        let n = TraditionalNode::new(4);
        assert_eq!(n.slots(), 4);
        for i in 0..4 {
            assert!(n.follow(i).is_none());
        }
    }

    #[test]
    fn set_and_follow() {
        let mut n = TraditionalNode::new(4);
        let mut leaf = [0u8; 8];
        n.set_slot(2, leaf.as_mut_ptr());
        assert_eq!(n.follow(2), Some(leaf.as_mut_ptr()));
        assert!(n.follow(1).is_none());
    }

    #[test]
    fn doubling_replicates_pointers() {
        let mut n = TraditionalNode::new(2);
        let mut a = [0u8; 8];
        let mut b = [0u8; 8];
        n.set_slot(0, a.as_mut_ptr());
        n.set_slot(1, b.as_mut_ptr());
        let d = n.doubled();
        assert_eq!(d.slots(), 4);
        assert_eq!(d.get(0), a.as_mut_ptr());
        assert_eq!(d.get(1), a.as_mut_ptr());
        assert_eq!(d.get(2), b.as_mut_ptr());
        assert_eq!(d.get(3), b.as_mut_ptr());
    }

    #[test]
    fn iter_set_skips_nulls() {
        let mut n = TraditionalNode::new(4);
        let mut a = [0u8; 8];
        n.set_slot(3, a.as_mut_ptr());
        let set: Vec<_> = n.iter_set().collect();
        assert_eq!(set, vec![(3, a.as_mut_ptr())]);
    }

    #[test]
    #[should_panic]
    fn zero_slots_rejected() {
        let _ = TraditionalNode::new(0);
    }
}
