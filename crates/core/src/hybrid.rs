//! A hybrid inner node: traditional and shortcut side by side, with
//! fan-in-routed access (the paper's §4.1 design, generalized beyond
//! extendible hashing).
//!
//! The traditional node is the synchronous source of truth; the shortcut is
//! rebuilt/updated by the owner (synchronously here — for the asynchronous
//! variant see [`crate::maintenance`]) and consulted only while the fan-in
//! policy favours it. This is the single-threaded building block for any
//! radix-style structure that wants shortcuts without the full maintenance
//! machinery.

use crate::route::RoutePolicy;
use crate::shortcut_node::ShortcutNode;
use crate::traditional::TraditionalNode;
use shortcut_rewire::{PageIdx, PoolHandle, Result};

/// Traditional + shortcut node pair with policy-driven routing.
pub struct HybridNode {
    trad: TraditionalNode,
    shortcut: ShortcutNode,
    policy: RoutePolicy,
    /// Distinct leaves currently referenced (drives the fan-in estimate).
    distinct_leaves: usize,
    /// Slots with a leaf set.
    set_slots: usize,
    /// Routing decisions taken so far: (shortcut, traditional).
    routed: (u64, u64),
}

impl HybridNode {
    /// Create a hybrid node with `k` slots (eagerly populated shortcut).
    ///
    /// # Errors
    ///
    /// Propagates the shortcut area's reservation/population failure —
    /// notably `mmap` hitting `vm.max_map_count` for large `k`.
    pub fn try_new(k: usize, policy: RoutePolicy) -> Result<Self> {
        Ok(HybridNode {
            trad: TraditionalNode::new(k),
            shortcut: ShortcutNode::new_populated(k)?,
            policy,
            distinct_leaves: 0,
            set_slots: 0,
            routed: (0, 0),
        })
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.trad.slots()
    }

    /// Set slot `i` to the leaf at `leaf_ptr` / pool page `ppage`,
    /// updating both representations synchronously. `new_leaf` says whether
    /// this leaf was not referenced by any slot before (fan-in bookkeeping).
    pub fn set_slot(
        &mut self,
        i: usize,
        pool: &PoolHandle,
        leaf_ptr: *mut u8,
        ppage: PageIdx,
        new_leaf: bool,
    ) -> Result<()> {
        let was_set = !self.trad.get(i).is_null();
        self.trad.set_slot(i, leaf_ptr);
        self.shortcut.set_slot(i, pool, ppage)?;
        if !was_set {
            self.set_slots += 1;
        }
        if new_leaf {
            self.distinct_leaves += 1;
        }
        Ok(())
    }

    /// Current average fan-in over the set slots.
    pub fn avg_fanin(&self) -> f64 {
        RoutePolicy::avg_fanin(self.set_slots, self.distinct_leaves)
    }

    /// Follow slot `i` via the policy-chosen path. Returns the leaf pointer
    /// (null if the slot is unset). Both paths are always correct; the
    /// policy only decides which is *faster*.
    #[inline]
    pub fn follow(&mut self, i: usize) -> *mut u8 {
        if self.policy.use_shortcut(self.avg_fanin(), true) {
            self.routed.0 += 1;
            self.shortcut.slot_ptr(i)
        } else {
            self.routed.1 += 1;
            self.trad.get(i)
        }
    }

    /// Follow slot `i` explicitly via the traditional path.
    #[inline]
    pub fn follow_traditional(&self, i: usize) -> *mut u8 {
        self.trad.get(i)
    }

    /// Follow slot `i` explicitly via the shortcut path.
    #[inline]
    pub fn follow_shortcut(&self, i: usize) -> *mut u8 {
        self.shortcut.slot_ptr(i)
    }

    /// `(via shortcut, via traditional)` routing counts.
    pub fn routing_counts(&self) -> (u64, u64) {
        self.routed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcut_rewire::{PagePool, PoolConfig};

    fn pool() -> PagePool {
        PagePool::new(PoolConfig {
            initial_pages: 16,
            view_capacity_pages: 256,
            ..PoolConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn both_paths_agree() {
        let mut p = pool();
        let h = p.handle();
        let mut node = HybridNode::try_new(8, RoutePolicy::default()).unwrap();
        let mut pages = Vec::new();
        for i in 0..8 {
            let pg = p.alloc_page().unwrap();
            // SAFETY: the pointer resolves a slot this test wired via set_slot;
            // the node's area and the pool view both outlive the access.
            unsafe {
                *(p.page_ptr(pg) as *mut u64) = 100 + i as u64;
            }
            pages.push(pg);
            node.set_slot(i, &h, p.page_ptr(pg), pg, true).unwrap();
        }
        for i in 0..8 {
            // SAFETY: the pointer resolves a slot this test wired via set_slot;
            // the node's area and the pool view both outlive the access.
            let a = unsafe { *(node.follow_traditional(i) as *const u64) };
            // SAFETY: the pointer resolves a slot this test wired via set_slot;
            // the node's area and the pool view both outlive the access.
            let b = unsafe { *(node.follow_shortcut(i) as *const u64) };
            assert_eq!(a, b);
            assert_eq!(a, 100 + i as u64);
        }
    }

    #[test]
    fn routing_follows_fanin() {
        let mut p = pool();
        let h = p.handle();
        // 16 slots all pointing at ONE leaf: fan-in 16 > threshold 8.
        let mut node = HybridNode::try_new(16, RoutePolicy::default()).unwrap();
        let pg = p.alloc_page().unwrap();
        for i in 0..16 {
            node.set_slot(i, &h, p.page_ptr(pg), pg, i == 0).unwrap();
        }
        assert_eq!(node.avg_fanin(), 16.0);
        node.follow(3);
        assert_eq!(node.routing_counts(), (0, 1), "high fan-in -> traditional");

        // A second node with one leaf per slot: fan-in 1 -> shortcut.
        let mut node2 = HybridNode::try_new(4, RoutePolicy::default()).unwrap();
        for i in 0..4 {
            let pg = p.alloc_page().unwrap();
            node2.set_slot(i, &h, p.page_ptr(pg), pg, true).unwrap();
        }
        assert_eq!(node2.avg_fanin(), 1.0);
        node2.follow(0);
        assert_eq!(node2.routing_counts(), (1, 0), "low fan-in -> shortcut");
    }

    #[test]
    fn resetting_a_slot_keeps_agreement() {
        let mut p = pool();
        let h = p.handle();
        let mut node = HybridNode::try_new(2, RoutePolicy::default()).unwrap();
        let a = p.alloc_page().unwrap();
        let b = p.alloc_page().unwrap();
        // SAFETY: the pointer resolves a slot this test wired via set_slot;
        // the node's area and the pool view both outlive the access.
        unsafe {
            *(p.page_ptr(a) as *mut u64) = 1;
            *(p.page_ptr(b) as *mut u64) = 2;
        }
        node.set_slot(0, &h, p.page_ptr(a), a, true).unwrap();
        node.set_slot(0, &h, p.page_ptr(b), b, true).unwrap();
        // SAFETY: the pointer resolves a slot this test wired via set_slot;
        // the node's area and the pool view both outlive the access.
        let t = unsafe { *(node.follow_traditional(0) as *const u64) };
        // SAFETY: the pointer resolves a slot this test wired via set_slot;
        // the node's area and the pool view both outlive the access.
        let s = unsafe { *(node.follow_shortcut(0) as *const u64) };
        assert_eq!(t, 2);
        assert_eq!(s, 2);
    }
}
