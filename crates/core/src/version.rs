//! Version-number synchronization between the traditional and the shortcut
//! directory (paper §4.1).
//!
//! Both directories carry a version number; every modification to the
//! traditional directory increments its version, and the mapper thread
//! stamps the shortcut's version only *after* the corresponding rewirings
//! **and** the page-table population have completed. The shortcut may serve
//! a read only while the two versions are equal.
//!
//! Reads follow a seqlock-style protocol ([`SharedDirectoryState::begin_read`]
//! / [`SharedDirectoryState::still_valid`]): validate versions, read through the
//! published base pointer, validate again. Retired shortcut areas stay
//! mapped until every reader pin taken before their retirement has drained
//! (see [`shortcut_rewire::RetireList`]), so a read that loses the race
//! reads *stale but mapped* memory and is then discarded — never a fault.
//! Dereferencing a ticket's base therefore requires holding a
//! [`shortcut_rewire::ReaderPin`] from the pool the shortcut maps.

use shortcut_rewire::sync::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Shared state published by the mapper thread and read by lookups.
#[derive(Debug)]
pub struct SharedDirectoryState {
    /// Version of the traditional directory (bumped by the index on every
    /// directory-modifying operation).
    traditional_version: AtomicU64,
    /// Version the current shortcut directory reflects (stamped by the
    /// mapper after rewiring + population).
    shortcut_version: AtomicU64,
    /// Base address of the current shortcut area (null until first create).
    base: AtomicPtr<u8>,
    /// Slot count of the current shortcut area.
    slots: AtomicUsize,
    /// Whether the mapper skipped the latest rebuild because the directory
    /// no longer fits the VMA budget. Readers fall back to the traditional
    /// directory until a rebuild fits again.
    suspended: AtomicBool,
    /// Whether the mapper's poll loop observed the live directory's VMA
    /// footprint above the compaction trigger. The write path (the only
    /// place with exclusive access to the bucket pages) checks this flag
    /// and performs the physical moves; the mapper clears it once the
    /// footprint drops back below the trigger's hysteresis band.
    compaction_wanted: AtomicBool,
}

/// Proof that a shortcut read started in sync; must be revalidated after
/// the read with [`SharedDirectoryState::still_valid`].
#[derive(Debug, Clone, Copy)]
pub struct ReadTicket {
    version: u64,
    /// Published base pointer at ticket time.
    pub base: *mut u8,
    /// Published slot count at ticket time.
    pub slots: usize,
}

impl SharedDirectoryState {
    /// Fresh state: both versions 0, no shortcut published.
    pub fn new() -> Self {
        SharedDirectoryState {
            traditional_version: AtomicU64::new(0),
            shortcut_version: AtomicU64::new(0),
            base: AtomicPtr::new(std::ptr::null_mut()),
            slots: AtomicUsize::new(0),
            suspended: AtomicBool::new(false),
            compaction_wanted: AtomicBool::new(false),
        }
    }

    /// Record whether the live directory's mapping footprint exceeds the
    /// compaction trigger (set/cleared by the mapper thread's poll loop).
    pub fn set_compaction_wanted(&self, wanted: bool) {
        self.compaction_wanted.store(wanted, Ordering::Release);
    }

    /// Whether the mapper has requested a compaction pass. Checked by the
    /// index's write path, which owns the bucket pages exclusively and is
    /// therefore the only place relocation is sound.
    pub fn compaction_wanted(&self) -> bool {
        self.compaction_wanted.load(Ordering::Acquire)
    }

    /// Slot count of the currently published shortcut area (0 before the
    /// first create), regardless of sync state. Smaller than the
    /// traditional directory's slot count when admission published at a
    /// coarser depth to fit the VMA budget.
    pub fn published_slots(&self) -> usize {
        self.slots.load(Ordering::Acquire)
    }

    /// Record whether shortcut maintenance is suspended by the VMA budget
    /// (set by the mapper thread only).
    pub fn set_suspended(&self, suspended: bool) {
        self.suspended.store(suspended, Ordering::Release);
    }

    /// Whether the mapper skipped the latest rebuild because it would not
    /// fit the VMA budget. The index stays fully usable — lookups route
    /// through the traditional directory — but the shortcut will not catch
    /// up until the budget allows a rebuild.
    pub fn suspended(&self) -> bool {
        self.suspended.load(Ordering::Acquire)
    }

    /// Record a modification of the traditional directory; returns the new
    /// version (to be attached to the maintenance request).
    pub fn bump_traditional(&self) -> u64 {
        self.traditional_version.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Current traditional version.
    pub fn traditional_version(&self) -> u64 {
        self.traditional_version.load(Ordering::Acquire)
    }

    /// Version currently reflected by the shortcut.
    pub fn shortcut_version(&self) -> u64 {
        self.shortcut_version.load(Ordering::Acquire)
    }

    /// Whether the shortcut is in sync (and something has been published).
    pub fn in_sync(&self) -> bool {
        let sv = self.shortcut_version.load(Ordering::Acquire);
        sv != 0
            && sv == self.traditional_version.load(Ordering::Acquire)
            && !self.base.load(Ordering::Acquire).is_null()
    }

    /// Publish a (possibly new) shortcut area reflecting `version`.
    /// Called by the mapper thread only, *after* population finished.
    pub fn publish(&self, base: *mut u8, slots: usize, version: u64) {
        self.base.store(base, Ordering::Release);
        self.slots.store(slots, Ordering::Release);
        self.shortcut_version.store(version, Ordering::Release);
    }

    /// Begin a shortcut read: returns a ticket if the shortcut is currently
    /// in sync, else `None` (caller takes the traditional path).
    #[inline]
    pub fn begin_read(&self) -> Option<ReadTicket> {
        let sv = self.shortcut_version.load(Ordering::Acquire);
        if sv == 0 || sv != self.traditional_version.load(Ordering::Acquire) {
            return None;
        }
        let base = self.base.load(Ordering::Acquire);
        if base.is_null() {
            return None;
        }
        let slots = self.slots.load(Ordering::Acquire);
        Some(ReadTicket {
            version: sv,
            base,
            slots,
        })
    }

    /// Validate a ticket after the read: `true` iff no modification raced
    /// with it (neither version moved), so the value read may be used.
    #[inline]
    pub fn still_valid(&self, t: ReadTicket) -> bool {
        // The reader's data loads through `t.base` are plain loads; an
        // acquire *load* below would not keep them from being satisfied
        // after the version re-check (acquire orders later accesses, not
        // earlier ones). The acquire fence is the classic seqlock
        // read-side exit barrier: every load issued before it is ordered
        // before the two validation loads, so a reader that consumed any
        // post-bump bucket byte is guaranteed to observe the version
        // moved and discard. `tests/loom_seqlock.rs` proves this fence
        // load-bearing (dropping it admits a torn read).
        fence(Ordering::Acquire);
        self.shortcut_version.load(Ordering::Acquire) == t.version
            && self.traditional_version.load(Ordering::Acquire) == t.version
    }
}

impl Default for SharedDirectoryState {
    fn default() -> Self {
        Self::new()
    }
}

/// Deliberately-broken seqlock variants, compiled only for the model
/// tests: each drops one link of the protocol so `tests/loom_seqlock.rs`
/// can prove the checker flags it. Never call these outside that suite.
#[cfg(feature = "loomish")]
impl SharedDirectoryState {
    /// Seeded bug: ticket validation without the acquire fence. The data
    /// loads are free to be satisfied after the version re-check, so a
    /// torn bucket read can pass validation.
    #[inline]
    pub fn still_valid_seeded_unfenced(&self, t: ReadTicket) -> bool {
        self.shortcut_version.load(Ordering::Acquire) == t.version
            && self.traditional_version.load(Ordering::Acquire) == t.version
    }

    /// Seeded bug: publication with the version stamp relaxed. Readers can
    /// observe the new version without the bucket stores it is supposed to
    /// cover, and validation has nothing to pair with.
    pub fn publish_seeded_relaxed(&self, base: *mut u8, slots: usize, version: u64) {
        self.base.store(base, Ordering::Release);
        self.slots.store(slots, Ordering::Release);
        self.shortcut_version.store(version, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_out_of_sync() {
        let s = SharedDirectoryState::new();
        assert!(!s.in_sync());
        assert!(s.begin_read().is_none());
    }

    #[test]
    fn publish_brings_in_sync() {
        let s = SharedDirectoryState::new();
        let v = s.bump_traditional();
        assert!(!s.in_sync());
        let mut page = [0u8; 8];
        s.publish(page.as_mut_ptr(), 1, v);
        assert!(s.in_sync());
        let t = s.begin_read().unwrap();
        assert_eq!(t.slots, 1);
        assert!(s.still_valid(t));
    }

    #[test]
    fn modification_invalidates_inflight_read() {
        let s = SharedDirectoryState::new();
        let v = s.bump_traditional();
        let mut page = [0u8; 8];
        s.publish(page.as_mut_ptr(), 1, v);
        let t = s.begin_read().unwrap();
        // A split happens mid-read…
        s.bump_traditional();
        assert!(!s.still_valid(t), "racing read must be discarded");
        assert!(s.begin_read().is_none(), "now out of sync");
    }

    #[test]
    fn catch_up_restores_sync() {
        let s = SharedDirectoryState::new();
        let v1 = s.bump_traditional();
        let mut page = [0u8; 8];
        s.publish(page.as_mut_ptr(), 1, v1);
        let v2 = s.bump_traditional();
        assert!(!s.in_sync());
        s.publish(page.as_mut_ptr(), 2, v2);
        assert!(s.in_sync());
        assert_eq!(s.begin_read().unwrap().slots, 2);
    }

    #[test]
    fn version_zero_never_reads() {
        // Even if traditional is still at 0 (no modifications yet), an
        // unpublished shortcut must not serve reads.
        let s = SharedDirectoryState::new();
        assert_eq!(s.traditional_version(), 0);
        assert_eq!(s.shortcut_version(), 0);
        assert!(s.begin_read().is_none());
    }
}
