//! The shortcut inner node (paper Figure 1b).
//!
//! A `k`-slot virtual memory area where page `i` *is* slot `i`: rather than
//! storing a pointer, slot `i` is rewired so that its virtual window maps
//! to the physical slot of the referenced leaf. "Following" the slot is
//! then pure address arithmetic (`base + (i << slot_shift)`, `slot_shift`
//! = 12 at the default one-page layout); the actual indirection is
//! resolved by the MMU when the leaf is read — one hardware-accelerated
//! page-table lookup, cached by the TLB.

use shortcut_rewire::{Mapping, PageIdx, PoolHandle, Result, SlotLayout, VirtArea};

/// A `k`-slot inner node expressed purely in the page table.
pub struct ShortcutNode {
    area: VirtArea,
}

impl ShortcutNode {
    /// Reserve a shortcut node with `k` slots (one virtual page each).
    /// Rewirings populate the page table lazily (a PTE appears at first
    /// access, via a soft fault).
    pub fn new(k: usize) -> Result<Self> {
        Ok(ShortcutNode {
            area: VirtArea::reserve(k)?,
        })
    }

    /// Reserve with **eager** page-table population on every rewiring
    /// (`MAP_POPULATE`), the paper's recommended mode for hiding fault cost.
    pub fn new_populated(k: usize) -> Result<Self> {
        Ok(ShortcutNode {
            area: VirtArea::reserve_populated(k)?,
        })
    }

    /// Reserve a `k`-slot node matching `pool`'s physical
    /// [`SlotLayout`] — the constructor the mapper engine uses, so that a
    /// pool of `2^k`-page slots gets shortcut nodes whose windows span
    /// whole slots.
    pub fn for_pool(k: usize, pool: &PoolHandle, populated: bool) -> Result<Self> {
        let area = if populated {
            VirtArea::reserve_layout_populated(k, pool.layout())?
        } else {
            VirtArea::reserve_layout(k, pool.layout())?
        };
        Ok(ShortcutNode { area })
    }

    /// The slot layout the node's area was reserved with.
    #[inline]
    pub fn layout(&self) -> SlotLayout {
        self.area.layout()
    }

    /// Charge the node's VMA footprint (current estimate, tracked across
    /// future remappings) against `pool`'s
    /// [`shortcut_rewire::VmaBudget`] for the rest of its lifetime.
    /// Callers that build under a worst-case
    /// [`shortcut_rewire::BudgetReservation`] attach *after* the build so
    /// the directory is never double-counted while it is being rewired.
    pub fn charge_to(&mut self, pool: &PoolHandle) {
        self.area.attach_budget(pool.binding());
    }

    /// Attach `pool`'s budget without charging now: the caller has
    /// already settled a reservation down to this node's exact estimate
    /// (see [`shortcut_rewire::BudgetReservation::settle`]). Future
    /// remapping deltas and the release on drop are tracked as usual.
    pub fn charge_to_prepaid(&mut self, pool: &PoolHandle) {
        self.area.attach_budget_prepaid(pool.binding());
    }

    /// Surrender the node's virtual area (for retirement into a
    /// [`shortcut_rewire::RetireList`]).
    pub fn into_area(self) -> VirtArea {
        self.area
    }

    /// Estimated VMAs the node currently occupies.
    pub fn vma_estimate(&self) -> usize {
        self.area.vma_estimate()
    }

    /// Number of slots.
    #[inline]
    pub fn slots(&self) -> usize {
        self.area.pages()
    }

    /// Set slot `i` to reference the leaf stored in pool page `ppage`
    /// (one rewiring `mmap`).
    pub fn set_slot(&mut self, i: usize, pool: &PoolHandle, ppage: PageIdx) -> Result<()> {
        self.area.rewire(i, pool, ppage)
    }

    /// Set `n` consecutive slots to `n` consecutive pool pages with a
    /// single `mmap` (the coalescing optimization).
    pub fn set_run(&mut self, i: usize, pool: &PoolHandle, ppage: PageIdx, n: usize) -> Result<()> {
        self.area.rewire_run(i, pool, ppage, n)
    }

    /// Apply a sorted batch of `(slot, pool page)` assignments, coalescing
    /// contiguous runs. Returns the number of `mmap` calls used.
    pub fn set_batch(
        &mut self,
        pool: &PoolHandle,
        assignments: &[(usize, PageIdx)],
    ) -> Result<u64> {
        self.area.rewire_batch(pool, assignments)
    }

    /// Clear slot `i` back to the anonymous (null-like) state.
    pub fn clear_slot(&mut self, i: usize) -> Result<()> {
        self.area.reset(i)
    }

    /// Address of slot `i`'s leaf — **pure arithmetic, no memory access**.
    /// Dereferencing the returned pointer is where the single implicit
    /// indirection happens.
    #[inline]
    pub fn slot_ptr(&self, i: usize) -> *mut u8 {
        self.area.page_ptr(i)
    }

    /// Base address of the node's virtual area.
    #[inline]
    pub fn base(&self) -> *mut u8 {
        self.area.base()
    }

    /// Whether slot `i` is currently rewired, and to which pool page.
    pub fn slot_mapping(&self, i: usize) -> Option<PageIdx> {
        match self.area.mapping(i) {
            Mapping::Anon => None,
            Mapping::Pool(p) => Some(p),
        }
    }

    /// Touch every rewired slot to force page-table population; returns the
    /// number of slots touched (phase (3) of the paper's Table 1).
    pub fn populate(&self) -> usize {
        self.area.populate_by_touch()
    }

    /// Total `mmap` calls issued by this node so far.
    pub fn mmap_calls(&self) -> u64 {
        self.area.mmap_calls()
    }

    /// Size of the virtual area in bytes (`slots × slot_bytes`) — the
    /// quantity that drives TLB pressure in §3.2.
    pub fn virtual_bytes(&self) -> usize {
        self.slots() * self.area.slot_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcut_rewire::{page_size, PagePool, PoolConfig};

    fn pool() -> PagePool {
        PagePool::new(PoolConfig {
            initial_pages: 8,
            min_growth_pages: 8,
            view_capacity_pages: 1024,
            ..PoolConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn slots_resolve_to_leaves() {
        let mut p = pool();
        let h = p.handle();
        let l0 = p.alloc_page().unwrap();
        let l1 = p.alloc_page().unwrap();
        // SAFETY: slot_ptr of a slot wired (or deliberately left anon) above;
        // the node's area and the pool view both outlive the access.
        unsafe {
            *(p.page_ptr(l0) as *mut u64) = 100;
            *(p.page_ptr(l1) as *mut u64) = 101;
        }
        let mut n = ShortcutNode::new(4).unwrap();
        n.set_slot(0, &h, l0).unwrap();
        n.set_slot(3, &h, l1).unwrap();
        // SAFETY: slot_ptr of a slot wired (or deliberately left anon) above;
        // the node's area and the pool view both outlive the access.
        unsafe {
            assert_eq!(*(n.slot_ptr(0) as *const u64), 100);
            assert_eq!(*(n.slot_ptr(3) as *const u64), 101);
            assert_eq!(*(n.slot_ptr(1) as *const u64), 0); // anon slot
        }
        assert_eq!(n.slot_mapping(0), Some(l0));
        assert_eq!(n.slot_mapping(1), None);
    }

    #[test]
    fn fan_in_two_slots_one_leaf() {
        let mut p = pool();
        let h = p.handle();
        let l = p.alloc_page().unwrap();
        let mut n = ShortcutNode::new(2).unwrap();
        n.set_slot(0, &h, l).unwrap();
        n.set_slot(1, &h, l).unwrap();
        // SAFETY: slot_ptr of a slot wired (or deliberately left anon) above;
        // the node's area and the pool view both outlive the access.
        unsafe {
            *(n.slot_ptr(0) as *mut u64) = 5;
            assert_eq!(*(n.slot_ptr(1) as *const u64), 5);
        }
    }

    #[test]
    fn writes_via_slot_reach_pool() {
        let mut p = pool();
        let h = p.handle();
        let l = p.alloc_page().unwrap();
        let mut n = ShortcutNode::new(1).unwrap();
        n.set_slot(0, &h, l).unwrap();
        // SAFETY: slot_ptr of a slot wired (or deliberately left anon) above;
        // the node's area and the pool view both outlive the access.
        unsafe {
            *(n.slot_ptr(0) as *mut u64) = 77;
            assert_eq!(*(p.page_ptr(l) as *const u64), 77);
        }
    }

    #[test]
    fn clear_slot_reads_zero_again() {
        let mut p = pool();
        let h = p.handle();
        let l = p.alloc_page().unwrap();
        // SAFETY: slot_ptr of a slot wired (or deliberately left anon) above;
        // the node's area and the pool view both outlive the access.
        unsafe {
            *(p.page_ptr(l) as *mut u64) = 9;
        }
        let mut n = ShortcutNode::new(1).unwrap();
        n.set_slot(0, &h, l).unwrap();
        n.clear_slot(0).unwrap();
        // SAFETY: slot_ptr of a slot wired (or deliberately left anon) above;
        // the node's area and the pool view both outlive the access.
        unsafe {
            assert_eq!(*(n.slot_ptr(0) as *const u64), 0);
        }
        // The leaf itself is untouched.
        // SAFETY: slot_ptr of a slot wired (or deliberately left anon) above;
        // the node's area and the pool view both outlive the access.
        unsafe {
            assert_eq!(*(p.page_ptr(l) as *const u64), 9);
        }
    }

    #[test]
    fn populate_touches_only_wired_slots() {
        let mut p = pool();
        let h = p.handle();
        let l = p.alloc_page().unwrap();
        let mut n = ShortcutNode::new(8).unwrap();
        n.set_slot(1, &h, l).unwrap();
        n.set_slot(5, &h, l).unwrap();
        assert_eq!(n.populate(), 2);
    }

    #[test]
    fn set_batch_counts_calls() {
        let mut p = pool();
        let h = p.handle();
        let run = p.alloc_run(3).unwrap();
        let mut n = ShortcutNode::new(4).unwrap();
        let calls = n
            .set_batch(
                &h,
                &[(0, run), (1, PageIdx(run.0 + 1)), (2, PageIdx(run.0 + 2))],
            )
            .unwrap();
        assert_eq!(calls, 1);
        assert_eq!(n.virtual_bytes(), 4 * page_size());
    }
}
