//! Fan-in-based access-path routing (paper §3.2 / §4.1).
//!
//! Accesses on a shortcut node always touch a virtual area of `k` pages,
//! whereas the traditional variant touches `k · 8 B` of directory plus `m`
//! leaf pages. With high fan-in (`k/m` large) the shortcut's bigger virtual
//! span thrashes the TLB and loses. The paper routes through the shortcut
//! only while the **average fan-in is ≤ 8**.

/// Decides between the shortcut and the traditional access path.
#[derive(Debug, Clone, Copy)]
pub struct RoutePolicy {
    /// Maximum average fan-in for which the shortcut is used.
    pub fanin_threshold: f64,
}

impl Default for RoutePolicy {
    fn default() -> Self {
        // The paper's empirically chosen bound.
        RoutePolicy {
            fanin_threshold: 8.0,
        }
    }
}

impl RoutePolicy {
    /// A policy with a custom threshold (ablation A2).
    pub fn with_threshold(fanin_threshold: f64) -> Self {
        RoutePolicy { fanin_threshold }
    }

    /// Average fan-in of a directory with `slots` slots over `leaves`
    /// distinct leaves.
    #[inline]
    pub fn avg_fanin(slots: usize, leaves: usize) -> f64 {
        if leaves == 0 {
            f64::INFINITY
        } else {
            slots as f64 / leaves as f64
        }
    }

    /// Whether a lookup should take the shortcut path, given the current
    /// average fan-in and whether the shortcut is in sync.
    #[inline]
    pub fn use_shortcut(&self, avg_fanin: f64, in_sync: bool) -> bool {
        in_sync && avg_fanin <= self.fanin_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threshold_is_eight() {
        let p = RoutePolicy::default();
        assert!(p.use_shortcut(8.0, true));
        assert!(!p.use_shortcut(8.01, true));
        assert!(p.use_shortcut(1.0, true));
    }

    #[test]
    fn out_of_sync_never_shortcuts() {
        let p = RoutePolicy::default();
        assert!(!p.use_shortcut(1.0, false));
    }

    #[test]
    fn fanin_math() {
        assert_eq!(RoutePolicy::avg_fanin(8, 4), 2.0);
        assert_eq!(RoutePolicy::avg_fanin(4096, 4096), 1.0); // audit:allow(page-literal): slot/leaf counts, not byte sizes
        assert!(RoutePolicy::avg_fanin(4, 0).is_infinite());
    }
}
