//! Counters for the asynchronous maintenance engine.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe maintenance counters, shared between the index (producer)
/// and the mapper thread (consumer).
#[derive(Debug, Default)]
pub struct MaintMetrics {
    /// Update requests processed.
    pub updates_applied: AtomicU64,
    /// Create (full rebuild) requests processed.
    pub creates_applied: AtomicU64,
    /// Update requests discarded because a newer create superseded them.
    pub updates_discarded: AtomicU64,
    /// Create requests skipped because the rebuilt directory would not fit
    /// the VMA budget (maintenance suspended; lookups fall back).
    pub creates_skipped: AtomicU64,
    /// Individual slot rewirings performed.
    pub slots_rewired: AtomicU64,
    /// mmap calls spent on rebuilds (after coalescing).
    pub create_mmap_calls: AtomicU64,
    /// Pages touched for page-table population.
    pub pages_populated: AtomicU64,
    /// Times the mapper woke up and found work.
    pub busy_polls: AtomicU64,
    /// Times the mapper woke up to an empty queue.
    pub idle_polls: AtomicU64,
}

/// Plain-value snapshot of [`MaintMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintSnapshot {
    /// Update requests processed.
    pub updates_applied: u64,
    /// Create requests processed.
    pub creates_applied: u64,
    /// Updates discarded as superseded.
    pub updates_discarded: u64,
    /// Creates skipped by the VMA budget.
    pub creates_skipped: u64,
    /// Slots rewired in total.
    pub slots_rewired: u64,
    /// mmap calls used by creates.
    pub create_mmap_calls: u64,
    /// Pages populated.
    pub pages_populated: u64,
    /// Polls with work.
    pub busy_polls: u64,
    /// Polls without work.
    pub idle_polls: u64,
}

impl MaintMetrics {
    /// Copy out all counters.
    pub fn snapshot(&self) -> MaintSnapshot {
        MaintSnapshot {
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            creates_applied: self.creates_applied.load(Ordering::Relaxed),
            updates_discarded: self.updates_discarded.load(Ordering::Relaxed),
            creates_skipped: self.creates_skipped.load(Ordering::Relaxed),
            slots_rewired: self.slots_rewired.load(Ordering::Relaxed),
            create_mmap_calls: self.create_mmap_calls.load(Ordering::Relaxed),
            pages_populated: self.pages_populated.load(Ordering::Relaxed),
            busy_polls: self.busy_polls.load(Ordering::Relaxed),
            idle_polls: self.idle_polls.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = MaintMetrics::default();
        m.updates_applied.fetch_add(3, Ordering::Relaxed);
        m.slots_rewired.fetch_add(6, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.updates_applied, 3);
        assert_eq!(s.slots_rewired, 6);
        assert_eq!(s.creates_applied, 0);
    }
}
