//! Counters for the asynchronous maintenance engine.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe maintenance counters, shared between the index (producer)
/// and the mapper thread (consumer).
#[derive(Debug, Default)]
pub struct MaintMetrics {
    /// Update requests processed.
    pub updates_applied: AtomicU64,
    /// Create (full rebuild) requests processed.
    pub creates_applied: AtomicU64,
    /// Update requests discarded because a newer create superseded them.
    pub updates_discarded: AtomicU64,
    /// Create requests skipped because the rebuilt directory **genuinely**
    /// does not fit the VMA budget even with nothing left to reclaim
    /// (maintenance suspended; lookups fall back until the budget grows
    /// or compaction shrinks the footprint).
    pub creates_skipped: AtomicU64,
    /// Create requests deferred **transiently**: admission failed only
    /// because retired areas were still pinned by readers, so the rebuild
    /// is retried on upcoming poll ticks once reclamation drains them.
    pub creates_deferred: AtomicU64,
    /// Creates published at a **coarser depth** than the traditional
    /// directory because the exact depth did not fit the VMA budget
    /// (buckets deeper than the published depth are served traditionally
    /// via the reader-side local-depth check).
    pub creates_coarse: AtomicU64,
    /// Gauge (not a counter): **service fraction** of the most recent
    /// coarse publish, in percent — the share of buckets whose local
    /// depth fits the published depth and are therefore resolvable
    /// through the shortcut. 100 while published at the exact depth.
    pub coarse_service_pct: AtomicU64,
    /// Bucket pages physically relocated into directory order by
    /// compaction (the write path executes the moves; this mirror makes
    /// them visible next to the mapper's counters).
    pub pages_moved: AtomicU64,
    /// Estimated VMAs saved by compaction passes (layout estimate before
    /// minus after, summed over passes).
    pub vmas_saved: AtomicU64,
    /// Completed compaction passes (full rebuild-time passes and finished
    /// incremental plans).
    pub compactions: AtomicU64,
    /// Compaction passes skipped: the target run did not fit the pool, or
    /// the layout was already as compact as fan-in permits.
    pub compaction_skipped: AtomicU64,
    /// Individual slot rewirings performed.
    pub slots_rewired: AtomicU64,
    /// mmap calls spent on rebuilds (after coalescing).
    pub create_mmap_calls: AtomicU64,
    /// Pages touched for page-table population.
    pub pages_populated: AtomicU64,
    /// Times the mapper woke up and found work.
    pub busy_polls: AtomicU64,
    /// Times the mapper woke up to an empty queue.
    pub idle_polls: AtomicU64,
}

/// Plain-value snapshot of [`MaintMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintSnapshot {
    /// Update requests processed.
    pub updates_applied: u64,
    /// Create requests processed.
    pub creates_applied: u64,
    /// Updates discarded as superseded.
    pub updates_discarded: u64,
    /// Creates skipped by the VMA budget with nothing left to reclaim
    /// (genuine suspension).
    pub creates_skipped: u64,
    /// Creates deferred transiently (reader pins stalled reclamation;
    /// retried on later ticks).
    pub creates_deferred: u64,
    /// Creates published at a coarser-than-traditional depth to fit the
    /// VMA budget.
    pub creates_coarse: u64,
    /// Service fraction (percent of buckets resolvable) of the latest
    /// publish; 100 at the exact depth.
    pub coarse_service_pct: u64,
    /// Bucket pages relocated by compaction.
    pub pages_moved: u64,
    /// Estimated VMAs saved by compaction.
    pub vmas_saved: u64,
    /// Completed compaction passes.
    pub compactions: u64,
    /// Compaction passes skipped (no space for the target run, or layout
    /// already compact).
    pub compaction_skipped: u64,
    /// Slots rewired in total.
    pub slots_rewired: u64,
    /// mmap calls used by creates.
    pub create_mmap_calls: u64,
    /// Pages populated.
    pub pages_populated: u64,
    /// Polls with work.
    pub busy_polls: u64,
    /// Polls without work.
    pub idle_polls: u64,
}

impl MaintSnapshot {
    /// Merge two mappers' snapshots (the sharded index aggregates one per
    /// shard). Every field except `coarse_service_pct` is a monotone
    /// event counter and is **summed**; `coarse_service_pct` is a gauge —
    /// the service fraction of each mapper's *latest* publish — so the
    /// merge takes the **min**: the aggregate honestly reports the
    /// worst-served shard rather than a meaningless sum (or an average
    /// that would hide one shard publishing coarse while the rest are
    /// exact).
    pub fn merge(&self, other: &MaintSnapshot) -> MaintSnapshot {
        MaintSnapshot {
            updates_applied: self.updates_applied + other.updates_applied,
            creates_applied: self.creates_applied + other.creates_applied,
            updates_discarded: self.updates_discarded + other.updates_discarded,
            creates_skipped: self.creates_skipped + other.creates_skipped,
            creates_deferred: self.creates_deferred + other.creates_deferred,
            creates_coarse: self.creates_coarse + other.creates_coarse,
            coarse_service_pct: self.coarse_service_pct.min(other.coarse_service_pct),
            pages_moved: self.pages_moved + other.pages_moved,
            vmas_saved: self.vmas_saved + other.vmas_saved,
            compactions: self.compactions + other.compactions,
            compaction_skipped: self.compaction_skipped + other.compaction_skipped,
            slots_rewired: self.slots_rewired + other.slots_rewired,
            create_mmap_calls: self.create_mmap_calls + other.create_mmap_calls,
            pages_populated: self.pages_populated + other.pages_populated,
            busy_polls: self.busy_polls + other.busy_polls,
            idle_polls: self.idle_polls + other.idle_polls,
        }
    }
}

impl MaintMetrics {
    /// Copy out all counters.
    pub fn snapshot(&self) -> MaintSnapshot {
        MaintSnapshot {
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            creates_applied: self.creates_applied.load(Ordering::Relaxed),
            updates_discarded: self.updates_discarded.load(Ordering::Relaxed),
            creates_skipped: self.creates_skipped.load(Ordering::Relaxed),
            creates_deferred: self.creates_deferred.load(Ordering::Relaxed),
            creates_coarse: self.creates_coarse.load(Ordering::Relaxed),
            coarse_service_pct: self.coarse_service_pct.load(Ordering::Relaxed),
            pages_moved: self.pages_moved.load(Ordering::Relaxed),
            vmas_saved: self.vmas_saved.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            compaction_skipped: self.compaction_skipped.load(Ordering::Relaxed),
            slots_rewired: self.slots_rewired.load(Ordering::Relaxed),
            create_mmap_calls: self.create_mmap_calls.load(Ordering::Relaxed),
            pages_populated: self.pages_populated.load(Ordering::Relaxed),
            busy_polls: self.busy_polls.load(Ordering::Relaxed),
            idle_polls: self.idle_polls.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_mins_the_service_gauge() {
        let a = MaintSnapshot {
            updates_applied: 10,
            creates_applied: 2,
            coarse_service_pct: 100,
            idle_polls: 7,
            ..MaintSnapshot::default()
        };
        let b = MaintSnapshot {
            updates_applied: 5,
            creates_applied: 1,
            coarse_service_pct: 60,
            idle_polls: 3,
            ..MaintSnapshot::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.updates_applied, 15);
        assert_eq!(m.creates_applied, 3);
        assert_eq!(m.idle_polls, 10);
        assert_eq!(
            m.coarse_service_pct, 60,
            "gauge must report the worst-served shard, not a sum"
        );
        // Merge is commutative.
        assert_eq!(m, b.merge(&a));
    }

    #[test]
    fn snapshot_reflects_counters() {
        let m = MaintMetrics::default();
        m.updates_applied.fetch_add(3, Ordering::Relaxed);
        m.slots_rewired.fetch_add(6, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.updates_applied, 3);
        assert_eq!(s.slots_rewired, 6);
        assert_eq!(s.creates_applied, 0);
    }
}
