//! Exhaustive model check of the seqlock protocol
//! ([`shortcut_core::SharedDirectoryState`]).
//!
//! Run with `cargo test -p shortcut-core --features loomish`.
//!
//! The scenario: a writer performs one full split/relocate cycle — bump
//! the traditional version, rewrite the bucket, publish the shortcut
//! version — while a reader runs the begin/read/validate dance. The
//! bucket is modeled as two words whose invariant ties them to the
//! version that published them (`data0 == version`, `data1 == 100 +
//! data0`): a reader whose ticket validates must never have observed a
//! torn pair (a mix of pre- and post-rewrite words) or a pair from a
//! different version than its ticket.
//!
//! The bucket words are loomish atomics written with `Release` and read
//! with `Relaxed`. The release attachment on the writer side stands in
//! for what the real code gets from hardware: plain bucket stores cannot
//! be hoisted above the `AcqRel` version bump. The relaxed reads model
//! the reader's plain loads through the ticket base — which is exactly
//! why `still_valid`'s acquire fence is load-bearing: without it, those
//! loads are free to be satisfied "after" the version re-check, which
//! the model expresses as the validation loads reading stale versions.

#![cfg(feature = "loomish")]

use loomish::Builder;
use shortcut_core::SharedDirectoryState;
use shortcut_rewire::sync::{AtomicU64, Ordering};
use std::sync::Arc;

/// Never dereferenced: the model only checks publication/validation, so
/// any fixed non-null value works (and a constant keeps replay
/// deterministic, unlike a heap address).
const FAKE_BASE: *mut u8 = 8 as *mut u8;

#[derive(Clone, Copy)]
enum WriterKind {
    Correct,
    /// Seeded bug: version stamped with a relaxed store.
    SeededRelaxedPublish,
    /// Seeded bug: version stamped *before* the bucket rewrite.
    SeededPublishBeforeData,
}

#[derive(Clone, Copy)]
enum ReaderKind {
    Correct,
    /// Seeded bug: validation without the acquire fence.
    SeededUnfenced,
}

fn scenario(wk: WriterKind, rk: ReaderKind) -> impl Fn() + Send + Sync + 'static {
    move || {
        let state = Arc::new(SharedDirectoryState::new());
        // One bucket, two words. Invariant: data0 holds the version of
        // the rewrite that produced it, data1 = 100 + data0.
        let data0 = Arc::new(AtomicU64::new(0));
        let data1 = Arc::new(AtomicU64::new(0));

        // Quiescent setup: version 1 published, bucket consistent. The
        // slot count doubles as the version so the reader can check its
        // (public) ticket fields against the data it read.
        let v1 = state.bump_traditional();
        data0.store(v1, Ordering::Release);
        data1.store(100 + v1, Ordering::Release);
        state.publish(FAKE_BASE, v1 as usize, v1);

        let writer = {
            let state = Arc::clone(&state);
            let data0 = Arc::clone(&data0);
            let data1 = Arc::clone(&data1);
            shortcut_rewire::sync::thread::spawn(move || {
                let v2 = state.bump_traditional();
                match wk {
                    WriterKind::Correct => {
                        data0.store(v2, Ordering::Release);
                        data1.store(100 + v2, Ordering::Release);
                        state.publish(FAKE_BASE, v2 as usize, v2);
                    }
                    WriterKind::SeededRelaxedPublish => {
                        data0.store(v2, Ordering::Release);
                        data1.store(100 + v2, Ordering::Release);
                        state.publish_seeded_relaxed(FAKE_BASE, v2 as usize, v2);
                    }
                    WriterKind::SeededPublishBeforeData => {
                        state.publish(FAKE_BASE, v2 as usize, v2);
                        data0.store(v2, Ordering::Release);
                        data1.store(100 + v2, Ordering::Release);
                    }
                }
            })
        };

        let reader = {
            let state = Arc::clone(&state);
            let data0 = Arc::clone(&data0);
            let data1 = Arc::clone(&data1);
            shortcut_rewire::sync::thread::spawn(move || {
                if let Some(t) = state.begin_read() {
                    let a = data0.load(Ordering::Relaxed);
                    let b = data1.load(Ordering::Relaxed);
                    let valid = match rk {
                        ReaderKind::Correct => state.still_valid(t),
                        ReaderKind::SeededUnfenced => state.still_valid_seeded_unfenced(t),
                    };
                    if valid {
                        assert_eq!(
                            a, t.slots as u64,
                            "validated read saw a bucket from a different version"
                        );
                        assert_eq!(b, 100 + a, "validated read saw a torn bucket");
                    }
                }
            })
        };

        writer.join().unwrap();
        reader.join().unwrap();
    }
}

fn builder() -> Builder {
    Builder::new()
        .ordering_sensitive(true)
        .preemption_bound(Some(3))
}

#[test]
fn seqlock_never_validates_a_torn_read() {
    let report = builder()
        .check(scenario(WriterKind::Correct, ReaderKind::Correct))
        .unwrap_or_else(|cx| panic!("seqlock counterexample: {cx}"));
    println!(
        "seqlock: {} interleavings explored, invariant held",
        report.executions
    );
    assert!(
        report.executions > 500,
        "suspiciously small exploration: {}",
        report.executions
    );
}

/// Teeth check: dropping the acquire fence from `still_valid` admits an
/// execution where the reader consumes a post-rewrite word yet both
/// validation loads read stale (pre-bump) versions.
#[test]
fn seeded_unfenced_validation_is_caught() {
    let err = builder()
        .check(scenario(WriterKind::Correct, ReaderKind::SeededUnfenced))
        .expect_err("unfenced validation not caught — the model checker has lost its teeth");
    assert!(
        err.message.contains("torn bucket") || err.message.contains("different version"),
        "unexpected counterexample: {err}"
    );
}

/// Teeth check: a relaxed version stamp publishes a version whose bucket
/// stores it does not cover; a reader can validate against it while
/// holding pre-rewrite words.
#[test]
fn seeded_relaxed_publish_is_caught() {
    let err = builder()
        .check(scenario(
            WriterKind::SeededRelaxedPublish,
            ReaderKind::Correct,
        ))
        .expect_err("relaxed publish not caught — the model checker has lost its teeth");
    assert!(
        err.message.contains("torn bucket") || err.message.contains("different version"),
        "unexpected counterexample: {err}"
    );
}

/// Teeth check: stamping the version before the bucket rewrite is an
/// algorithmic-order bug — a reader can validate a new-version ticket
/// against the old bucket. Caught even under plain SC interleavings.
#[test]
fn seeded_publish_before_data_is_caught() {
    let err = builder()
        .check(scenario(
            WriterKind::SeededPublishBeforeData,
            ReaderKind::Correct,
        ))
        .expect_err("early publish not caught — the model checker has lost its teeth");
    assert!(
        err.message.contains("different version") || err.message.contains("torn bucket"),
        "unexpected counterexample: {err}"
    );
}

/// The same protocol under sequentially-consistent-per-location
/// semantics: cheaper pass covering the algorithmic order independent of
/// memory-ordering subtleties.
#[test]
fn seqlock_holds_under_sc_interleavings() {
    let report = Builder::new()
        .preemption_bound(Some(3))
        .check(scenario(WriterKind::Correct, ReaderKind::Correct))
        .unwrap_or_else(|cx| panic!("seqlock SC counterexample: {cx}"));
    println!("seqlock (SC mode): {} interleavings", report.executions);
}
