//! True-concurrency stress tests of the maintenance protocol: a reader
//! thread hammers the published shortcut state through the seqlock ticket
//! while the writer splits/doubles continuously. The invariant: a reader
//! must never observe a value that the version protocol declared valid but
//! that contradicts the writer's history.

use shortcut_core::{MaintConfig, MaintRequest, Maintainer};
use shortcut_rewire::{PageIdx, PagePool, PoolConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

#[test]
fn seqlock_readers_never_observe_torn_state() {
    // Leaf pages are stamped with (generation << 32 | leaf_id). The writer
    // repeatedly rebuilds the directory so that in generation g every slot
    // s maps to a leaf stamped with generation g. A validated read must
    // therefore observe a stamp whose generation matches the version the
    // ticket was issued for — never a mix.
    let mut pool = PagePool::new(PoolConfig {
        initial_pages: 64,
        view_capacity_pages: 1 << 14,
        ..PoolConfig::default()
    })
    .unwrap();
    let handle = pool.handle();

    let generations = 40u64;
    let slots = 32usize;
    // One run of pages per generation, stamped up front.
    let mut gen_runs = Vec::new();
    for g in 0..generations {
        let run = pool.alloc_run(slots).unwrap();
        for s in 0..slots {
            unsafe {
                *(pool.page_ptr(PageIdx(run.0 + s)) as *mut u64) = (g << 32) | s as u64;
            }
        }
        gen_runs.push(run);
    }

    let retire = std::sync::Arc::clone(handle.retire_list());
    let maint = Maintainer::spawn(
        handle,
        MaintConfig {
            poll_interval: Duration::from_micros(200),
            ..MaintConfig::default()
        },
    );
    let state = maint.state().clone();
    let stop = AtomicBool::new(false);
    let validated_reads = AtomicU64::new(0);
    let discarded_reads = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // Reader thread.
        let reader_state = std::sync::Arc::clone(&state);
        let reader_retire = std::sync::Arc::clone(&retire);
        let (stop_r, val_r, disc_r) = (&stop, &validated_reads, &discarded_reads);
        scope.spawn(move || {
            let mut s = 0usize;
            while !stop_r.load(Ordering::Relaxed) {
                s = (s + 7) % slots;
                let _pin = reader_retire.pin();
                if let Some(ticket) = reader_state.begin_read() {
                    if ticket.slots != slots {
                        continue;
                    }
                    // SAFETY: retired areas stay mapped while our pin is
                    // held, so a racing rebuild leaves this readable.
                    let stamp = unsafe { *(ticket.base.add(s << 12) as *const u64) };
                    if reader_state.still_valid(ticket) {
                        // Validated: stamp must be internally consistent and
                        // its generation must correspond to the version.
                        let g = stamp >> 32;
                        let leaf = stamp & 0xffff_ffff;
                        assert_eq!(leaf as usize, s, "slot {s} read leaf {leaf}");
                        assert!(g < generations, "implausible generation {g}");
                        val_r.fetch_add(1, Ordering::Relaxed);
                    } else {
                        disc_r.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        });

        // Writer: one create per generation, as fast as the queue takes them.
        for g in 0..generations {
            let run = gen_runs[g as usize];
            let assignments: Vec<(usize, PageIdx)> =
                (0..slots).map(|s| (s, PageIdx(run.0 + s))).collect();
            let v = state.bump_traditional();
            maint.submit(MaintRequest::Create {
                slots,
                assignments,
                version: v,
            });
            // Small pause so several generations actually publish.
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(maint.wait_sync(Duration::from_secs(10)));
        stop.store(true, Ordering::Relaxed);
    });

    assert!(maint.error().is_none());
    let val = validated_reads.load(Ordering::Relaxed);
    assert!(val > 0, "reader never completed a validated read");
    // The final state reflects the last generation.
    let _pin = retire.pin();
    let t = state.begin_read().expect("final state in sync");
    let stamp = unsafe { *(t.base as *const u64) };
    assert_eq!(stamp >> 32, generations - 1);
}

#[test]
fn updates_race_with_readers_without_tearing() {
    // Same idea but with in-place slot updates instead of rebuilds: slot 0
    // flips between two stamped leaves; a validated read must see one of
    // the two stamps, never anything else.
    let mut pool = PagePool::new(PoolConfig {
        initial_pages: 8,
        view_capacity_pages: 64,
        ..PoolConfig::default()
    })
    .unwrap();
    let handle = pool.handle();
    let a = pool.alloc_page().unwrap();
    let b = pool.alloc_page().unwrap();
    unsafe {
        *(pool.page_ptr(a) as *mut u64) = 0xAAAA_AAAA;
        *(pool.page_ptr(b) as *mut u64) = 0xBBBB_BBBB;
    }

    let retire = std::sync::Arc::clone(handle.retire_list());
    let maint = Maintainer::spawn(
        handle,
        MaintConfig {
            poll_interval: Duration::from_micros(100),
            ..MaintConfig::default()
        },
    );
    let state = maint.state().clone();
    let v = state.bump_traditional();
    maint.submit(MaintRequest::Create {
        slots: 1,
        assignments: vec![(0, a)],
        version: v,
    });
    assert!(maint.wait_sync(Duration::from_secs(5)));

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let reader_state = std::sync::Arc::clone(&state);
        let reader_retire = std::sync::Arc::clone(&retire);
        let stop_r = &stop;
        scope.spawn(move || {
            while !stop_r.load(Ordering::Relaxed) {
                let _pin = reader_retire.pin();
                if let Some(t) = reader_state.begin_read() {
                    // SAFETY: retired areas stay mapped under our pin.
                    let v = unsafe { *(t.base as *const u64) };
                    if reader_state.still_valid(t) {
                        assert!(
                            v == 0xAAAA_AAAA || v == 0xBBBB_BBBB,
                            "torn/invalid read {v:#x}"
                        );
                    }
                }
            }
        });

        for i in 0..400u64 {
            let target = if i % 2 == 0 { b } else { a };
            let v = state.bump_traditional();
            maint.submit(MaintRequest::Update {
                slot: 0,
                ppage: target,
                version: v,
            });
            if i % 50 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert!(maint.wait_sync(Duration::from_secs(10)));
        stop.store(true, Ordering::Relaxed);
    });
    assert!(maint.error().is_none());
}
