//! End-to-end test (satellite #3): a real `Server` on a loopback
//! ephemeral port, driven by raw-socket clients — concurrent
//! `SET`/`GET`/`MGET`/`DEL` traffic checked against a `ChainedHash`
//! oracle, `INFO` over the wire, a mid-stream disconnect that must not
//! take the server down, and a `SHUTDOWN` that drains every in-flight
//! request before the final stats dump.

use shortcut_exhash::{ChConfig, ChainedHash, Index};
use shortcut_server::{Server, ServerConfig};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded reply, as much structure as the assertions need.
#[derive(Debug, Clone, PartialEq, Eq)]
enum R {
    Simple(String),
    Error(String),
    Int(i64),
    Bulk(Option<String>),
    Array(Vec<Option<String>>),
}

/// Blocking raw-socket RESP client.
struct Client {
    out: BufWriter<TcpStream>,
    inp: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        Client {
            inp: BufReader::new(stream.try_clone().unwrap()),
            out: BufWriter::new(stream),
        }
    }

    fn send(&mut self, args: &[&str]) {
        let mut wire = Vec::new();
        wire.extend_from_slice(format!("*{}\r\n", args.len()).as_bytes());
        for a in args {
            wire.extend_from_slice(format!("${}\r\n{a}\r\n", a.len()).as_bytes());
        }
        self.out.write_all(&wire).unwrap();
    }

    fn flush(&mut self) {
        self.out.flush().unwrap();
    }

    fn line(&mut self) -> String {
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            self.inp.read_exact(&mut byte).expect("read reply line");
            if byte[0] == b'\n' {
                break;
            }
            if byte[0] != b'\r' {
                line.push(byte[0]);
            }
        }
        String::from_utf8(line).expect("utf8 reply line")
    }

    fn bulk_payload(&mut self, header: &str) -> Option<String> {
        let len: i64 = header.parse().expect("bulk length");
        if len < 0 {
            return None;
        }
        let mut payload = vec![0u8; len as usize + 2];
        self.inp.read_exact(&mut payload).expect("bulk payload");
        payload.truncate(len as usize);
        Some(String::from_utf8(payload).expect("utf8 bulk"))
    }

    fn recv(&mut self) -> R {
        let line = self.line();
        let (kind, rest) = line.split_at(1);
        match kind {
            "+" => R::Simple(rest.to_string()),
            "-" => R::Error(rest.to_string()),
            ":" => R::Int(rest.parse().expect("int reply")),
            "$" => R::Bulk(self.bulk_payload(rest)),
            "*" => {
                let n: usize = rest.parse().expect("array length");
                R::Array(
                    (0..n)
                        .map(|_| match self.recv() {
                            R::Bulk(b) => b,
                            other => panic!("non-bulk array element: {other:?}"),
                        })
                        .collect(),
                )
            }
            other => panic!("unknown reply type {other:?} in {line:?}"),
        }
    }

    fn roundtrip(&mut self, args: &[&str]) -> R {
        self.send(args);
        self.flush();
        self.recv()
    }
}

fn spawn_server(executors: usize) -> Server {
    Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        capacity: 50_000,
        shard_bits: 2,
        executors,
        batch_window: Duration::from_micros(500),
        ..ServerConfig::default()
    })
    .expect("spawn server")
}

#[test]
fn concurrent_clients_match_chained_hash_oracle() {
    const CLIENTS: u64 = 6;
    const OPS: u64 = 400;
    const STRIDE: u64 = 1_000_000; // disjoint per-client keyspaces

    let server = spawn_server(2);
    let addr = server.local_addr();

    // Each client runs a deterministic script over its own key range and
    // checks every reply against a local oracle as it goes.
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                let mut oracle = std::collections::HashMap::<u64, u64>::new();
                for i in 0..OPS {
                    let key = c * STRIDE + (i * 7) % 97;
                    let ks = key.to_string();
                    match i % 5 {
                        0 | 1 => {
                            let value = i * 1000 + c;
                            assert_eq!(
                                client.roundtrip(&["SET", &ks, &value.to_string()]),
                                R::Simple("OK".into())
                            );
                            oracle.insert(key, value);
                        }
                        2 | 3 => {
                            let want = oracle.get(&key).map(|v| v.to_string());
                            assert_eq!(client.roundtrip(&["GET", &ks]), R::Bulk(want));
                        }
                        _ => {
                            let want = i64::from(oracle.remove(&key).is_some());
                            assert_eq!(client.roundtrip(&["DEL", &ks]), R::Int(want));
                        }
                    }
                }
            });
        }
    });

    // Replay the same scripts into a ChainedHash oracle (disjoint key
    // ranges make cross-client order irrelevant), then audit the full
    // keyspace over the wire with MGET.
    let mut oracle = ChainedHash::try_new(ChConfig {
        table_slots: 1 << 12,
    })
    .unwrap();
    for c in 0..CLIENTS {
        for i in 0..OPS {
            let key = c * STRIDE + (i * 7) % 97;
            match i % 5 {
                0 | 1 => oracle.insert(key, i * 1000 + c).unwrap(),
                2 | 3 => {}
                _ => {
                    oracle.remove(key).unwrap();
                }
            }
        }
    }
    let mut audit = Client::connect(addr);
    for c in 0..CLIENTS {
        let keys: Vec<String> = (0..97).map(|r| (c * STRIDE + r).to_string()).collect();
        let mut args: Vec<&str> = vec!["MGET"];
        args.extend(keys.iter().map(|k| k.as_str()));
        let want: Vec<Option<String>> = (0..97)
            .map(|r| oracle.get(c * STRIDE + r).map(|v| v.to_string()))
            .collect();
        assert_eq!(
            audit.roundtrip(&args),
            R::Array(want),
            "client {c} keyspace diverged"
        );
    }

    // INFO over the wire: bulk text with every section present.
    match audit.roundtrip(&["INFO"]) {
        R::Bulk(Some(info)) => {
            for needle in ["# server", "# batching", "lookups:", "shard0:"] {
                assert!(info.contains(needle), "INFO missing {needle}");
            }
        }
        other => panic!("INFO returned {other:?}"),
    }

    server.shutdown();
    let report = server.join();
    assert_eq!(report.snapshot.len as u64, Index::len(&oracle) as u64);
}

#[test]
fn pipelined_reads_aggregate_into_batches() {
    let server = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        capacity: 10_000,
        executors: 1,
        batch_window: Duration::from_millis(2),
        max_batch: 256,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr());
    assert_eq!(
        client.roundtrip(&["SET", "1", "10"]),
        R::Simple("OK".into())
    );

    // 512 pipelined GETs in one flush: with a 2 ms aggregation window the
    // single executor must coalesce them into far fewer get_many calls.
    const N: usize = 512;
    for _ in 0..N {
        client.send(&["GET", "1"]);
    }
    client.flush();
    for _ in 0..N {
        assert_eq!(client.recv(), R::Bulk(Some("10".into())));
    }
    let stats = &server.ctx().stats;
    let mean = stats.mean_read_batch_ops();
    assert!(
        mean > 1.0,
        "batch aggregation never engaged: mean read batch {mean:.2}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn mid_stream_disconnect_does_not_take_the_server_down() {
    let server = spawn_server(2);
    let addr = server.local_addr();

    // Client A: pipeline writes it never reads replies for, plus a
    // truncated frame, then vanish.
    {
        let stream = TcpStream::connect(addr).unwrap();
        let mut stream = stream;
        for k in 0..200u64 {
            let ks = k.to_string();
            let v = (k * 2).to_string();
            stream
                .write_all(
                    format!(
                        "*3\r\n$3\r\nSET\r\n${}\r\n{ks}\r\n${}\r\n{v}\r\n",
                        ks.len(),
                        v.len()
                    )
                    .as_bytes(),
                )
                .unwrap();
        }
        stream.write_all(b"*2\r\n$3\r\nGET\r\n$4\r\n12").unwrap(); // truncated
                                                                   // Drop without reading a single reply.
    }

    // Client B: the server must still answer, and A's completed writes
    // must be visible (they were accepted before the disconnect).
    let mut client = Client::connect(addr);
    assert_eq!(client.roundtrip(&["PING"]), R::Simple("PONG".into()));
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        // A's pipeline races our read; poll until the last write lands.
        if client.roundtrip(&["GET", "199"]) == R::Bulk(Some("398".into())) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "writes from the disconnected client never landed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Malformed input on a live connection: error reply, then close.
    let mut bad = TcpStream::connect(addr).unwrap();
    bad.write_all(b"*1\r\n$notanumber\r\n").unwrap();
    let mut reply = String::new();
    bad.read_to_string(&mut reply).unwrap(); // server closes after the error
    assert!(reply.starts_with("-ERR"), "got {reply:?}");

    // And the server is still fine.
    assert_eq!(
        Client::connect(addr).roundtrip(&["PING"]),
        R::Simple("PONG".into())
    );

    server.shutdown();
    server.join();
}

#[test]
fn shutdown_drains_pipelined_requests_before_exiting() {
    let server = spawn_server(1);
    let addr = server.local_addr();

    // One connection pipelines a burst of SETs immediately followed by
    // SHUTDOWN, without reading anything in between. Every reply must
    // still arrive, in order — the drain contract.
    let mut client = Client::connect(addr);
    const N: u64 = 300;
    for k in 0..N {
        client.send(&["SET", &k.to_string(), &(k + 1).to_string()]);
    }
    client.send(&["SHUTDOWN"]);
    client.flush();
    for _ in 0..N {
        assert_eq!(client.recv(), R::Simple("OK".into()));
    }
    assert_eq!(client.recv(), R::Simple("OK".into()), "SHUTDOWN ack");

    let report = server.join();
    assert_eq!(
        report.snapshot.len as u64, N,
        "drained inserts missing from final snapshot"
    );
    assert!(report.info.contains("commands:"));
}
