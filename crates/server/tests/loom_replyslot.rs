//! Exhaustive model check of the reply-slot rendezvous and the
//! submission-lane drain ([`shortcut_server::batch`]).
//!
//! Run with `cargo test -p shortcut-server --features loomish`.
//!
//! Two scenarios:
//!
//! * **Reply slot** — a connection's writer thread waits on a slot while
//!   an executor fills it and a shutdown path races a second fill (the
//!   real race [`ReplySlot::fill`]'s first-write-wins guard exists for).
//!   Invariants: the waiter always wakes (no lost wakeup — a violation
//!   surfaces as a model deadlock) and always takes exactly one of the
//!   two replies (no double-fulfill — the seeded variant panics).
//! * **Lane drain** — a reader pushes an op and raises the stop flag; the
//!   executor drains until the stop+empty exit. Invariants: the pushed op
//!   is delivered exactly once and every thread terminates. This scenario
//!   runs under the sequentially-consistent-per-location model: its
//!   progress relies on the stop flag's store becoming visible to the
//!   executor's bounded-timeout retry loop, which real memory systems
//!   guarantee in finite time but the ordering-sensitive model — which
//!   never forces a stale load to converge — does not, so the
//!   ordering-sensitive run would report a liveness artifact, not a bug.
//!   The slot scenario carries no atomics (the mutex hand-off is exact in
//!   both models), so it runs ordering-sensitive for uniformity with the
//!   pin/reclaim and seqlock suites.

#![cfg(feature = "loomish")]

use loomish::Builder;
use shortcut_rewire::sync::{thread, AtomicBool, Ordering};
use shortcut_server::batch::{Lane, Op, ReplySlot};
use shortcut_server::protocol::Reply;
use std::sync::Arc;
use std::time::Duration;

#[derive(Clone, Copy)]
enum FillKind {
    Correct,
    /// Executor fills with the double-fill tolerance removed.
    SeededAssertEmpty,
}

#[derive(Clone, Copy)]
enum WaitKind {
    Correct,
    /// Waiter checks emptiness, drops the lock, then waits.
    SeededCheckThenWait,
}

/// Executor and shutdown path race to fill while the connection's writer
/// waits. `shutdown_racer` is off for the lost-wakeup seed so its extra
/// notify cannot mask the bug.
fn slot_scenario(
    fill: FillKind,
    wait: WaitKind,
    shutdown_racer: bool,
) -> impl Fn() + Send + Sync + 'static {
    move || {
        let slot = ReplySlot::new();

        let executor = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || match fill {
                FillKind::Correct => slot.fill(Reply::Simple("OK")),
                FillKind::SeededAssertEmpty => slot.fill_seeded_assert_empty(Reply::Simple("OK")),
            })
        };
        let shutdown = shutdown_racer.then(|| {
            let slot = Arc::clone(&slot);
            thread::spawn(move || slot.fill(Reply::Error("ERR shutting down".into())))
        });
        let waiter = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                let reply = match wait {
                    WaitKind::Correct => slot.wait(),
                    WaitKind::SeededCheckThenWait => slot.wait_seeded_check_then_wait(),
                };
                assert!(
                    reply == Reply::Simple("OK")
                        || reply == Reply::Error("ERR shutting down".into()),
                    "reply from nowhere: {reply:?}"
                );
            })
        };

        executor.join().unwrap();
        if let Some(h) = shutdown {
            h.join().unwrap();
        }
        waiter.join().unwrap();
    }
}

#[test]
fn reply_slot_delivers_exactly_once() {
    let report = Builder::new()
        .ordering_sensitive(true)
        .preemption_bound(Some(3))
        .check(slot_scenario(FillKind::Correct, WaitKind::Correct, true))
        .unwrap_or_else(|cx| panic!("reply-slot counterexample: {cx}"));
    println!(
        "reply-slot: {} interleavings explored, invariant held",
        report.executions
    );
    assert!(
        report.executions > 50,
        "suspiciously small exploration: {}",
        report.executions
    );
}

/// Teeth check: removing `fill`'s first-write-wins guard panics when the
/// shutdown fill lands first — the executor/shutdown race must be found.
#[test]
fn seeded_double_fill_is_caught() {
    let err = Builder::new()
        .ordering_sensitive(true)
        .preemption_bound(Some(3))
        .check(slot_scenario(
            FillKind::SeededAssertEmpty,
            WaitKind::Correct,
            true,
        ))
        .expect_err("double fill not caught — the model checker has lost its teeth");
    assert!(
        err.message.contains("double fill"),
        "unexpected counterexample: {err}"
    );
}

/// Teeth check: checking the slot and then waiting without holding the
/// lock across the gap loses the fill's notification; the waiter blocks
/// forever and the model reports the deadlock.
#[test]
fn seeded_lost_wakeup_is_caught() {
    let err = Builder::new()
        .ordering_sensitive(true)
        .preemption_bound(Some(3))
        .check(slot_scenario(
            FillKind::Correct,
            WaitKind::SeededCheckThenWait,
            false,
        ))
        .expect_err("lost wakeup not caught — the model checker has lost its teeth");
    assert!(
        err.message.contains("deadlock"),
        "unexpected counterexample: {err}"
    );
}

/// Lane hand-off: one pushed op is drained exactly once and both threads
/// terminate through the stop+empty exit. (SC model — see module docs.)
#[test]
fn lane_drain_delivers_and_terminates() {
    let report = Builder::new()
        .preemption_bound(Some(3))
        .check(|| {
            let lane = Arc::new(Lane::new());
            let stop = Arc::new(AtomicBool::new(false));
            let slot = ReplySlot::new();

            let pusher = {
                let lane = Arc::clone(&lane);
                let stop = Arc::clone(&stop);
                let slot = Arc::clone(&slot);
                thread::spawn(move || {
                    lane.push(Op::Read {
                        keys: vec![1],
                        single: true,
                        slot,
                    });
                    stop.store(true, Ordering::Release);
                })
            };
            let executor = {
                let lane = Arc::clone(&lane);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut delivered = 0usize;
                    loop {
                        let ops = lane.drain(4, Duration::ZERO, &stop);
                        if ops.is_empty() {
                            break; // stop + empty: the drain-then-exit contract
                        }
                        for op in ops {
                            match op {
                                Op::Read { slot, .. } => slot.fill(Reply::Nil),
                                _ => unreachable!(),
                            }
                            delivered += 1;
                        }
                    }
                    assert_eq!(delivered, 1, "op lost or duplicated across drains");
                })
            };

            pusher.join().unwrap();
            executor.join().unwrap();
            assert_eq!(slot.wait(), Reply::Nil, "drained op's slot never filled");
        })
        .unwrap_or_else(|cx| panic!("lane counterexample: {cx}"));
    println!("lane drain: {} interleavings explored", report.executions);
}
