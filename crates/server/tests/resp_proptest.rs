//! Property tests for the RESP codec in isolation (satellite #2):
//!
//! * round-trip: arbitrary binary-safe frames survive
//!   encode → arbitrary-boundary chunked feed → decode, bit-exact;
//! * truncation: cutting a valid stream at any byte yields exactly the
//!   complete-frame prefix and a pending decoder — never an error, never
//!   a panic;
//! * garbage: arbitrary byte soup (and valid-prefix-then-garbage) never
//!   panics and never desyncs the frames before the corruption — the
//!   decoder either keeps decoding or reports a typed [`ProtoError`],
//!   after which the server closes the connection (the no-resync rule).

use proptest::prelude::*;
use shortcut_server::protocol::{encode_command, Decoder, ProtoError, RawCommand, MAX_ARGS};

/// An arbitrary binary-safe command: 1..=8 args of 0..=32 bytes each
/// (any byte value — embedded `\r`, `\n`, `\0` are the interesting ones).
fn frames() -> impl Strategy<Value = Vec<RawCommand>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..33), 1..9),
        1..9,
    )
}

fn encode_all(cmds: &[RawCommand]) -> Vec<u8> {
    let mut wire = Vec::new();
    for cmd in cmds {
        let parts: Vec<&[u8]> = cmd.iter().map(|a| a.as_slice()).collect();
        encode_command(&parts, &mut wire);
    }
    wire
}

/// Feed `wire` into a decoder in chunks of `chunk` bytes, draining every
/// complete command after each feed. Returns the decoded commands and
/// the first error, if any.
fn decode_chunked(wire: &[u8], chunk: usize) -> (Vec<RawCommand>, Option<ProtoError>) {
    let mut decoder = Decoder::new();
    let mut out = Vec::new();
    for piece in wire.chunks(chunk.max(1)) {
        decoder.feed(piece);
        loop {
            match decoder.next_command() {
                Ok(Some(cmd)) => out.push(cmd),
                Ok(None) => break,
                Err(e) => return (out, Some(e)),
            }
        }
    }
    (out, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_any_frames_any_chunking(cmds in frames(), chunk in 1usize..40) {
        let wire = encode_all(&cmds);
        let (decoded, err) = decode_chunked(&wire, chunk);
        prop_assert!(err.is_none(), "valid wire rejected: {:?}", err);
        prop_assert_eq!(decoded, cmds);
    }

    #[test]
    fn truncation_yields_exactly_the_complete_prefix(
        cmds in frames(),
        cut_permille in 0usize..1000,
        chunk in 1usize..17,
    ) {
        let wire = encode_all(&cmds);
        let cut = wire.len() * cut_permille / 1000;
        let (decoded, err) = decode_chunked(&wire[..cut], chunk);
        prop_assert!(err.is_none(), "truncated (not malformed) input errored: {:?}", err);
        // Exactly the frames whose encodings fit entirely below the cut.
        let mut expect = Vec::new();
        let mut used = 0usize;
        for cmd in &cmds {
            let parts: Vec<&[u8]> = cmd.iter().map(|a| a.as_slice()).collect();
            let mut one = Vec::new();
            encode_command(&parts, &mut one);
            if used + one.len() <= cut {
                used += one.len();
                expect.push(cmd.clone());
            } else {
                break;
            }
        }
        prop_assert_eq!(decoded, expect);
    }

    #[test]
    fn garbage_never_panics(soup in proptest::collection::vec(any::<u8>(), 0..257), chunk in 1usize..17) {
        // Any outcome is legal except a panic or an infinite stall:
        // byte soup often parses as inline commands, sometimes errors.
        let (decoded, _err) = decode_chunked(&soup, chunk);
        prop_assert!(decoded.len() <= soup.len());
    }

    #[test]
    fn valid_prefix_survives_trailing_garbage(
        cmds in frames(),
        soup in proptest::collection::vec(any::<u8>(), 1..65),
        chunk in 1usize..17,
    ) {
        let mut wire = encode_all(&cmds);
        // Force the tail to be an unambiguously malformed array frame so
        // the property is about desync, not about inline-command leniency.
        wire.extend_from_slice(b"*notanumber\r\n");
        wire.extend_from_slice(&soup);
        let (decoded, err) = decode_chunked(&wire, chunk);
        prop_assert!(err.is_some(), "malformed tail must surface an error");
        prop_assert_eq!(
            &decoded[..cmds.len().min(decoded.len())],
            &cmds[..cmds.len().min(decoded.len())],
        );
        prop_assert!(decoded.len() >= cmds.len(), "valid frames before the corruption were lost");
    }

    #[test]
    fn oversized_arrays_are_rejected_not_buffered(extra in 1usize..1000, chunk in 1usize..17) {
        let wire = format!("*{}\r\n", MAX_ARGS + extra).into_bytes();
        let (decoded, err) = decode_chunked(&wire, chunk);
        prop_assert!(decoded.is_empty());
        prop_assert!(err.is_some(), "array over MAX_ARGS must be rejected");
    }
}
