//! `loadgen`: many-connection load generator for `shortcut-server`.
//!
//! Opens N client connections, prefills the keyspace, then runs a mixed
//! read/write phase (zipf or uniform key choice, configurable read
//! fraction, batch-synchronous pipelining) for a fixed duration. Prints
//! one machine-parseable `RESULT` line (QPS, p50/p99 latency) and one
//! `SERVER` line distilled from the server's `INFO` reply — the CI smoke
//! leg and `BENCH_pr7.json` both grep these.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufWriter, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
loadgen — load generator for shortcut-server

USAGE:
    loadgen [FLAGS]

FLAGS:
    --addr HOST:PORT   server address            [default: 127.0.0.1:6399]
    --conns N          client connections        [default: 8]
    --secs S           mixed-phase duration      [default: 5]
    --keys N           keyspace size             [default: 100000]
    --read-frac F      read fraction in [0,1]    [default: 0.9]
    --dist D           zipf | uniform            [default: zipf]
    --theta T          zipf skew                 [default: 0.99]
    --pipeline N       requests in flight        [default: 8]
    --mget N           keys per read (1 = GET)   [default: 1]
    --seed N           rng seed                  [default: 42]
    --quick            small preset for CI smoke (2s, 20k keys)
    --shutdown         send SHUTDOWN when done
    --help             print this text

Exit status is nonzero if no requests complete or any reply is an error.
";

#[derive(Clone)]
struct Config {
    addr: String,
    conns: usize,
    secs: u64,
    keys: u64,
    read_frac: f64,
    zipf: bool,
    theta: f64,
    pipeline: usize,
    mget: usize,
    seed: u64,
    shutdown: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1:6399".to_string(),
            conns: 8,
            secs: 5,
            keys: 100_000,
            read_frac: 0.9,
            zipf: true,
            theta: 0.99,
            pipeline: 8,
            mget: 1,
            seed: 42,
            shutdown: false,
        }
    }
}

fn parse_args(mut args: std::env::Args) -> Result<Config, String> {
    let mut cfg = Config::default();
    args.next();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--quick" => {
                cfg.secs = 2;
                cfg.keys = 20_000;
                cfg.pipeline = 4;
                continue;
            }
            "--shutdown" => {
                cfg.shutdown = true;
                continue;
            }
            _ => {}
        }
        let value = args
            .next()
            .ok_or_else(|| format!("{flag} needs a value (see --help)"))?;
        match flag.as_str() {
            "--addr" => cfg.addr = value,
            "--conns" => cfg.conns = parse(&flag, &value)?,
            "--secs" => cfg.secs = parse(&flag, &value)?,
            "--keys" => cfg.keys = parse(&flag, &value)?,
            "--read-frac" => {
                cfg.read_frac = value
                    .parse::<f64>()
                    .ok()
                    .filter(|f| (0.0..=1.0).contains(f))
                    .ok_or_else(|| format!("--read-frac: fraction in [0,1], got {value:?}"))?;
            }
            "--dist" => {
                cfg.zipf = match value.as_str() {
                    "zipf" => true,
                    "uniform" => false,
                    _ => return Err(format!("--dist: zipf or uniform, got {value:?}")),
                };
            }
            "--theta" => {
                cfg.theta = value
                    .parse::<f64>()
                    .map_err(|_| format!("--theta: number expected, got {value:?}"))?;
            }
            "--pipeline" => cfg.pipeline = parse::<usize>(&flag, &value).map(|n| n.max(1))?,
            "--mget" => cfg.mget = parse::<usize>(&flag, &value).map(|n| n.max(1))?,
            "--seed" => cfg.seed = parse(&flag, &value)?,
            _ => return Err(format!("unknown flag {flag} (see --help)")),
        }
    }
    if cfg.conns == 0 || cfg.keys == 0 {
        return Err("--conns and --keys must be nonzero".to_string());
    }
    Ok(cfg)
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| format!("{flag}: number expected, got {value:?}"))
}

/// Zipf(θ) over ranks `0..n` via an inverse-CDF table: build the
/// cumulative mass once, sample with a binary search per draw.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: u64, theta: f64) -> Zipf {
        let n = n as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(theta);
            cdf.push(total);
        }
        for mass in &mut cdf {
            *mass /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&mass| mass < u) as u64
    }
}

/// What one reply was, as far as the load generator cares.
enum ReplyKind {
    Ok,
    Error,
}

/// Minimal incremental RESP reply reader over a raw stream.
struct ReplyReader {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

impl ReplyReader {
    fn new(stream: TcpStream) -> ReplyReader {
        ReplyReader {
            stream,
            buf: Vec::with_capacity(64 * 1024),
            pos: 0,
        }
    }

    fn fill(&mut self) -> std::io::Result<()> {
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Read one `\r\n`-terminated line (blocking until complete).
    fn line(&mut self) -> std::io::Result<Vec<u8>> {
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let end = self.pos + nl;
                let line = self.buf[self.pos..end.saturating_sub(1).max(self.pos)].to_vec();
                self.pos = end + 1;
                return Ok(line);
            }
            self.fill()?;
        }
    }

    /// Consume exactly `n` payload bytes plus the trailing CRLF,
    /// returning the payload.
    fn exact(&mut self, n: usize) -> std::io::Result<Vec<u8>> {
        while self.buf.len() - self.pos < n + 2 {
            self.fill()?;
        }
        let payload = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n + 2;
        Ok(payload)
    }

    /// Read and discard one complete reply, reporting only ok/error.
    fn next(&mut self) -> std::io::Result<ReplyKind> {
        let line = self.line()?;
        let (kind, rest) = match line.split_first() {
            Some(split) => split,
            None => {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidData,
                    "empty reply line",
                ))
            }
        };
        match kind {
            b'+' | b':' => Ok(ReplyKind::Ok),
            b'-' => Ok(ReplyKind::Error),
            b'$' => {
                let len: i64 = parse_ascii(rest)?;
                if len >= 0 {
                    self.exact(len as usize)?;
                }
                Ok(ReplyKind::Ok)
            }
            b'*' => {
                let n: i64 = parse_ascii(rest)?;
                let mut worst = ReplyKind::Ok;
                for _ in 0..n.max(0) {
                    if let ReplyKind::Error = self.next()? {
                        worst = ReplyKind::Error;
                    }
                }
                Ok(worst)
            }
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected reply type byte {other:?}"),
            )),
        }
    }

    /// Read one reply expecting a bulk string; return its payload.
    fn next_bulk(&mut self) -> std::io::Result<Vec<u8>> {
        let line = self.line()?;
        match line.split_first() {
            Some((b'$', rest)) => {
                let len: i64 = parse_ascii(rest)?;
                if len < 0 {
                    return Ok(Vec::new());
                }
                self.exact(len as usize)
            }
            _ => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!(
                    "expected bulk reply, got {:?}",
                    String::from_utf8_lossy(&line)
                ),
            )),
        }
    }
}

fn parse_ascii(bytes: &[u8]) -> std::io::Result<i64> {
    std::str::from_utf8(bytes)
        .ok()
        .and_then(|s| s.trim().parse::<i64>().ok())
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "bad length in reply"))
}

fn encode(out: &mut Vec<u8>, parts: &[&[u8]]) {
    out.extend_from_slice(format!("*{}\r\n", parts.len()).as_bytes());
    for part in parts {
        out.extend_from_slice(format!("${}\r\n", part.len()).as_bytes());
        out.extend_from_slice(part);
        out.extend_from_slice(b"\r\n");
    }
}

struct WorkerResult {
    ops: u64,
    errors: u64,
    latencies_us: Vec<u64>,
}

/// One connection's whole life: prefill its key slice, then hammer the
/// mixed workload until the deadline.
fn worker(cfg: &Config, zipf: Option<&Zipf>, id: usize) -> std::io::Result<WorkerResult> {
    let stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true)?;
    let mut reader = ReplyReader::new(stream.try_clone()?);
    let mut out = BufWriter::with_capacity(64 * 1024, stream);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(id as u64));
    let mut result = WorkerResult {
        ops: 0,
        errors: 0,
        latencies_us: Vec::with_capacity(1 << 16),
    };

    // Prefill this worker's slice of the keyspace, pipelined in chunks.
    let lo = cfg.keys * id as u64 / cfg.conns as u64;
    let hi = cfg.keys * (id as u64 + 1) / cfg.conns as u64;
    let mut batch = Vec::with_capacity(64 * 1024);
    let mut pending = 0usize;
    for key in lo..hi {
        encode(
            &mut batch,
            &[
                b"SET",
                key.to_string().as_bytes(),
                (key * 10).to_string().as_bytes(),
            ],
        );
        pending += 1;
        if pending == 512 || key + 1 == hi {
            out.write_all(&batch)?;
            out.flush()?;
            batch.clear();
            for _ in 0..pending {
                if let ReplyKind::Error = reader.next()? {
                    result.errors += 1;
                }
            }
            pending = 0;
        }
    }

    // Mixed phase: batch-synchronous pipelining — send `pipeline`
    // requests, flush, collect the replies, repeat. Latency is measured
    // per reply from the batch's send instant.
    let deadline = Instant::now() + Duration::from_secs(cfg.secs);
    while Instant::now() < deadline {
        batch.clear();
        let depth = cfg.pipeline;
        for _ in 0..depth {
            let pick = |rng: &mut StdRng| -> u64 {
                match zipf {
                    Some(z) => z.sample(rng),
                    None => rng.random_range(0..cfg.keys),
                }
            };
            let is_read = rng.random::<f64>() < cfg.read_frac;
            if is_read {
                if cfg.mget > 1 {
                    let keys: Vec<Vec<u8>> = (0..cfg.mget)
                        .map(|_| pick(&mut rng).to_string().into_bytes())
                        .collect();
                    let mut parts: Vec<&[u8]> = vec![b"MGET"];
                    parts.extend(keys.iter().map(|k| k.as_slice()));
                    encode(&mut batch, &parts);
                } else {
                    encode(&mut batch, &[b"GET", pick(&mut rng).to_string().as_bytes()]);
                }
            } else {
                let key = pick(&mut rng);
                encode(
                    &mut batch,
                    &[
                        b"SET",
                        key.to_string().as_bytes(),
                        rng.random::<u64>().to_string().as_bytes(),
                    ],
                );
            }
        }
        let sent = Instant::now();
        out.write_all(&batch)?;
        out.flush()?;
        for _ in 0..depth {
            if let ReplyKind::Error = reader.next()? {
                result.errors += 1;
            }
            result.ops += 1;
            result
                .latencies_us
                .push(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        }
    }
    Ok(result)
}

/// Fetch INFO over a fresh connection and distill the fields the
/// `SERVER` output line reports.
fn server_report(cfg: &Config) -> std::io::Result<String> {
    let stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true)?;
    let mut reader = ReplyReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut buf = Vec::new();
    encode(&mut buf, &[b"INFO"]);
    out.write_all(&buf)?;
    let info = String::from_utf8_lossy(&reader.next_bulk()?).to_string();

    let field = |key: &str| -> String {
        info.lines()
            .find_map(|l| l.trim_end().strip_prefix(key).map(|v| v.trim().to_string()))
            .unwrap_or_else(|| "?".to_string())
    };
    // `lookups: shortcut=A traditional=B retries=C ...` from the snapshot.
    let lookup = |name: &str| -> String {
        info.lines()
            .find(|l| l.starts_with("lookups:"))
            .and_then(|l| {
                l.split_whitespace()
                    .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
            })
            .unwrap_or("?")
            .to_string()
    };
    let report = format!(
        "SERVER engine={} shortcut_lookups={} traditional_lookups={} \
         mean_read_batch_keys={} mean_read_batch_ops={} read_batches={} write_batches={}",
        field("engine:"),
        lookup("shortcut"),
        lookup("traditional"),
        field("mean_read_batch_keys:"),
        field("mean_read_batch_ops:"),
        field("read_batches:"),
        field("write_batches:"),
    );

    if cfg.shutdown {
        buf.clear();
        encode(&mut buf, &[b"SHUTDOWN"]);
        out.write_all(&buf)?;
        let _ = reader.next();
    }
    Ok(report)
}

fn main() {
    let cfg = match parse_args(std::env::args()) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let zipf = cfg.zipf.then(|| Arc::new(Zipf::new(cfg.keys, cfg.theta)));

    let start = Instant::now();
    let results: Vec<std::io::Result<WorkerResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.conns)
            .map(|id| {
                let cfg = &cfg;
                let zipf = zipf.as_deref();
                scope.spawn(move || worker(cfg, zipf, id))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let wall = start.elapsed();

    let mut ops = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut io_failures = 0u64;
    for r in results {
        match r {
            Ok(w) => {
                ops += w.ops;
                errors += w.errors;
                latencies.extend(w.latencies_us);
            }
            Err(e) => {
                eprintln!("loadgen: worker failed: {e}");
                io_failures += 1;
            }
        }
    }
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            latencies[((latencies.len() - 1) as f64 * p) as usize]
        }
    };
    let qps = ops as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "RESULT conns={} secs={} keys={} read_frac={} dist={} pipeline={} mget={} \
         ops={ops} errors={errors} qps={qps:.0} p50_us={} p99_us={}",
        cfg.conns,
        cfg.secs,
        cfg.keys,
        cfg.read_frac,
        if cfg.zipf { "zipf" } else { "uniform" },
        cfg.pipeline,
        cfg.mget,
        pct(0.50),
        pct(0.99),
    );
    match server_report(&cfg) {
        Ok(line) => println!("{line}"),
        Err(e) => eprintln!("loadgen: INFO fetch failed: {e}"),
    }
    if ops == 0 || errors > 0 || io_failures > 0 {
        eprintln!("loadgen: FAILED (ops={ops} errors={errors} io_failures={io_failures})");
        std::process::exit(1);
    }
}
