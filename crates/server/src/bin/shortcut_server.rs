//! The `shortcut-server` binary: parse flags onto a
//! [`ServerConfig`], serve until `SHUTDOWN` (or SIGINT-by-kill), then
//! print the final stats dump.

use shortcut_server::{Engine, Server, ServerConfig};
use std::time::Duration;

const USAGE: &str = "\
shortcut-server — RESP-speaking KV server over the shortcut index

USAGE:
    shortcut-server [FLAGS]

FLAGS:
    --addr HOST:PORT       listen address        [default: 127.0.0.1:6399]
    --engine ARM           shortcut-eh | eh      [default: shortcut-eh]
    --shards S             2^S index shards      [default: 2]
    --slot-pages K         2^K pages per slot    [default: 0]
    --capacity N           expected live entries [default: 1000000]
    --batch-window-us US   aggregation window    [default: 200]
    --max-batch N          max ops per batch     [default: 256]
    --executors N          executor threads      [default: #cores, <= 4]
    --help                 print this text

Stop it with a RESP `SHUTDOWN` command; the server drains in-flight
requests and prints a final stats dump.
";

fn parse_args(mut args: std::env::Args) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    args.next(); // argv[0]
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let value = args
            .next()
            .ok_or_else(|| format!("{flag} needs a value (see --help)"))?;
        let parse_num = |what: &str| -> Result<u64, String> {
            value
                .parse::<u64>()
                .map_err(|_| format!("{flag}: {what} expected, got {value:?}"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value.clone(),
            "--engine" => {
                cfg.engine = Engine::parse(&value)
                    .ok_or_else(|| format!("--engine: shortcut-eh or eh, got {value:?}"))?;
            }
            "--shards" => cfg.shard_bits = parse_num("shard bits")? as u32,
            "--slot-pages" => cfg.slot_pages = parse_num("page exponent")? as u32,
            "--capacity" => cfg.capacity = parse_num("entry count")? as usize,
            "--batch-window-us" => {
                cfg.batch_window = Duration::from_micros(parse_num("microseconds")?);
            }
            "--max-batch" => cfg.max_batch = (parse_num("batch size")? as usize).max(1),
            "--executors" => cfg.executors = (parse_num("thread count")? as usize).max(1),
            _ => return Err(format!("unknown flag {flag} (see --help)")),
        }
    }
    Ok(cfg)
}

fn main() {
    let cfg = match parse_args(std::env::args()) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("shortcut-server: {e}");
            std::process::exit(2);
        }
    };
    let engine = cfg.engine.as_str().to_string();
    let server = match Server::spawn(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("shortcut-server: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "shortcut-server listening on {} engine={engine}",
        server.local_addr()
    );
    let report = server.join();
    println!("shortcut-server: shut down, final stats:");
    print!("{}", report.snapshot);
    for line in report.info.lines() {
        // The INFO text repeats the snapshot; keep only the server-side
        // counters in the exit dump.
        let line = line.trim_end_matches('\r');
        if line.starts_with('#') || line.contains(':') {
            println!("{line}");
        }
        if line.starts_with("# index") {
            break;
        }
    }
}
