//! The server proper: listener + acceptor, executor pool, shared context,
//! `INFO` rendering, and the ordered graceful-shutdown sequence.
//!
//! Thread topology (for `executors = E`, `C` live connections):
//!
//! ```text
//! acceptor ──spawns──▶ C × reader ──lanes[conn % E]──▶ E × executor
//!                      C × writer ◀──reply slots───────────┘
//! ```
//!
//! Shutdown ordering matters and is encoded in [`Server::join`]:
//! 1. the shutdown flag stops the acceptor (nonblocking poll loop) and
//!    every reader (bounded read timeout);
//! 2. readers are joined **first** — only then can no new ops enter the
//!    lanes, and every submitted op still has a live executor to fill its
//!    slot (so writers never hang);
//! 3. the drain flag releases the executors, which finish whatever is
//!    left in their lane and exit — no accepted request is dropped;
//! 4. the final [`StatsSnapshot`] and server counters are captured for
//!    the shutdown report.

use crate::batch::{execute_batch, Lane, ServerStats};
use crate::config::{Engine, ServerConfig};
use shortcut_rewire::sync::{AtomicBool, AtomicU64, Ordering};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use taking_the_shortcut::{CompactionPolicy, ShortcutIndex, StatsSnapshot};

/// Acceptor poll granularity (nonblocking accept + nap, so the loop can
/// watch the shutdown flag without a self-connect trick).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// State shared by every thread in the server.
#[derive(Debug)]
pub struct ServerCtx {
    pub cfg: ServerConfig,
    pub index: ShortcutIndex,
    /// One submission lane per executor; connections hash onto them.
    pub lanes: Vec<Lane>,
    pub stats: ServerStats,
    /// Stops the acceptor and the readers (set by `SHUTDOWN` or
    /// [`Server::shutdown`]).
    pub shutdown: AtomicBool,
    /// Releases the executors once the lanes can only shrink; set by
    /// [`Server::join`] *after* the readers are joined.
    drain: AtomicBool,
    started: Instant,
}

impl ServerCtx {
    /// Render the `INFO` reply: server + batching sections, the index's
    /// stable [`StatsSnapshot`] rendering, and a per-shard breakdown.
    /// Line format is `key:value` / the snapshot's `group: k=v ...` —
    /// both greppable; the e2e test and `loadgen` parse this.
    pub fn render_info(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let s = &self.stats;
        let open = s
            .connections_accepted
            .load(Ordering::Relaxed)
            .saturating_sub(s.connections_closed.load(Ordering::Relaxed));
        out.push_str("# server\r\n");
        let _ = writeln!(out, "engine:{}\r", self.cfg.engine.as_str());
        let _ = writeln!(out, "uptime_seconds:{}\r", self.started.elapsed().as_secs());
        let _ = writeln!(out, "executors:{}\r", self.lanes.len());
        let _ = writeln!(
            out,
            "batch_window_us:{}\r",
            self.cfg.batch_window.as_micros()
        );
        let _ = writeln!(out, "max_batch:{}\r", self.cfg.max_batch);
        out.push_str("# clients\r\n");
        let _ = writeln!(
            out,
            "connections_accepted:{}\r",
            s.connections_accepted.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "connections_open:{open}\r");
        let _ = writeln!(out, "commands:{}\r", s.commands.load(Ordering::Relaxed));
        let _ = writeln!(
            out,
            "protocol_errors:{}\r",
            s.protocol_errors.load(Ordering::Relaxed)
        );
        out.push_str("# batching\r\n");
        let _ = writeln!(
            out,
            "read_batches:{}\r",
            s.read_batches.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "read_ops:{}\r", s.read_ops.load(Ordering::Relaxed));
        let _ = writeln!(out, "read_keys:{}\r", s.read_keys.load(Ordering::Relaxed));
        let _ = writeln!(
            out,
            "mean_read_batch_keys:{:.2}\r",
            s.mean_read_batch_keys()
        );
        let _ = writeln!(out, "mean_read_batch_ops:{:.2}\r", s.mean_read_batch_ops());
        let _ = writeln!(
            out,
            "write_batches:{}\r",
            s.write_batches.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "write_ops:{}\r", s.write_ops.load(Ordering::Relaxed));
        let _ = writeln!(
            out,
            "del_batches:{}\r",
            s.del_batches.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "del_keys:{}\r", s.del_keys.load(Ordering::Relaxed));
        out.push_str("# index\r\n");
        let snapshot = self.index.stats();
        for line in snapshot.to_string().lines() {
            let _ = writeln!(out, "{line}\r");
        }
        out.push_str("# shards\r\n");
        for i in 0..self.index.shard_count() {
            let sh = self.index.shard_stats(i);
            let _ = writeln!(
                out,
                "shard{}: entries={} global_depth={} buckets={} in_sync={}\r",
                i, sh.len, sh.global_depth, sh.bucket_count, sh.in_sync
            );
        }
        out
    }
}

/// What [`Server::join`] hands back after the drain completes.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Final merged index snapshot (render with `Display`).
    pub snapshot: StatsSnapshot,
    /// Final `INFO` text (server + batching counters included).
    pub info: String,
}

/// A running server. Obtain with [`Server::spawn`]; stop with a
/// `SHUTDOWN` command or [`Server::shutdown`], then [`Server::join`].
#[derive(Debug)]
pub struct Server {
    ctx: Arc<ServerCtx>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Build the index, bind the listener, and spawn the acceptor and
    /// executor pool. Returns once the server is accepting.
    ///
    /// # Errors
    ///
    /// Index construction failure is surfaced as `io::Error` alongside
    /// bind errors.
    pub fn spawn(cfg: ServerConfig) -> io::Result<Server> {
        let mut builder = ShortcutIndex::builder()
            .capacity(cfg.capacity)
            .shards(cfg.shard_bits)
            .slot_pages(cfg.slot_pages)
            .compaction(CompactionPolicy::on());
        if cfg.engine == Engine::Eh {
            // The EH baseline arm: identical server, shortcut routing off.
            builder = builder.fanin_threshold(0.0);
        }
        let index = builder
            .build()
            .map_err(|e| io::Error::other(format!("index construction: {e}")))?;

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let executors_n = cfg.executors.max(1);
        let ctx = Arc::new(ServerCtx {
            lanes: (0..executors_n).map(|_| Lane::new()).collect(),
            stats: ServerStats::default(),
            shutdown: AtomicBool::new(false),
            drain: AtomicBool::new(false),
            started: Instant::now(),
            index,
            cfg,
        });

        let executors = (0..executors_n)
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                std::thread::Builder::new()
                    .name(format!("executor-{i}"))
                    .spawn(move || executor_loop(&ctx, i))
                    .expect("spawn executor")
            })
            .collect();

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let ctx = Arc::clone(&ctx);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("acceptor".to_string())
                .spawn(move || acceptor_loop(listener, &ctx, &conns))
                .expect("spawn acceptor")
        };

        Ok(Server {
            ctx,
            addr,
            acceptor: Some(acceptor),
            executors,
            conns,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared context (tests inspect counters through this).
    pub fn ctx(&self) -> &Arc<ServerCtx> {
        &self.ctx
    }

    /// Trip the shutdown flag (same effect as a `SHUTDOWN` command).
    pub fn shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::Release);
    }

    /// Block until the server has shut down, running the ordered drain
    /// (see module docs), and return the final stats.
    pub fn join(mut self) -> ShutdownReport {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // After the acceptor exits no new connections appear; join the
        // readers (each exits within one read-poll of the flag).
        loop {
            let drained: Vec<JoinHandle<()>> = {
                let mut conns = self.conns.lock().unwrap();
                conns.drain(..).collect()
            };
            if drained.is_empty() {
                break;
            }
            for handle in drained {
                let _ = handle.join();
            }
        }
        // Lanes can only shrink now — release the executors.
        self.ctx.drain.store(true, Ordering::Release);
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
        ShutdownReport {
            snapshot: self.ctx.index.stats(),
            info: self.ctx.render_info(),
        }
    }
}

/// Accept loop: nonblocking poll so the shutdown flag is honored without
/// needing a wakeup connection.
fn acceptor_loop(
    listener: TcpListener,
    ctx: &Arc<ServerCtx>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let next_id = AtomicU64::new(0);
    while !ctx.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = next_id.fetch_add(1, Ordering::Relaxed);
                ctx.stats
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                let ctx = Arc::clone(ctx);
                let handle = std::thread::Builder::new()
                    .name(format!("resp-reader-{conn_id}"))
                    .spawn(move || crate::conn::handle_connection(stream, ctx, conn_id))
                    .expect("spawn connection thread");
                conns.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Executor loop: drain the owned lane, execute, repeat; exit on the
/// drain-flag-and-empty contract encoded in `Lane::drain`.
fn executor_loop(ctx: &Arc<ServerCtx>, lane_idx: usize) {
    let lane = &ctx.lanes[lane_idx];
    loop {
        let ops = lane.drain(ctx.cfg.max_batch, ctx.cfg.batch_window, &ctx.drain);
        if ops.is_empty() {
            return;
        }
        execute_batch(&ctx.index, &ctx.stats, ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            capacity: 10_000,
            executors: 2,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn spawn_bind_shutdown_join() {
        let server = Server::spawn(quick_cfg()).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        server.shutdown();
        let report = server.join();
        assert_eq!(report.snapshot.len, 0);
        assert!(report.info.contains("engine:shortcut-eh"));
    }

    #[test]
    fn eh_engine_disables_shortcut_routing() {
        let mut cfg = quick_cfg();
        cfg.engine = Engine::Eh;
        let server = Server::spawn(cfg).unwrap();
        assert!(server.ctx().render_info().contains("engine:eh"));
        server.shutdown();
        server.join();
    }

    #[test]
    fn info_renders_all_sections() {
        let server = Server::spawn(quick_cfg()).unwrap();
        let info = server.ctx().render_info();
        for needle in [
            "# server",
            "# clients",
            "# batching",
            "# index",
            "# shards",
            "mean_read_batch_keys:",
            "lookups:",
            "shard0:",
        ] {
            assert!(info.contains(needle), "INFO missing {needle}:\n{info}");
        }
        server.shutdown();
        server.join();
    }
}
