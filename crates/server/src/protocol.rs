//! Hand-rolled RESP2 wire codec (the subset the server speaks).
//!
//! Inbound, a client sends each command as an **array of bulk strings**
//! (`*2\r\n$3\r\nGET\r\n$2\r\n42\r\n`) — exactly what `redis-cli` and every
//! Redis client library emit — or, for hand-driven sessions over
//! `nc`/telnet, as an **inline command** (a plain `GET 42\r\n` line).
//! Outbound, the server answers with the five RESP2 reply types
//! ([`Reply`]).
//!
//! The decoder is incremental: bytes are fed in as they arrive off the
//! socket ([`Decoder::feed`]) and commands are pulled out as they
//! complete ([`Decoder::next_command`]). A frame split at *any* byte
//! boundary across reads parses identically to the same bytes in one
//! read (property-tested in `tests/resp_proptest.rs`). Malformed input
//! yields a typed [`ProtoError`] — never a panic, and never a desynced
//! misparse: the connection layer reports the error to the client and
//! closes, which is also what Redis does on a protocol error.
//!
//! Keys and values are `u64`, transported as decimal ASCII bulk strings
//! (the index stores `u64 → u64`; see [`parse_u64`]).

/// Hard cap on one bulk string's declared length. Commands carry decimal
/// `u64`s (≤ 20 bytes), so this is pure protocol-abuse protection.
pub const MAX_BULK_LEN: usize = 64 * 1024;

/// Hard cap on one command's argument count (bounds `MGET`/`DEL` fan-out
/// and the memory a single frame can pin).
pub const MAX_ARGS: usize = 4096; // audit:allow(page-literal): RESP argument-count cap, not a page size

/// Hard cap on one inline command line.
pub const MAX_INLINE_LEN: usize = 16 * 1024;

/// A protocol-level failure. The connection that produced it gets the
/// message as an `-ERR` reply and is then closed (resynchronizing a
/// stream after arbitrary garbage is not possible in general).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn err(msg: impl Into<String>) -> ProtoError {
    ProtoError(msg.into())
}

/// One decoded command: its arguments as raw byte strings (`args[0]` is
/// the command name). Argument semantics live in [`Request::parse`].
pub type RawCommand = Vec<Vec<u8>>;

/// Incremental RESP2 command decoder. See the module docs.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted once it outgrows the tail).
    pos: usize,
}

impl Decoder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append freshly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the dead prefix dominates the buffer.
        const COMPACT_THRESHOLD: usize = 4096; // audit:allow(page-literal): consumed-bytes threshold, not a page size
        if self.pos > COMPACT_THRESHOLD && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete command.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pull the next complete command, if one is fully buffered.
    ///
    /// * `Ok(Some(args))` — one command; its bytes are consumed.
    /// * `Ok(None)` — the buffer holds only a prefix; feed more bytes.
    /// * `Err(_)` — the stream is malformed at the current position. The
    ///   decoder makes no consumption guarantee after an error; the
    ///   caller must reply and close.
    ///
    /// # Errors
    ///
    /// Malformed framing: bad length lines, non-CRLF terminators,
    /// oversized bulk/array/inline frames, or a non-bulk array element.
    pub fn next_command(&mut self) -> Result<Option<RawCommand>, ProtoError> {
        loop {
            let tail = &self.buf[self.pos..];
            let Some(&first) = tail.first() else {
                return Ok(None);
            };
            if first == b'*' {
                return match parse_array(tail)? {
                    Some((args, used)) => {
                        self.pos += used;
                        Ok(Some(args))
                    }
                    None => Ok(None),
                };
            }
            // Inline command: one line, arguments split on whitespace.
            // An empty line is ignored (Redis does the same — it lets a
            // human hit return without killing the session).
            match parse_inline(tail)? {
                Some((args, used)) => {
                    self.pos += used;
                    if args.is_empty() {
                        continue;
                    }
                    return Ok(Some(args));
                }
                None => return Ok(None),
            }
        }
    }
}

/// Parse `*<n>\r\n` followed by `n` bulk strings from the front of `buf`.
/// Returns the args and the byte count consumed, or `None` if incomplete.
fn parse_array(buf: &[u8]) -> Result<Option<(RawCommand, usize)>, ProtoError> {
    debug_assert_eq!(buf[0], b'*');
    let Some((n, mut at)) = parse_len_line(&buf[1..], MAX_ARGS, "multibulk")? else {
        return Ok(None);
    };
    at += 1; // the '*' byte
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        let tail = &buf[at..];
        let Some(&marker) = tail.first() else {
            return Ok(None);
        };
        if marker != b'$' {
            return Err(err(format!(
                "Protocol error: expected '$', got '{}'",
                printable(marker)
            )));
        }
        let Some((len, used)) = parse_len_line(&tail[1..], MAX_BULK_LEN, "bulk")? else {
            return Ok(None);
        };
        let start = at + 1 + used;
        // The payload plus its trailing CRLF must be fully buffered.
        if buf.len() < start + len + 2 {
            return Ok(None);
        }
        if &buf[start + len..start + len + 2] != b"\r\n" {
            return Err(err("Protocol error: bulk string not CRLF-terminated"));
        }
        args.push(buf[start..start + len].to_vec());
        at = start + len + 2;
    }
    Ok(Some((args, at)))
}

/// Parse a decimal length line `<n>\r\n`, bounded by `max`. Returns the
/// value and bytes consumed (including the CRLF), or `None` if the line
/// is not complete yet.
fn parse_len_line(
    buf: &[u8],
    max: usize,
    what: &str,
) -> Result<Option<(usize, usize)>, ProtoError> {
    let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
        // 20 digits exceed any permitted length; an unbounded digit run
        // must not buffer forever.
        if buf.len() > 20 {
            return Err(err(format!("Protocol error: invalid {what} length")));
        }
        return Ok(None);
    };
    if nl == 0 || buf[nl - 1] != b'\r' {
        return Err(err(format!(
            "Protocol error: {what} length not CRLF-terminated"
        )));
    }
    let digits = &buf[..nl - 1];
    if digits.is_empty() || digits.len() > 20 || !digits.iter().all(u8::is_ascii_digit) {
        return Err(err(format!("Protocol error: invalid {what} length")));
    }
    let n: usize = std::str::from_utf8(digits)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(format!("Protocol error: invalid {what} length")))?;
    if n > max {
        return Err(err(format!(
            "Protocol error: {what} length {n} exceeds the limit of {max}"
        )));
    }
    Ok(Some((n, nl + 1)))
}

/// Parse one inline command line (terminated by `\n`, optional `\r`
/// stripped), split on ASCII whitespace.
fn parse_inline(buf: &[u8]) -> Result<Option<(RawCommand, usize)>, ProtoError> {
    let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
        if buf.len() > MAX_INLINE_LEN {
            return Err(err("Protocol error: too big inline request"));
        }
        return Ok(None);
    };
    if nl > MAX_INLINE_LEN {
        return Err(err("Protocol error: too big inline request"));
    }
    let mut line = &buf[..nl];
    if line.last() == Some(&b'\r') {
        line = &line[..line.len() - 1];
    }
    let args: RawCommand = line
        .split(|b| b.is_ascii_whitespace())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_vec())
        .collect();
    if args.len() > MAX_ARGS {
        return Err(err("Protocol error: too many inline arguments"));
    }
    Ok(Some((args, nl + 1)))
}

fn printable(b: u8) -> char {
    if b.is_ascii_graphic() {
        b as char
    } else {
        '?'
    }
}

/// Encode a command as the canonical array-of-bulk-strings frame (what a
/// well-behaved client sends; `loadgen` and the tests build requests with
/// this).
pub fn encode_command(args: &[&[u8]], out: &mut Vec<u8>) {
    out.extend_from_slice(format!("*{}\r\n", args.len()).as_bytes());
    for a in args {
        out.extend_from_slice(format!("${}\r\n", a.len()).as_bytes());
        out.extend_from_slice(a);
        out.extend_from_slice(b"\r\n");
    }
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

/// A RESP2 reply value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `+<text>\r\n`
    Simple(&'static str),
    /// `-ERR <text>\r\n`
    Error(String),
    /// `:<n>\r\n`
    Int(i64),
    /// `$<len>\r\n<bytes>\r\n`
    Bulk(Vec<u8>),
    /// `$-1\r\n` (the RESP2 nil bulk)
    Nil,
    /// `*<n>\r\n<elements>`
    Array(Vec<Reply>),
}

impl Reply {
    /// Serialize onto `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Reply::Simple(s) => {
                out.push(b'+');
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            Reply::Error(msg) => {
                out.push(b'-');
                // Error text must stay single-line or the frame desyncs.
                out.extend_from_slice(
                    msg.bytes()
                        .map(|b| if b == b'\r' || b == b'\n' { b' ' } else { b })
                        .collect::<Vec<_>>()
                        .as_slice(),
                );
                out.extend_from_slice(b"\r\n");
            }
            Reply::Int(n) => {
                out.extend_from_slice(format!(":{n}\r\n").as_bytes());
            }
            Reply::Bulk(data) => {
                out.extend_from_slice(format!("${}\r\n", data.len()).as_bytes());
                out.extend_from_slice(data);
                out.extend_from_slice(b"\r\n");
            }
            Reply::Nil => out.extend_from_slice(b"$-1\r\n"),
            Reply::Array(items) => {
                out.extend_from_slice(format!("*{}\r\n", items.len()).as_bytes());
                for item in items {
                    item.encode(out);
                }
            }
        }
    }

    /// A bulk string carrying a decimal `u64` (the value reply of `GET`).
    pub fn bulk_u64(v: u64) -> Reply {
        Reply::Bulk(v.to_string().into_bytes())
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// A typed, validated request — what the batcher actually executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Get(u64),
    MGet(Vec<u64>),
    Set(u64, u64),
    Del(Vec<u64>),
    Ping,
    Info,
    Shutdown,
}

/// Parse a decimal `u64` key or value.
///
/// # Errors
///
/// Non-numeric, negative, or out-of-range input (the index stores
/// `u64 → u64`; arbitrary byte-string keys would need a hash-with-
/// verification layer the paper's index does not model).
pub fn parse_u64(arg: &[u8]) -> Result<u64, String> {
    std::str::from_utf8(arg)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "ERR value is not an integer or out of range".to_string())
}

impl Request {
    /// Validate a raw decoded command.
    ///
    /// # Errors
    ///
    /// Unknown command name, wrong arity, or non-`u64` keys/values; the
    /// message is sent verbatim as the `-` error reply.
    pub fn parse(args: &RawCommand) -> Result<Request, String> {
        let name = args
            .first()
            .ok_or_else(|| "ERR empty command".to_string())?
            .to_ascii_uppercase();
        let arity = |ok: bool| {
            if ok {
                Ok(())
            } else {
                Err(format!(
                    "ERR wrong number of arguments for '{}' command",
                    String::from_utf8_lossy(&name).to_lowercase()
                ))
            }
        };
        match name.as_slice() {
            b"GET" => {
                arity(args.len() == 2)?;
                Ok(Request::Get(parse_u64(&args[1])?))
            }
            b"MGET" => {
                arity(args.len() >= 2)?;
                let keys = args[1..]
                    .iter()
                    .map(|a| parse_u64(a))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::MGet(keys))
            }
            b"SET" => {
                arity(args.len() == 3)?;
                Ok(Request::Set(parse_u64(&args[1])?, parse_u64(&args[2])?))
            }
            b"DEL" => {
                arity(args.len() >= 2)?;
                let keys = args[1..]
                    .iter()
                    .map(|a| parse_u64(a))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Del(keys))
            }
            b"PING" => {
                arity(args.len() <= 2)?;
                Ok(Request::Ping)
            }
            b"INFO" => {
                arity(args.len() <= 2)?;
                Ok(Request::Info)
            }
            b"SHUTDOWN" => {
                arity(args.len() == 1)?;
                Ok(Request::Shutdown)
            }
            other => Err(format!(
                "ERR unknown command '{}'",
                String::from_utf8_lossy(other)
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(bytes: &[u8]) -> Result<Vec<RawCommand>, ProtoError> {
        let mut d = Decoder::new();
        d.feed(bytes);
        let mut out = Vec::new();
        while let Some(cmd) = d.next_command()? {
            out.push(cmd);
        }
        Ok(out)
    }

    #[test]
    fn decodes_canonical_array_frames() {
        let mut buf = Vec::new();
        encode_command(&[b"SET", b"42", b"1000"], &mut buf);
        encode_command(&[b"GET", b"42"], &mut buf);
        let cmds = decode_all(&buf).unwrap();
        assert_eq!(cmds.len(), 2);
        assert_eq!(
            cmds[0],
            vec![b"SET".to_vec(), b"42".to_vec(), b"1000".to_vec()]
        );
        assert_eq!(Request::parse(&cmds[1]), Ok(Request::Get(42)));
    }

    #[test]
    fn split_frames_wait_for_more_bytes() {
        let mut buf = Vec::new();
        encode_command(&[b"SET", b"7", b"70"], &mut buf);
        let mut d = Decoder::new();
        for (i, &b) in buf.iter().enumerate() {
            d.feed(&[b]);
            let got = d.next_command().unwrap();
            if i + 1 < buf.len() {
                assert!(got.is_none(), "complete command after {} bytes", i + 1);
            } else {
                assert_eq!(
                    got,
                    Some(vec![b"SET".to_vec(), b"7".to_vec(), b"70".to_vec()])
                );
            }
        }
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn inline_commands_and_blank_lines() {
        let cmds = decode_all(b"\r\n  \r\nPING\r\nGET 9\r\n").unwrap();
        assert_eq!(cmds.len(), 2);
        assert_eq!(Request::parse(&cmds[0]), Ok(Request::Ping));
        assert_eq!(Request::parse(&cmds[1]), Ok(Request::Get(9)));
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(
            decode_all(b"*2\r\n$3\r\nGET\r\n:99\r\n").is_err(),
            "non-bulk element"
        );
        assert!(decode_all(b"*x\r\n").is_err(), "non-numeric array len");
        assert!(
            decode_all(b"*2\r\n$abc\r\n").is_err(),
            "non-numeric bulk len"
        );
        assert!(decode_all(b"*1\r\n$3\r\nGETxx").is_err(), "missing CRLF");
        assert!(
            decode_all(format!("*1\r\n${}\r\n", MAX_BULK_LEN + 1).as_bytes()).is_err(),
            "oversized bulk"
        );
        assert!(
            decode_all(format!("*{}\r\n", MAX_ARGS + 1).as_bytes()).is_err(),
            "oversized array"
        );
    }

    #[test]
    fn request_validation() {
        let parse = |args: &[&str]| {
            Request::parse(
                &args
                    .iter()
                    .map(|s| s.as_bytes().to_vec())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(parse(&["set", "1", "2"]), Ok(Request::Set(1, 2)));
        assert_eq!(
            parse(&["MGET", "1", "2", "3"]),
            Ok(Request::MGet(vec![1, 2, 3]))
        );
        assert_eq!(parse(&["DEL", "5"]), Ok(Request::Del(vec![5])));
        assert_eq!(parse(&["SHUTDOWN"]), Ok(Request::Shutdown));
        assert!(parse(&["GET"]).unwrap_err().contains("wrong number"));
        assert!(parse(&["GET", "abc"])
            .unwrap_err()
            .contains("not an integer"));
        assert!(parse(&["NOPE", "1"])
            .unwrap_err()
            .contains("unknown command"));
        assert!(parse(&["SET", "1", "-2"])
            .unwrap_err()
            .contains("not an integer"));
    }

    #[test]
    fn replies_encode_to_canonical_resp() {
        let mut out = Vec::new();
        Reply::Simple("OK").encode(&mut out);
        Reply::Error("ERR boom\r\nx".into()).encode(&mut out);
        Reply::Int(3).encode(&mut out);
        Reply::bulk_u64(1000).encode(&mut out);
        Reply::Nil.encode(&mut out);
        Reply::Array(vec![Reply::bulk_u64(1), Reply::Nil]).encode(&mut out);
        assert_eq!(
            out,
            b"+OK\r\n-ERR boom  x\r\n:3\r\n$4\r\n1000\r\n$-1\r\n*2\r\n$1\r\n1\r\n$-1\r\n".to_vec()
        );
    }
}
