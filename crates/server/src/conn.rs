//! Per-connection plumbing: one reader thread (socket → decoder →
//! submission lane) and one writer thread (reply slots → socket), with
//! replies delivered strictly in request order.
//!
//! The reader never executes index operations itself — `GET`/`MGET`/
//! `SET`/`DEL` become [`Op`]s on the connection's submission lane and are
//! batch-executed there. `PING`/`INFO`/error replies are filled
//! immediately (they touch no keyed state), but still travel through the
//! same in-order slot queue, so a client can rely on reply N answering
//! request N. `SHUTDOWN` acknowledges `+OK`, then trips the server-wide
//! shutdown flag.
//!
//! A client that disconnects mid-stream (EOF or reset) just ends the
//! reader loop; ops already submitted still execute — the executor fills
//! their slots whether or not anyone is left to read them — and the
//! writer exits once the slot queue drains or the first write fails.

use crate::batch::{Op, ReplySlot};
use crate::protocol::{Decoder, Reply, Request};
use crate::server::ServerCtx;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Reader poll granularity: how promptly a blocked reader notices the
/// server-wide shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Serve one accepted connection to completion. Runs on its own thread;
/// spawns (and joins) the paired writer thread.
pub fn handle_connection(stream: TcpStream, ctx: Arc<ServerCtx>, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            ctx.stats.connections_closed.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let (tx, rx) = mpsc::channel::<Arc<ReplySlot>>();
    let writer = std::thread::Builder::new()
        .name(format!("resp-writer-{conn_id}"))
        .spawn(move || writer_loop(writer_stream, rx))
        .expect("spawn writer thread");

    reader_loop(stream, &ctx, conn_id, tx);

    // Sender dropped above: the writer drains what is queued, then exits.
    let _ = writer.join();
    ctx.stats.connections_closed.fetch_add(1, Ordering::Relaxed);
}

/// Decode requests and fan them out until EOF, error, or shutdown.
fn reader_loop(
    mut stream: TcpStream,
    ctx: &Arc<ServerCtx>,
    conn_id: u64,
    tx: mpsc::Sender<Arc<ReplySlot>>,
) {
    let lane = &ctx.lanes[(conn_id as usize) % ctx.lanes.len()];
    let mut decoder = Decoder::new();
    let mut buf = [0u8; 16 * 1024];
    'conn: loop {
        if ctx.shutdown.load(Ordering::Acquire) {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break, // EOF
            Ok(n) => decoder.feed(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
        loop {
            match decoder.next_command() {
                Ok(Some(args)) => {
                    ctx.stats.commands.fetch_add(1, Ordering::Relaxed);
                    let slot = ReplySlot::new();
                    if tx.send(Arc::clone(&slot)).is_err() {
                        break 'conn; // writer died (client gone)
                    }
                    match Request::parse(&args) {
                        Err(msg) => slot.fill(Reply::Error(msg)),
                        Ok(Request::Ping) => slot.fill(Reply::Simple("PONG")),
                        Ok(Request::Info) => {
                            slot.fill(Reply::Bulk(ctx.render_info().into_bytes()));
                        }
                        Ok(Request::Shutdown) => {
                            slot.fill(Reply::Simple("OK"));
                            ctx.shutdown.store(true, Ordering::Release);
                            break 'conn;
                        }
                        Ok(Request::Get(key)) => lane.push(Op::Read {
                            keys: vec![key],
                            single: true,
                            slot,
                        }),
                        Ok(Request::MGet(keys)) => lane.push(Op::Read {
                            keys,
                            single: false,
                            slot,
                        }),
                        Ok(Request::Set(key, value)) => lane.push(Op::Write { key, value, slot }),
                        Ok(Request::Del(keys)) => lane.push(Op::Remove { keys, slot }),
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Protocol error: report, then close — the stream
                    // cannot be resynchronized (module docs).
                    ctx.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let slot = ReplySlot::new();
                    slot.fill(Reply::Error(format!("ERR {e}")));
                    let _ = tx.send(slot);
                    break 'conn;
                }
            }
        }
    }
}

/// Pop reply slots in submission order, block on each until its executor
/// fills it, and write the encoded reply. Flushes whenever the queue
/// momentarily empties (one syscall per burst, not per reply).
fn writer_loop(stream: TcpStream, rx: mpsc::Receiver<Arc<ReplySlot>>) {
    let mut out = std::io::BufWriter::with_capacity(32 * 1024, stream);
    let mut encode_buf = Vec::with_capacity(4096); // audit:allow(page-literal): initial reply-buffer capacity, not a page size
    let mut next = rx.try_recv();
    loop {
        let slot = match next {
            Ok(slot) => slot,
            Err(mpsc::TryRecvError::Empty) => {
                if out.flush().is_err() {
                    return;
                }
                match rx.recv() {
                    Ok(slot) => slot,
                    Err(_) => return, // reader hung up and queue drained
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => {
                let _ = out.flush();
                return;
            }
        };
        encode_buf.clear();
        slot.wait().encode(&mut encode_buf);
        if out.write_all(&encode_buf).is_err() {
            // Client is gone. Keep draining slots (executors fill them
            // regardless) without writing, so the reader's join is not
            // held up; exit when the sender closes.
            while rx.recv().is_ok() {}
            return;
        }
        next = rx.try_recv();
    }
}
