//! Server configuration.

use std::time::Duration;

/// Which index arm serves the data — the two comparison arms of the
/// paper's evaluation, now over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Shortcut-EH: lookups route through the rewired shortcut directory
    /// whenever it is in sync and the fan-in bound allows.
    #[default]
    Shortcut,
    /// EH baseline: the same index with shortcut routing disabled (fan-in
    /// threshold 0), so every lookup walks the traditional directory.
    Eh,
}

impl Engine {
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Shortcut => "shortcut-eh",
            Engine::Eh => "eh",
        }
    }

    /// Parse `eh` / `shortcut` (the `--engine` flag).
    pub fn parse(s: &str) -> Option<Engine> {
        match s.to_ascii_lowercase().as_str() {
            "shortcut" | "shortcut-eh" => Some(Engine::Shortcut),
            "eh" | "traditional" => Some(Engine::Eh),
            _ => None,
        }
    }
}

/// Everything `shortcut-server` is told at startup. `Default` is a
/// sensible laptop-scale server; the binary maps CLI flags onto the
/// fields 1:1.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 binds an ephemeral port —
    /// the e2e tests use that).
    pub addr: String,
    /// `s`: the index is partitioned into `2^s` shards (see
    /// `IndexBuilder::shards`). More shards = more write parallelism
    /// across executor threads.
    pub shard_bits: u32,
    /// `k`: physical slot size of `2^k` base pages (see
    /// `IndexBuilder::slot_pages`).
    pub slot_pages: u32,
    /// Expected live-entry capacity (pool sizing hint).
    pub capacity: usize,
    /// How long an executor waits for company after finding the first
    /// request of a batch. Zero disables aggregation waiting (batches
    /// then only form from genuinely concurrent arrivals).
    pub batch_window: Duration,
    /// Maximum requests drained into one executor batch.
    pub max_batch: usize,
    /// Executor thread count (= submission lane count). Connections are
    /// assigned to lanes round-robin; one executor owns each lane.
    pub executors: usize,
    /// Which arm serves the data.
    pub engine: Engine,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:6399".to_string(),
            shard_bits: 2,
            slot_pages: 0,
            capacity: 1_000_000,
            batch_window: Duration::from_micros(200),
            max_batch: 256,
            executors: std::thread::available_parallelism()
                .map(|n| n.get().clamp(1, 4))
                .unwrap_or(2),
            engine: Engine::Shortcut,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_parses_both_arms() {
        assert_eq!(Engine::parse("eh"), Some(Engine::Eh));
        assert_eq!(Engine::parse("SHORTCUT"), Some(Engine::Shortcut));
        assert_eq!(Engine::parse("shortcut-eh"), Some(Engine::Shortcut));
        assert_eq!(Engine::parse("nope"), None);
        assert_eq!(Engine::default().as_str(), "shortcut-eh");
    }

    #[test]
    fn default_config_is_sane() {
        let c = ServerConfig::default();
        assert!(c.executors >= 1);
        assert!(c.max_batch > 1);
        assert!(c.capacity > 0);
    }
}
