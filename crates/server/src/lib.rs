//! `shortcut-server`: a RESP-speaking network KV server over the
//! shortcut index, with **request batch aggregation**.
//!
//! The paper's batched entry points (`get_many`'s one-seqlock-ticket
//! reads, `insert_batch_shared`'s parallel per-shard writer lanes) want
//! batches — but network clients send one request at a time. This crate
//! closes that gap server-side: per-connection readers decode requests
//! into submission lanes, and a small executor pool drains each lane
//! into group batches, so concurrent clients' requests amortize into the
//! same batched index calls the benchmarks use. See [`batch`] for the
//! flow and the ordering argument.
//!
//! Wire protocol: a minimal hand-rolled RESP2 subset ([`protocol`]) —
//! `GET`/`MGET`/`SET`/`DEL`/`PING`/`INFO`/`SHUTDOWN`, keys and values as
//! decimal `u64` bulk strings. `redis-cli` and `nc` both work against it.
//!
//! Binaries: `shortcut-server` (the server) and `loadgen` (a
//! many-connection load generator printing a machine-parseable
//! QPS/p50/p99 line).

pub mod batch;
pub mod config;
pub mod conn;
pub mod protocol;
pub mod server;

pub use batch::{execute_batch, Lane, Op, ReplySlot, ServerStats};
pub use config::{Engine, ServerConfig};
pub use protocol::{Decoder, ProtoError, RawCommand, Reply, Request};
pub use server::{Server, ServerCtx, ShutdownReport};
