//! Request batch aggregation: submission lanes, reply slots, and the
//! executor loop that funnels many connections' requests into the
//! index's batched entry points.
//!
//! The flow is the whole point of this crate:
//!
//! 1. Per-connection reader threads decode requests and push them as
//!    [`Op`]s into a **submission lane** ([`Lane`]): an MPSC queue with a
//!    condvar wakeup. A connection always pushes into the same lane
//!    (`conn_id % lanes`), so one executor owns all of a connection's
//!    operations and **per-connection program order is preserved** —
//!    `SET 7 70` then `GET 7` on one connection always observes the
//!    write. (A single global queue drained by racing executors would
//!    reorder exactly that pair.)
//! 2. One executor thread per lane drains up to
//!    [`crate::ServerConfig::max_batch`] ops at a time — waiting up to
//!    [`crate::ServerConfig::batch_window`] to aggregate company for a
//!    lone op — and splits the drained FIFO into **maximal homogeneous
//!    runs** (reads / inserts / removes). Runs execute in order, so the
//!    FIFO semantics survive; within a run the per-request cost is
//!    amortized:
//!    * a read run becomes **one** `get_many` batch — one seqlock ticket
//!      and one reader pin per shard chunk for every `GET`/`MGET` in the
//!      run (PR 2's contract, built for exactly this caller);
//!    * a write run becomes **one** `insert_batch_shared` — scattered so
//!      each shard's writer lane runs in parallel with other executors;
//!    * a remove run becomes **one** `remove_batch_shared`.
//! 3. Each op carries its [`ReplySlot`]; the executor fills it and the
//!    connection's writer thread — which holds the slots in submission
//!    order — encodes and sends replies in order.

use crate::protocol::Reply;
use shortcut_rewire::sync::{AtomicBool, AtomicU64, Condvar, Mutex, Ordering};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;
use taking_the_shortcut::ShortcutIndex;

/// A one-shot rendezvous for one request's reply: the executor (or the
/// reader itself, for immediate replies) fills it once; the connection's
/// writer thread blocks until it is filled.
#[derive(Debug, Default)]
pub struct ReplySlot {
    state: Mutex<Option<Reply>>,
    cv: Condvar,
}

impl ReplySlot {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Fill the slot (first write wins; a second fill is ignored so a
    /// shutdown path racing an executor cannot panic).
    pub fn fill(&self, reply: Reply) {
        let mut state = self.state.lock().unwrap();
        if state.is_none() {
            *state = Some(reply);
            self.cv.notify_all();
        }
    }

    /// Block until the slot is filled and take the reply.
    pub fn wait(&self) -> Reply {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(reply) = state.take() {
                return reply;
            }
            state = self.cv.wait(state).unwrap();
        }
    }
}

/// Deliberately-broken reply-slot variants, compiled only for the model
/// tests: each reintroduces a classic condvar bug so
/// `tests/loom_replyslot.rs` can prove the checker flags it. Never call
/// these outside that suite.
#[cfg(feature = "loomish")]
impl ReplySlot {
    /// Seeded bug: the double-fill tolerance removed. A shutdown path
    /// racing an executor trips the assertion — exactly the crash the
    /// `is_none` guard in [`ReplySlot::fill`] exists to prevent.
    pub fn fill_seeded_assert_empty(&self, reply: Reply) {
        let mut state = self.state.lock().unwrap();
        assert!(state.is_none(), "double fill");
        *state = Some(reply);
        self.cv.notify_all();
    }

    /// Seeded bug: the emptiness check released before waiting. A fill
    /// that lands in the gap notifies nobody, and the subsequent wait has
    /// no filler left to wake it — the lost wakeup shows up as a model
    /// deadlock.
    pub fn wait_seeded_check_then_wait(&self) -> Reply {
        loop {
            if let Some(reply) = self.state.lock().unwrap().take() {
                return reply;
            }
            let state = self.state.lock().unwrap();
            drop(self.cv.wait(state).unwrap());
        }
    }
}

/// One batched operation, tagged with the slot its reply goes to.
#[derive(Debug)]
pub enum Op {
    /// `GET` (one key) or `MGET` (many): answered from one `get_many`
    /// spanning the whole read run.
    Read {
        keys: Vec<u64>,
        /// `GET` replies bulk-or-nil; `MGET` replies an array.
        single: bool,
        slot: Arc<ReplySlot>,
    },
    /// `SET`: one entry of the run's `insert_batch_shared`.
    Write {
        key: u64,
        value: u64,
        slot: Arc<ReplySlot>,
    },
    /// `DEL`: keys join the run's `remove_batch_shared`; the reply is
    /// the removed count, Redis-style.
    Remove {
        keys: Vec<u64>,
        slot: Arc<ReplySlot>,
    },
}

/// An MPSC submission lane: readers push, one executor drains.
#[derive(Debug, Default)]
pub struct Lane {
    q: Mutex<VecDeque<Op>>,
    cv: Condvar,
}

impl Lane {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue an op and wake the lane's executor.
    pub fn push(&self, op: Op) {
        self.q.lock().unwrap().push_back(op);
        self.cv.notify_one();
    }

    pub fn len(&self) -> usize {
        self.q.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain up to `max` ops. Blocks (in bounded slices, so `stop` is
    /// honored promptly) until at least one op is available; once one
    /// is, waits up to `window` more for company — that wait is the
    /// aggregation knob: longer windows build bigger batches at the cost
    /// of added latency. Returns an empty vec only when `stop` is set
    /// and the lane is empty (the drain-then-exit contract).
    pub fn drain(&self, max: usize, window: Duration, stop: &AtomicBool) -> Vec<Op> {
        let mut q = self.q.lock().unwrap();
        while q.is_empty() {
            if stop.load(Ordering::Acquire) {
                return Vec::new();
            }
            let (guard, _) = self.cv.wait_timeout(q, Duration::from_millis(50)).unwrap();
            q = guard;
        }
        if q.len() < max && !window.is_zero() && !stop.load(Ordering::Acquire) {
            // One bounded aggregation nap; whatever arrived joins the batch.
            let (guard, _) = self.cv.wait_timeout(q, window).unwrap();
            q = guard;
        }
        let take = q.len().min(max);
        q.drain(..take).collect()
    }
}

/// Server-wide counters (all monotone; INFO renders them).
#[derive(Debug, Default)]
pub struct ServerStats {
    pub connections_accepted: AtomicU64,
    pub connections_closed: AtomicU64,
    pub commands: AtomicU64,
    pub protocol_errors: AtomicU64,
    /// One per `get_many` call (= one read run).
    pub read_batches: AtomicU64,
    /// `GET`/`MGET` commands aggregated into read runs.
    pub read_ops: AtomicU64,
    /// Keys those commands carried (≥ `read_ops`; `MGET` adds many).
    pub read_keys: AtomicU64,
    /// One per `insert_batch_shared` call (= one write run).
    pub write_batches: AtomicU64,
    pub write_ops: AtomicU64,
    /// One per `remove_batch_shared` call (= one remove run).
    pub del_batches: AtomicU64,
    pub del_keys: AtomicU64,
}

impl ServerStats {
    /// Mean keys per read batch — the headline aggregation gauge
    /// (`1.0` means batching never engaged).
    pub fn mean_read_batch_keys(&self) -> f64 {
        let batches = self.read_batches.load(Ordering::Relaxed);
        if batches == 0 {
            0.0
        } else {
            self.read_keys.load(Ordering::Relaxed) as f64 / batches as f64
        }
    }

    /// Mean `GET`/`MGET` commands per read batch.
    pub fn mean_read_batch_ops(&self) -> f64 {
        let batches = self.read_batches.load(Ordering::Relaxed);
        if batches == 0 {
            0.0
        } else {
            self.read_ops.load(Ordering::Relaxed) as f64 / batches as f64
        }
    }
}

/// Execute one drained FIFO batch: split into maximal homogeneous runs
/// and drive each run through the matching batched index entry point.
pub fn execute_batch(index: &ShortcutIndex, stats: &ServerStats, ops: Vec<Op>) {
    let mut reads: Vec<(Vec<u64>, bool, Arc<ReplySlot>)> = Vec::new();
    let mut writes: Vec<(u64, u64, Arc<ReplySlot>)> = Vec::new();
    let mut removes: Vec<(Vec<u64>, Arc<ReplySlot>)> = Vec::new();
    // `kind` of the run currently being accumulated: 0 reads, 1 writes,
    // 2 removes. A kind switch flushes the previous run, preserving the
    // drained FIFO order across runs.
    let mut current: Option<u8> = None;
    for op in ops {
        let kind = match op {
            Op::Read { .. } => 0u8,
            Op::Write { .. } => 1,
            Op::Remove { .. } => 2,
        };
        if current.is_some() && current != Some(kind) {
            flush_run(index, stats, &mut reads, &mut writes, &mut removes);
        }
        current = Some(kind);
        match op {
            Op::Read { keys, single, slot } => reads.push((keys, single, slot)),
            Op::Write { key, value, slot } => writes.push((key, value, slot)),
            Op::Remove { keys, slot } => removes.push((keys, slot)),
        }
    }
    flush_run(index, stats, &mut reads, &mut writes, &mut removes);
}

/// Execute whichever single run is pending (at most one of the three
/// vectors is non-empty between flushes).
fn flush_run(
    index: &ShortcutIndex,
    stats: &ServerStats,
    reads: &mut Vec<(Vec<u64>, bool, Arc<ReplySlot>)>,
    writes: &mut Vec<(u64, u64, Arc<ReplySlot>)>,
    removes: &mut Vec<(Vec<u64>, Arc<ReplySlot>)>,
) {
    if !reads.is_empty() {
        let all_keys: Vec<u64> = reads
            .iter()
            .flat_map(|(keys, _, _)| keys.iter().copied())
            .collect();
        let answers = index.get_many(&all_keys);
        stats.read_batches.fetch_add(1, Ordering::Relaxed);
        stats
            .read_ops
            .fetch_add(reads.len() as u64, Ordering::Relaxed);
        stats
            .read_keys
            .fetch_add(all_keys.len() as u64, Ordering::Relaxed);
        let mut at = 0;
        for (keys, single, slot) in reads.drain(..) {
            let mine = &answers[at..at + keys.len()];
            at += keys.len();
            let reply = if single {
                match mine[0] {
                    Some(v) => Reply::bulk_u64(v),
                    None => Reply::Nil,
                }
            } else {
                Reply::Array(
                    mine.iter()
                        .map(|a| match a {
                            Some(v) => Reply::bulk_u64(*v),
                            None => Reply::Nil,
                        })
                        .collect(),
                )
            };
            slot.fill(reply);
        }
    } else if !writes.is_empty() {
        let entries: Vec<(u64, u64)> = writes.iter().map(|&(k, v, _)| (k, v)).collect();
        let result = index.insert_batch_shared(&entries);
        stats.write_batches.fetch_add(1, Ordering::Relaxed);
        stats
            .write_ops
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        for (_, _, slot) in writes.drain(..) {
            // On a batch failure every member reports it: per-shard
            // applied prefixes are not attributable to individual
            // entries from out here, and a spurious error beats a
            // spurious OK. (Insert only fails when the pool/directory
            // cannot grow — the server equivalent of OOM.)
            slot.fill(match &result {
                Ok(()) => Reply::Simple("OK"),
                Err(e) => Reply::Error(format!("ERR storage: {e}")),
            });
        }
    } else if !removes.is_empty() {
        let all_keys: Vec<u64> = removes
            .iter()
            .flat_map(|(keys, _)| keys.iter().copied())
            .collect();
        let result = index.remove_batch_shared(&all_keys);
        stats.del_batches.fetch_add(1, Ordering::Relaxed);
        stats
            .del_keys
            .fetch_add(all_keys.len() as u64, Ordering::Relaxed);
        match result {
            Ok(answers) => {
                let mut at = 0;
                for (keys, slot) in removes.drain(..) {
                    let removed = answers[at..at + keys.len()]
                        .iter()
                        .filter(|a| a.is_some())
                        .count();
                    at += keys.len();
                    slot.fill(Reply::Int(removed as i64));
                }
            }
            Err(e) => {
                let msg = format!("ERR storage: {e}");
                for (_, slot) in removes.drain(..) {
                    slot.fill(Reply::Error(msg.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> ShortcutIndex {
        ShortcutIndex::builder()
            .capacity(10_000)
            .vma_budget(100_000)
            .build()
            .unwrap()
    }

    fn read_op(keys: &[u64]) -> (Op, Arc<ReplySlot>) {
        let slot = ReplySlot::new();
        (
            Op::Read {
                keys: keys.to_vec(),
                single: keys.len() == 1,
                slot: Arc::clone(&slot),
            },
            slot,
        )
    }

    #[test]
    fn homogeneous_runs_preserve_fifo_semantics() {
        let idx = index();
        let stats = ServerStats::default();
        // SET 1 10, SET 2 20, GET 1, DEL 1, GET 1, GET 2 — one batch.
        let slots: Vec<Arc<ReplySlot>> = {
            let s1 = ReplySlot::new();
            let s2 = ReplySlot::new();
            let (g1, gs1) = read_op(&[1]);
            let d = ReplySlot::new();
            let (g2, gs2) = read_op(&[1]);
            let (g3, gs3) = read_op(&[2]);
            execute_batch(
                &idx,
                &stats,
                vec![
                    Op::Write {
                        key: 1,
                        value: 10,
                        slot: Arc::clone(&s1),
                    },
                    Op::Write {
                        key: 2,
                        value: 20,
                        slot: Arc::clone(&s2),
                    },
                    g1,
                    Op::Remove {
                        keys: vec![1],
                        slot: Arc::clone(&d),
                    },
                    g2,
                    g3,
                ],
            );
            vec![s1, s2, gs1, d, gs2, gs3]
        };
        assert_eq!(slots[0].wait(), Reply::Simple("OK"));
        assert_eq!(slots[1].wait(), Reply::Simple("OK"));
        assert_eq!(
            slots[2].wait(),
            Reply::bulk_u64(10),
            "GET after SET sees it"
        );
        assert_eq!(slots[3].wait(), Reply::Int(1));
        assert_eq!(slots[4].wait(), Reply::Nil, "GET after DEL misses");
        assert_eq!(slots[5].wait(), Reply::bulk_u64(20));
        // 3 GETs in 2 read runs (split by the DEL), 1 write run, 1 del run.
        assert_eq!(stats.read_batches.load(Ordering::Relaxed), 2);
        assert_eq!(stats.read_ops.load(Ordering::Relaxed), 3);
        assert_eq!(stats.write_batches.load(Ordering::Relaxed), 1);
        assert_eq!(stats.del_batches.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn mget_spans_one_batch_and_answers_in_order() {
        let idx = index();
        let stats = ServerStats::default();
        let mut ops = Vec::new();
        let mut slots = Vec::new();
        for k in 0..10u64 {
            let slot = ReplySlot::new();
            ops.push(Op::Write {
                key: k,
                value: k * 100,
                slot: Arc::clone(&slot),
            });
            slots.push(slot);
        }
        let (mget, mslot) = read_op(&[3, 99, 7]);
        ops.push(mget);
        execute_batch(&idx, &stats, ops);
        for s in &slots {
            assert_eq!(s.wait(), Reply::Simple("OK"));
        }
        assert_eq!(
            mslot.wait(),
            Reply::Array(vec![Reply::bulk_u64(300), Reply::Nil, Reply::bulk_u64(700)])
        );
        assert!((stats.mean_read_batch_keys() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn lane_drain_aggregates_and_honors_stop() {
        let lane = Lane::new();
        let stop = AtomicBool::new(false);
        for i in 0..5u64 {
            let (op, _slot) = read_op(&[i]);
            lane.push(op);
        }
        let got = lane.drain(3, Duration::ZERO, &stop);
        assert_eq!(got.len(), 3, "bounded by max");
        let got = lane.drain(16, Duration::from_micros(100), &stop);
        assert_eq!(got.len(), 2, "rest of the lane");
        stop.store(true, Ordering::Release);
        assert!(
            lane.drain(16, Duration::ZERO, &stop).is_empty(),
            "stop + empty"
        );
    }

    #[test]
    fn reply_slot_is_first_write_wins() {
        let slot = ReplySlot::new();
        slot.fill(Reply::Simple("OK"));
        slot.fill(Reply::Nil);
        assert_eq!(slot.wait(), Reply::Simple("OK"));
    }
}
