//! The 4 KB bucket: a page-sized leaf holding `(u64 key, u64 value)`
//! entries under open addressing / linear probing.
//!
//! Buckets live in [`shortcut_rewire::PagePool`] pages so that shortcut
//! directories can be rewired to them. A [`BucketRef`] is a thin wrapper
//! around the page's base pointer with typed accessors; it is valid for as
//! long as the underlying page is allocated, which the owning index
//! guarantees.
//!
//! **Relocation.** Compaction may physically move a bucket to another pool
//! page (copy-then-retire, see [`shortcut_rewire::PagePool::relocate_page`]).
//! A `BucketRef` is therefore only as stable as the translation that
//! produced it: the owning directory. Never cache one across an operation
//! that can compact (splits, doublings, explicit passes) — re-fetch it
//! through the directory instead.
//!
//! Page layout (little-endian, 8-byte aligned):
//!
//! ```text
//! offset   0: u32  local_depth
//! offset   4: u32  count           (live entries)
//! offset   8: [u64; 4] occupied    bitmap (bit i = slot i holds an entry)
//! offset  40: [u64; 4] tombstone   bitmap (bit i = slot i was deleted)
//! offset  72: [(u64, u64); 251]    entries
//! ```

use crate::hash::bucket_slot_hash;
use shortcut_rewire::PAGE_SIZE_4K;

/// Entries per 4 KB bucket: `(4096 − 72) / 16`.
pub const BUCKET_CAPACITY: usize = 251;

const OCCUPIED_OFF: usize = 8;
const TOMBSTONE_OFF: usize = 40;
const ENTRIES_OFF: usize = 72;

/// Result of a bucket insert attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Key inserted into a fresh slot.
    Inserted,
    /// Key existed; its value was overwritten.
    Updated,
    /// No free slot (or the load limit was reached): the bucket must split.
    Full,
}

/// A typed view over a bucket page. Copyable; does not own the page.
#[derive(Debug, Clone, Copy)]
pub struct BucketRef {
    ptr: *mut u8,
}

impl BucketRef {
    /// Wrap a bucket page.
    ///
    /// # Safety
    ///
    /// `ptr` must point to the start of a live, writable, 4 KB page that is
    /// used exclusively as a bucket and outlives all reads through the ref.
    pub unsafe fn from_ptr(ptr: *mut u8) -> Self {
        debug_assert!(!ptr.is_null());
        debug_assert_eq!(ptr as usize % 8, 0, "bucket page must be aligned");
        BucketRef { ptr }
    }

    /// The underlying page pointer.
    #[inline]
    pub fn as_ptr(self) -> *mut u8 {
        self.ptr
    }

    /// Zero the page and set the local depth — a fresh empty bucket.
    pub fn init(self, local_depth: u32) {
        // SAFETY: per from_ptr contract the whole page is ours.
        unsafe {
            std::ptr::write_bytes(self.ptr, 0, PAGE_SIZE_4K);
        }
        self.set_local_depth(local_depth);
    }

    /// The bucket's local depth (how many hash bits it distinguishes).
    #[inline]
    pub fn local_depth(self) -> u32 {
        // SAFETY: in-bounds, aligned.
        unsafe { (self.ptr as *const u32).read() }
    }

    /// Set the local depth.
    #[inline]
    pub fn set_local_depth(self, d: u32) {
        // SAFETY: in-bounds, aligned.
        unsafe { (self.ptr as *mut u32).write(d) }
    }

    /// Number of live entries.
    #[inline]
    pub fn count(self) -> usize {
        // SAFETY: in-bounds, aligned.
        unsafe { (self.ptr.add(4) as *const u32).read() as usize }
    }

    #[inline]
    fn set_count(self, c: usize) {
        // SAFETY: in-bounds, aligned.
        unsafe { (self.ptr.add(4) as *mut u32).write(c as u32) }
    }

    #[inline]
    fn bitmap_word(self, base: usize, word: usize) -> u64 {
        // SAFETY: word < 4, base in {8, 40}.
        unsafe { (self.ptr.add(base + word * 8) as *const u64).read() }
    }

    #[inline]
    fn set_bitmap_word(self, base: usize, word: usize, v: u64) {
        // SAFETY: word < 4, base in {8, 40}.
        unsafe { (self.ptr.add(base + word * 8) as *mut u64).write(v) }
    }

    #[inline]
    fn bit(self, base: usize, slot: usize) -> bool {
        self.bitmap_word(base, slot / 64) >> (slot % 64) & 1 == 1
    }

    #[inline]
    fn set_bit(self, base: usize, slot: usize, on: bool) {
        let w = self.bitmap_word(base, slot / 64);
        let mask = 1u64 << (slot % 64);
        self.set_bitmap_word(base, slot / 64, if on { w | mask } else { w & !mask });
    }

    #[inline]
    fn entry(self, slot: usize) -> (u64, u64) {
        debug_assert!(slot < BUCKET_CAPACITY);
        // SAFETY: in-bounds, aligned.
        unsafe {
            let p = self.ptr.add(ENTRIES_OFF + slot * 16) as *const u64;
            (p.read(), p.add(1).read())
        }
    }

    #[inline]
    fn set_entry(self, slot: usize, key: u64, value: u64) {
        debug_assert!(slot < BUCKET_CAPACITY);
        // SAFETY: in-bounds, aligned.
        unsafe {
            let p = self.ptr.add(ENTRIES_OFF + slot * 16) as *mut u64;
            p.write(key);
            p.add(1).write(value);
        }
    }

    /// Insert or update `key`, refusing (returning [`InsertOutcome::Full`])
    /// once `max_entries` live entries are reached and the key is new.
    pub fn insert(self, key: u64, value: u64, max_entries: usize) -> InsertOutcome {
        let start = (bucket_slot_hash(key) % BUCKET_CAPACITY as u64) as usize;
        let mut first_free: Option<usize> = None;
        for i in 0..BUCKET_CAPACITY {
            let slot = (start + i) % BUCKET_CAPACITY;
            if self.bit(OCCUPIED_OFF, slot) {
                if self.entry(slot).0 == key {
                    self.set_entry(slot, key, value);
                    return InsertOutcome::Updated;
                }
            } else {
                if first_free.is_none() {
                    first_free = Some(slot);
                }
                // A never-occupied, never-deleted slot terminates the probe:
                // the key cannot be further along.
                if !self.bit(TOMBSTONE_OFF, slot) {
                    break;
                }
            }
        }
        if self.count() >= max_entries {
            return InsertOutcome::Full;
        }
        match first_free {
            Some(slot) => {
                self.set_entry(slot, key, value);
                self.set_bit(OCCUPIED_OFF, slot, true);
                self.set_bit(TOMBSTONE_OFF, slot, false);
                self.set_count(self.count() + 1);
                InsertOutcome::Inserted
            }
            None => InsertOutcome::Full,
        }
    }

    /// Look up `key`.
    pub fn get(self, key: u64) -> Option<u64> {
        let start = (bucket_slot_hash(key) % BUCKET_CAPACITY as u64) as usize;
        for i in 0..BUCKET_CAPACITY {
            let slot = (start + i) % BUCKET_CAPACITY;
            if self.bit(OCCUPIED_OFF, slot) {
                let (k, v) = self.entry(slot);
                if k == key {
                    return Some(v);
                }
            } else if !self.bit(TOMBSTONE_OFF, slot) {
                return None;
            }
        }
        None
    }

    /// Remove `key`, returning its value.
    pub fn remove(self, key: u64) -> Option<u64> {
        let start = (bucket_slot_hash(key) % BUCKET_CAPACITY as u64) as usize;
        for i in 0..BUCKET_CAPACITY {
            let slot = (start + i) % BUCKET_CAPACITY;
            if self.bit(OCCUPIED_OFF, slot) {
                let (k, v) = self.entry(slot);
                if k == key {
                    self.set_bit(OCCUPIED_OFF, slot, false);
                    self.set_bit(TOMBSTONE_OFF, slot, true);
                    self.set_count(self.count() - 1);
                    return Some(v);
                }
            } else if !self.bit(TOMBSTONE_OFF, slot) {
                return None;
            }
        }
        None
    }

    /// Copy out all live entries (used when splitting).
    pub fn drain_entries(self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.count());
        for slot in 0..BUCKET_CAPACITY {
            if self.bit(OCCUPIED_OFF, slot) {
                out.push(self.entry(slot));
            }
        }
        out
    }

    /// Iterate live entries without allocating.
    pub fn for_each_entry(self, mut f: impl FnMut(u64, u64)) {
        for slot in 0..BUCKET_CAPACITY {
            if self.bit(OCCUPIED_OFF, slot) {
                let (k, v) = self.entry(slot);
                f(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A heap-allocated stand-in for a pool page.
    fn page() -> (Vec<u8>, BucketRef) {
        let mut mem = vec![0u8; PAGE_SIZE_4K + 8];
        let off = mem.as_ptr().align_offset(8);
        let ptr = unsafe { mem.as_mut_ptr().add(off) };
        let b = unsafe { BucketRef::from_ptr(ptr) };
        b.init(0);
        (mem, b)
    }

    #[test]
    fn insert_get_roundtrip() {
        let (_m, b) = page();
        assert_eq!(b.insert(1, 100, BUCKET_CAPACITY), InsertOutcome::Inserted);
        assert_eq!(b.insert(2, 200, BUCKET_CAPACITY), InsertOutcome::Inserted);
        assert_eq!(b.get(1), Some(100));
        assert_eq!(b.get(2), Some(200));
        assert_eq!(b.get(3), None);
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn update_in_place() {
        let (_m, b) = page();
        b.insert(7, 1, BUCKET_CAPACITY);
        assert_eq!(b.insert(7, 2, BUCKET_CAPACITY), InsertOutcome::Updated);
        assert_eq!(b.get(7), Some(2));
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn key_zero_is_a_normal_key() {
        let (_m, b) = page();
        assert_eq!(b.get(0), None);
        b.insert(0, 999, BUCKET_CAPACITY);
        assert_eq!(b.get(0), Some(999));
    }

    #[test]
    fn fills_to_capacity_then_full() {
        let (_m, b) = page();
        for k in 0..BUCKET_CAPACITY as u64 {
            assert_eq!(
                b.insert(k, k, BUCKET_CAPACITY),
                InsertOutcome::Inserted,
                "key {k}"
            );
        }
        assert_eq!(b.count(), BUCKET_CAPACITY);
        assert_eq!(b.insert(9999, 1, BUCKET_CAPACITY), InsertOutcome::Full);
        // Updates still work when full.
        assert_eq!(b.insert(5, 55, BUCKET_CAPACITY), InsertOutcome::Updated);
        for k in 0..BUCKET_CAPACITY as u64 {
            let want = if k == 5 { 55 } else { k };
            assert_eq!(b.get(k), Some(want), "key {k}");
        }
    }

    #[test]
    fn load_limit_respected() {
        let (_m, b) = page();
        let limit = 88; // ≈ 0.35 × 251, the paper's load factor
        for k in 0..limit as u64 {
            assert_eq!(b.insert(k, k, limit), InsertOutcome::Inserted);
        }
        assert_eq!(b.insert(10_000, 1, limit), InsertOutcome::Full);
    }

    #[test]
    fn remove_then_get_miss_and_reinsert() {
        let (_m, b) = page();
        b.insert(1, 10, BUCKET_CAPACITY);
        b.insert(2, 20, BUCKET_CAPACITY);
        assert_eq!(b.remove(1), Some(10));
        assert_eq!(b.remove(1), None);
        assert_eq!(b.get(1), None);
        assert_eq!(b.get(2), Some(20));
        assert_eq!(b.count(), 1);
        // Tombstoned slot is reusable.
        assert_eq!(b.insert(1, 11, BUCKET_CAPACITY), InsertOutcome::Inserted);
        assert_eq!(b.get(1), Some(11));
    }

    #[test]
    fn tombstones_do_not_break_probe_chains() {
        // Force three keys into the same start slot by brute-force search.
        let (_m, b) = page();
        let start = (bucket_slot_hash(1) % BUCKET_CAPACITY as u64) as usize;
        let mut colliders = vec![1u64];
        let mut k = 2u64;
        while colliders.len() < 3 {
            if (bucket_slot_hash(k) % BUCKET_CAPACITY as u64) as usize == start {
                colliders.push(k);
            }
            k += 1;
        }
        for (i, k) in colliders.iter().enumerate() {
            b.insert(*k, i as u64, BUCKET_CAPACITY);
        }
        // Delete the middle of the chain; the tail must stay reachable.
        assert_eq!(b.remove(colliders[1]), Some(1));
        assert_eq!(b.get(colliders[2]), Some(2));
        assert_eq!(b.get(colliders[0]), Some(0));
    }

    #[test]
    fn local_depth_persists() {
        let (_m, b) = page();
        b.set_local_depth(5);
        b.insert(1, 1, BUCKET_CAPACITY);
        assert_eq!(b.local_depth(), 5);
    }

    #[test]
    fn drain_returns_all_live_entries() {
        let (_m, b) = page();
        for k in 0..50u64 {
            b.insert(k, k * 2, BUCKET_CAPACITY);
        }
        b.remove(10);
        b.remove(20);
        let mut got = b.drain_entries();
        got.sort_unstable();
        assert_eq!(got.len(), 48);
        assert!(!got.iter().any(|(k, _)| *k == 10 || *k == 20));
        assert!(got.iter().all(|(k, v)| *v == *k * 2));
    }

    #[test]
    fn init_clears_previous_contents() {
        let (_m, b) = page();
        for k in 0..40u64 {
            b.insert(k, k, BUCKET_CAPACITY);
        }
        b.init(3);
        assert_eq!(b.count(), 0);
        assert_eq!(b.local_depth(), 3);
        assert_eq!(b.get(5), None);
    }

    #[test]
    fn capacity_fits_in_page() {
        let (cap, off, page) = (BUCKET_CAPACITY, ENTRIES_OFF, PAGE_SIZE_4K);
        assert!(off + cap * 16 <= page);
        // And we are not wasting a whole extra entry's worth of space.
        assert!(off + (cap + 1) * 16 > page);
    }
}
