//! The slot-sized bucket: a leaf holding `(u64 key, u64 value)` entries
//! under open addressing / linear probing.
//!
//! Buckets live in [`shortcut_rewire::PagePool`] slots so that shortcut
//! directories can be rewired to them. The bucket's capacity and field
//! offsets are **derived from the pool's slot size** via [`BucketLayout`]:
//! at the paper's default 4 KB slots the layout is the classic
//! 251-entry page ([`BUCKET_CAPACITY`]), while a `2^k`-page slot holds
//! roughly `2^k` times as many entries — fewer splits, a shallower
//! directory, and fewer doublings for the same key count.
//!
//! A [`BucketRef`] is a thin wrapper around the slot's base pointer plus
//! its layout; it is valid for as long as the underlying slot is
//! allocated, which the owning index guarantees.
//!
//! **Relocation.** Compaction may physically move a bucket to another pool
//! slot (copy-then-retire, see [`shortcut_rewire::PagePool::relocate_page`]).
//! A `BucketRef` is therefore only as stable as the translation that
//! produced it: the owning directory. Never cache one across an operation
//! that can compact (splits, doublings, explicit passes) — re-fetch it
//! through the directory instead.
//!
//! Slot layout (little-endian, 8-byte aligned, `W = ceil(capacity / 64)`):
//!
//! ```text
//! offset          0: u32  local_depth
//! offset          4: u32  count           (live entries)
//! offset          8: [u64; W] occupied    bitmap (bit i = slot i holds an entry)
//! offset   8 +  8*W: [u64; W] tombstone   bitmap (bit i = slot i was deleted)
//! offset   8 + 16*W: [(u64, u64); capacity] entries
//! ```

use crate::hash::bucket_slot_hash;
use shortcut_rewire::{SlotLayout, PAGE_SIZE_4K};
use std::sync::OnceLock;

/// Key-compare kernel used inside the bucket probe. The probe itself is
/// always the word-at-a-time bitmap walk (one `u64` load covers 64 slots'
/// presence/tombstone state); the backend only selects how the occupied
/// candidates within a word are compared against the probe key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeBackend {
    /// Portable bit-iteration compare (the only backend off x86-64).
    Scalar,
    /// SSE2 2-entry-wide compares (baseline on every x86-64).
    Sse2,
    /// AVX2 2-entry-per-lane-pair compares (runtime-detected).
    Avx2,
}

impl ProbeBackend {
    /// Stable lowercase name, as surfaced in stats output.
    pub fn name(self) -> &'static str {
        match self {
            ProbeBackend::Scalar => "scalar",
            ProbeBackend::Sse2 => "sse2",
            ProbeBackend::Avx2 => "avx2",
        }
    }
}

/// The process-wide probe backend: runtime feature detection (AVX2, else
/// SSE2 on x86-64, else scalar), overridable for benchmarks and the
/// non-AVX2 CI leg via `SHORTCUT_PROBE=scalar|sse2|avx2` (an unsupported
/// or unknown value falls back to detection). Read once and cached.
pub fn probe_backend() -> ProbeBackend {
    static BACKEND: OnceLock<ProbeBackend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            let detected = if is_x86_feature_detected!("avx2") {
                ProbeBackend::Avx2
            } else {
                ProbeBackend::Sse2
            };
            match std::env::var("SHORTCUT_PROBE").as_deref() {
                Ok("scalar") => ProbeBackend::Scalar,
                Ok("sse2") => ProbeBackend::Sse2,
                Ok("avx2") if detected == ProbeBackend::Avx2 => ProbeBackend::Avx2,
                _ => detected,
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            // Only the portable kernel exists here; the override can at
            // most restate it.
            ProbeBackend::Scalar
        }
    })
}

/// Compare the keys of 8 consecutive entries at `p` (stride 16 B: each
/// entry is `(u64 key, u64 value)`) against `key`; bit `i` of the result
/// is set iff entry `i`'s key matches.
///
/// # Safety
///
/// `p` must be valid for reads of 128 bytes (8 whole entries). Alignment
/// is not required (`loadu`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
#[inline]
unsafe fn eq8_sse2(p: *const u8, key: u64) -> u32 {
    use std::arch::x86_64::*;
    let needle = _mm_set1_epi64x(key as i64);
    let mut out = 0u32;
    for pair in 0..4 {
        // SAFETY: pair * 32 + 32 <= 128, within the caller's contract.
        let keys = unsafe {
            let q = p.add(pair * 32) as *const __m128i;
            // Two 16 B entries: (key, value) each; unpacklo gathers the
            // keys.
            _mm_unpacklo_epi64(_mm_loadu_si128(q), _mm_loadu_si128(q.add(1)))
        };
        // SSE2 has no 64-bit compare; a 64-bit lane matches iff both of
        // its 32-bit halves match.
        let eq = _mm_cmpeq_epi32(keys, needle);
        let m = _mm_movemask_ps(_mm_castsi128_ps(eq)) as u32;
        let lo = u32::from(m & 3 == 3);
        let hi = u32::from(m >> 2 & 3 == 3);
        out |= (lo | hi << 1) << (2 * pair);
    }
    out
}

/// AVX2 variant of [`eq8_sse2`] (same contract): each 32 B load covers two
/// entries, lanes `[key_i, val_i, key_{i+1}, val_{i+1}]`; the key lanes
/// are movemask bits 0 and 2.
///
/// # Safety
///
/// As [`eq8_sse2`], plus the caller must have verified AVX2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn eq8_avx2(p: *const u8, key: u64) -> u32 {
    use std::arch::x86_64::*;
    let needle = _mm256_set1_epi64x(key as i64);
    let mut out = 0u32;
    for pair in 0..4 {
        // SAFETY: pair * 32 + 32 <= 128, within the caller's contract.
        let v = unsafe { _mm256_loadu_si256(p.add(pair * 32) as *const __m256i) };
        let eq = _mm256_cmpeq_epi64(v, needle);
        let m = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32;
        out |= ((m & 1) | (m >> 1 & 2)) << (2 * pair);
    }
    out
}

/// Bits `[from, to)` of a `u64` set. `from < to <= 64`.
#[inline]
fn mask_range(from: usize, to: usize) -> u64 {
    let hi = if to == 64 { u64::MAX } else { (1u64 << to) - 1 };
    hi & !((1u64 << from) - 1)
}

/// Home slot of `key` in a bucket of `capacity` slots: multiply-shift
/// range reduction (`hash · capacity >> 64`) instead of `hash % capacity`.
/// The distribution is as uniform as the hash, and the widening multiply
/// replaces a ~25-cycle division that sat at the head of every probe's
/// data-dependent chain (hash → slot → bitmap word → entry).
#[inline]
fn home_slot(key: u64, capacity: usize) -> usize {
    ((bucket_slot_hash(key) as u128 * capacity as u128) >> 64) as usize
}

/// Outcome of the unified bucket probe for a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeHit {
    /// Key found live in this slot.
    Found(usize),
    /// Key absent; `first_free` is the first insertable slot on its probe
    /// path (a tombstone, or the never-used terminator), `None` when the
    /// probe wrapped the whole bucket without one.
    Missing { first_free: Option<usize> },
}

/// Per-segment control flow of the probe (`[start, capacity)` then
/// `[0, start)`).
enum SegmentOutcome {
    Found(usize),
    /// Hit a never-used slot: the key cannot be further along.
    Terminated,
    /// Segment exhausted without a terminator; continue wrapping.
    Continue,
}

/// Entries per 4 KB bucket (`(4096 − 72) / 16`): the capacity of the
/// default [`BucketLayout::base`], kept as a named constant for the
/// page-sized schemes (HT, CH) and tests.
pub const BUCKET_CAPACITY: usize = 251;

/// Header offset of the occupied bitmap (independent of capacity).
const OCCUPIED_OFF: usize = 8;

/// Minimum candidates in an 8-slot byte group before the vector compare
/// pays for itself: below this the group's 128 B load spans more cache
/// lines than the individual entries the scalar loop would touch, and
/// the kernel's fixed cost (broadcast, compare, movemask) exceeds one or
/// two dependent loads. Measured crossover on the bench host.
#[cfg(target_arch = "x86_64")]
const VECTOR_MIN_GROUP: u32 = 4;

/// Slots the probe walks one-by-one before switching to the word-at-a-time
/// machinery. Short probe runs (the overwhelming majority at the paper's
/// load limit) are cheapest per-slot; the word walk and vector kernels
/// only win on long runs and tombstone chains.
const FAST_PROBE_SLOTS: usize = 8;

/// Derived geometry of a bucket inside a slot of a given byte size: the
/// largest entry capacity whose entries plus the two bitmaps fit, and the
/// resulting field offsets. Constructed once per index from the pool's
/// [`SlotLayout`] and carried by every [`BucketRef`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketLayout {
    bytes: u32,
    capacity: u32,
    tombstone_off: u32,
    entries_off: u32,
}

impl BucketLayout {
    /// Layout of a bucket filling `bytes` (the slot size): the maximum
    /// `capacity` with `8 + 16·⌈capacity/64⌉ + 16·capacity ≤ bytes`.
    pub fn for_bytes(bytes: usize) -> Self {
        debug_assert!(bytes >= 128, "slot too small for a bucket ({bytes} B)");
        let mut capacity = (bytes - 8) / 16; // ignores the bitmaps
        while 8 + 16 * capacity.div_ceil(64) + 16 * capacity > bytes {
            capacity -= 1;
        }
        let words = capacity.div_ceil(64);
        BucketLayout {
            bytes: bytes as u32,
            capacity: capacity as u32,
            tombstone_off: (OCCUPIED_OFF + 8 * words) as u32,
            entries_off: (OCCUPIED_OFF + 16 * words) as u32,
        }
    }

    /// Layout of a bucket filling one slot of `slot_layout`.
    pub fn for_slot(slot_layout: SlotLayout) -> Self {
        Self::for_bytes(slot_layout.slot_bytes())
    }

    /// The paper's 4 KB layout ([`BUCKET_CAPACITY`] entries).
    pub fn base() -> Self {
        Self::for_bytes(PAGE_SIZE_4K)
    }

    /// Entry capacity of the bucket.
    #[inline]
    pub fn capacity(self) -> usize {
        self.capacity as usize
    }

    /// Bucket size in bytes (== the slot size).
    #[inline]
    pub fn bytes(self) -> usize {
        self.bytes as usize
    }

    /// Steady-state live entries per bucket at load factor `load`:
    /// capacity × load, halved for splitting churn (a bucket spends its
    /// life between half-full-of-limit and the limit). The shared input
    /// for capacity-driven pool sizing — the classic ~40 per 4 KB bucket
    /// at the paper's 0.35, scaling with the slot size.
    pub fn steady_entries(self, load: f64) -> usize {
        (((self.capacity() as f64) * load) / 2.0).max(1.0) as usize
    }
}

/// Result of a bucket insert attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Key inserted into a fresh slot.
    Inserted,
    /// Key existed; its value was overwritten.
    Updated,
    /// No free slot (or the load limit was reached): the bucket must split.
    Full,
}

/// A typed view over a bucket slot. Copyable; does not own the slot.
#[derive(Debug, Clone, Copy)]
pub struct BucketRef {
    ptr: *mut u8,
    layout: BucketLayout,
}

impl BucketRef {
    /// Wrap a bucket slot.
    ///
    /// # Safety
    ///
    /// `ptr` must point to the start of a live, writable slot of at least
    /// `layout.bytes()` that is used exclusively as a bucket (of the same
    /// layout) and outlives all reads through the ref.
    pub unsafe fn from_ptr(ptr: *mut u8, layout: BucketLayout) -> Self {
        debug_assert!(!ptr.is_null());
        debug_assert_eq!(ptr as usize % 8, 0, "bucket slot must be aligned");
        BucketRef { ptr, layout }
    }

    /// The underlying slot pointer.
    #[inline]
    pub fn as_ptr(self) -> *mut u8 {
        self.ptr
    }

    /// The bucket's layout.
    #[inline]
    pub fn layout(self) -> BucketLayout {
        self.layout
    }

    /// Zero the slot and set the local depth — a fresh empty bucket.
    pub fn init(self, local_depth: u32) {
        // SAFETY: per from_ptr contract the whole slot is ours.
        unsafe {
            std::ptr::write_bytes(self.ptr, 0, self.layout.bytes());
        }
        self.set_local_depth(local_depth);
    }

    /// The bucket's local depth (how many hash bits it distinguishes).
    #[inline]
    pub fn local_depth(self) -> u32 {
        // SAFETY: in-bounds, aligned.
        unsafe { (self.ptr as *const u32).read() }
    }

    /// Set the local depth.
    #[inline]
    pub fn set_local_depth(self, d: u32) {
        // SAFETY: in-bounds, aligned.
        unsafe { (self.ptr as *mut u32).write(d) }
    }

    /// Number of live entries.
    #[inline]
    pub fn count(self) -> usize {
        // SAFETY: in-bounds, aligned.
        unsafe { (self.ptr.add(4) as *const u32).read() as usize }
    }

    #[inline]
    fn set_count(self, c: usize) {
        // SAFETY: in-bounds, aligned.
        unsafe { (self.ptr.add(4) as *mut u32).write(c as u32) }
    }

    #[inline]
    fn bitmap_word(self, base: usize, word: usize) -> u64 {
        // SAFETY: word < ceil(capacity/64), base is a bitmap offset.
        unsafe { (self.ptr.add(base + word * 8) as *const u64).read() }
    }

    #[inline]
    fn set_bitmap_word(self, base: usize, word: usize, v: u64) {
        // SAFETY: word < ceil(capacity/64), base is a bitmap offset.
        unsafe { (self.ptr.add(base + word * 8) as *mut u64).write(v) }
    }

    #[inline]
    fn tombstone_off(self) -> usize {
        self.layout.tombstone_off as usize
    }

    #[inline]
    fn bit(self, base: usize, slot: usize) -> bool {
        self.bitmap_word(base, slot / 64) >> (slot % 64) & 1 == 1
    }

    #[inline]
    fn set_bit(self, base: usize, slot: usize, on: bool) {
        let w = self.bitmap_word(base, slot / 64);
        let mask = 1u64 << (slot % 64);
        self.set_bitmap_word(base, slot / 64, if on { w | mask } else { w & !mask });
    }

    #[inline]
    fn entry(self, slot: usize) -> (u64, u64) {
        debug_assert!(slot < self.layout.capacity());
        // SAFETY: in-bounds, aligned.
        unsafe {
            let p = self.ptr.add(self.layout.entries_off as usize + slot * 16) as *const u64;
            (p.read(), p.add(1).read())
        }
    }

    #[inline]
    fn set_entry(self, slot: usize, key: u64, value: u64) {
        debug_assert!(slot < self.layout.capacity());
        // SAFETY: in-bounds, aligned.
        unsafe {
            let p = self.ptr.add(self.layout.entries_off as usize + slot * 16) as *mut u64;
            p.write(key);
            p.add(1).write(value);
        }
    }

    /// The unified probe behind `insert`/`get`/`remove`: walk the linear
    /// probe path of `key` reading the presence/tombstone bitmaps a whole
    /// `u64` word (64 slots) at a time, comparing only *occupied* slots —
    /// with the configured [`ProbeBackend`]'s vector kernel — and stopping
    /// at the first never-used slot, exactly like the historical per-slot
    /// loop (which paid a division, two bitmap-word loads and a shift per
    /// slot). The wrap-around is two linear segments, `[start, capacity)`
    /// then `[0, start)`, so there is no per-slot modulo.
    #[inline]
    fn probe(self, key: u64) -> ProbeHit {
        // Lazy backend: the OnceLock is consulted only if the fast path
        // falls through to the word walk, so the common short-run probe
        // pays no atomic load for dispatch it never uses.
        self.probe_inner(key, probe_backend)
    }

    /// [`Self::probe`] with an explicit backend — the agreement tests pit
    /// every available kernel against the scalar one on the same bucket.
    #[cfg(test)]
    #[inline]
    fn probe_with(self, key: u64, backend: ProbeBackend) -> ProbeHit {
        self.probe_inner(key, || backend)
    }

    /// Two tiers. The *fast path*, inlined into the caller: at the paper's
    /// ~0.35 load limit a probe run averages ~1.3 slots, so a short
    /// per-slot walk answers nearly every probe with two bit tests and at
    /// most one key compare per slot — no word machinery, no backend
    /// dispatch, and a hot-path code footprint as small as the historical
    /// per-slot loop's. It only handles the all-occupied prefix of the
    /// run: a match is Found, a never-used slot is a clean Missing (every
    /// earlier slot was occupied, so it is also the first insertable
    /// one). A tombstone — where `first_free` bookkeeping starts — or a
    /// run outlasting the window falls through to the outlined *word
    /// walk* ([`Self::probe_slow`]), which re-examines the walked slots
    /// (a few redundant compares, only on the already-expensive path).
    /// `backend` is a thunk so each instantiation const-folds it away.
    #[inline(always)]
    fn probe_inner(self, key: u64, backend: impl FnOnce() -> ProbeBackend) -> ProbeHit {
        let capacity = self.layout.capacity();
        let start = home_slot(key, capacity);
        let mut slot = start;
        for _ in 0..FAST_PROBE_SLOTS.min(capacity) {
            if self.bit(OCCUPIED_OFF, slot) {
                if self.entry(slot).0 == key {
                    return ProbeHit::Found(slot);
                }
            } else if !self.bit(self.tombstone_off(), slot) {
                return ProbeHit::Missing {
                    first_free: Some(slot),
                };
            } else {
                break;
            }
            slot += 1;
            if slot == capacity {
                slot = 0;
            }
        }
        self.probe_slow(key, start, backend())
    }

    /// The outlined tier of [`Self::probe_with`]: dispatches once into a
    /// `#[target_feature]` wrapper so the whole word walk — including the
    /// vector compares — compiles as one feature-enabled region: the
    /// `eq8_*` kernels inline into the loop instead of paying a call
    /// (and, on AVX2, a `vzeroupper`) per byte group.
    fn probe_slow(self, key: u64, start: usize, backend: ProbeBackend) -> ProbeHit {
        #[cfg(target_arch = "x86_64")]
        match backend {
            // SAFETY: SSE2 is part of the x86-64 baseline.
            ProbeBackend::Sse2 => return unsafe { self.probe_sse2(key, start) },
            // SAFETY: `probe_backend` only yields Avx2 when
            // `is_x86_feature_detected!("avx2")` held, and `probe_with`
            // callers pass either that value or a backend from
            // `all_backends` (same detection).
            ProbeBackend::Avx2 => return unsafe { self.probe_avx2(key, start) },
            ProbeBackend::Scalar => {}
        }
        self.probe_body(key, start, ProbeBackend::Scalar)
    }

    /// SSE2-region instantiation of [`Self::probe_body`].
    ///
    /// # Safety
    ///
    /// SSE2 must be available (always true on x86-64).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    unsafe fn probe_sse2(self, key: u64, start: usize) -> ProbeHit {
        self.probe_body(key, start, ProbeBackend::Sse2)
    }

    /// AVX2-region instantiation of [`Self::probe_body`].
    ///
    /// # Safety
    ///
    /// AVX2 must be available (runtime-detected).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn probe_avx2(self, key: u64, start: usize) -> ProbeHit {
        self.probe_body(key, start, ProbeBackend::Avx2)
    }

    /// The word walk proper; `backend` is a compile-time constant in every
    /// instantiation, so the per-word dispatch folds away.
    #[inline(always)]
    fn probe_body(self, key: u64, start: usize, backend: ProbeBackend) -> ProbeHit {
        let capacity = self.layout.capacity();
        let mut first_free = None;
        match self.probe_segment(key, start, capacity, backend, &mut first_free) {
            SegmentOutcome::Found(slot) => return ProbeHit::Found(slot),
            SegmentOutcome::Terminated => return ProbeHit::Missing { first_free },
            SegmentOutcome::Continue => {}
        }
        match self.probe_segment(key, 0, start, backend, &mut first_free) {
            SegmentOutcome::Found(slot) => ProbeHit::Found(slot),
            SegmentOutcome::Terminated | SegmentOutcome::Continue => {
                ProbeHit::Missing { first_free }
            }
        }
    }

    /// Probe slots `[lo, hi)` in ascending order. Updates `first_free`
    /// with the first insertable (not-occupied) slot on the path — a
    /// tombstone, or the terminating never-used slot — if none was found
    /// in an earlier segment.
    ///
    /// The tombstone word is loaded only once the probe reaches a *gap*
    /// (a non-occupied slot): candidates below the first gap are matched
    /// against the occupied word alone, so the common home-slot hit costs
    /// one bitmap line plus one entry line. (On large buckets the two
    /// bitmaps sit `8·⌈cap/64⌉` bytes apart — an unconditional tombstone
    /// load measured as a whole extra cache miss per lookup at `k = 4`.)
    /// Matching occupied slots before knowing where the terminator lies
    /// is sound: inserts fill the first gap on the key's path and
    /// never-used slots are never re-created, so a live key cannot sit
    /// past a never-used slot on its path.
    #[inline(always)]
    fn probe_segment(
        self,
        key: u64,
        lo: usize,
        hi: usize,
        backend: ProbeBackend,
        first_free: &mut Option<usize>,
    ) -> SegmentOutcome {
        if lo >= hi {
            return SegmentOutcome::Continue;
        }
        let tomb_off = self.tombstone_off();
        for w in (lo / 64)..=((hi - 1) / 64) {
            let base = w * 64;
            let region = mask_range(lo.max(base) - base, (hi - base).min(64));
            let occ = self.bitmap_word(OCCUPIED_OFF, w) & region;
            let gaps = region & !occ;
            if gaps == 0 {
                // Fully occupied region: every slot is on the path and
                // nothing can terminate the probe here.
                if occ != 0 {
                    if let Some(slot) = self.match_key_in_word(key, base, occ, backend) {
                        return SegmentOutcome::Found(slot);
                    }
                }
                continue;
            }
            // Candidates below the first gap need no tombstone knowledge.
            let first_gap = gaps.trailing_zeros();
            let run = occ & ((1u64 << first_gap) - 1);
            if run != 0 {
                if let Some(slot) = self.match_key_in_word(key, base, run, backend) {
                    return SegmentOutcome::Found(slot);
                }
            }
            // The first gap — tombstone or never-used — is the first
            // insertable slot on the path.
            if first_free.is_none() {
                *first_free = Some(base + first_gap as usize);
            }
            let free = gaps & !self.bitmap_word(tomb_off, w);
            if free != 0 {
                // The lowest never-used slot terminates the probe;
                // occupied slots between the first gap and it are still
                // on the key's path.
                let t = free.trailing_zeros();
                let rest = occ & !run & ((1u64 << t) | ((1u64 << t) - 1));
                if rest != 0 {
                    if let Some(slot) = self.match_key_in_word(key, base, rest, backend) {
                        return SegmentOutcome::Found(slot);
                    }
                }
                return SegmentOutcome::Terminated;
            }
            // Every gap is a tombstone: the remaining occupied slots all
            // stay on the path.
            let rest = occ & !run;
            if rest != 0 {
                if let Some(slot) = self.match_key_in_word(key, base, rest, backend) {
                    return SegmentOutcome::Found(slot);
                }
            }
        }
        SegmentOutcome::Continue
    }

    /// Compare `key` against every candidate slot (set bits of `cand`,
    /// relative to slot `base`) and return the matching slot, if any.
    /// Candidates come 8 to a byte; a byte group with at least
    /// [`VECTOR_MIN_GROUP`] candidates whose 8 entries lie fully within
    /// capacity rides the vector kernel (which loads all 8 whole entries —
    /// also the non-candidates, whose bytes are always readable and whose
    /// false matches the candidate mask filters out). Sparse groups and
    /// the final partial group, where an 8-entry load would run past the
    /// entry array, use bit iteration: at the paper's ~0.35 load limit a
    /// probe run averages ~1.3 slots, and a 128 B vector compare there
    /// touches *more* cache lines than the one entry the scalar loop
    /// reads — measured as a net regression until gated by density.
    #[inline(always)]
    fn match_key_in_word(
        self,
        key: u64,
        base: usize,
        cand: u64,
        backend: ProbeBackend,
    ) -> Option<usize> {
        #[cfg(target_arch = "x86_64")]
        if backend != ProbeBackend::Scalar {
            let capacity = self.layout.capacity();
            let mut m = cand;
            while m != 0 {
                let j = (m.trailing_zeros() / 8) as usize;
                let byte = (m >> (8 * j) & 0xff) as u32;
                let group = base + 8 * j;
                if byte.count_ones() >= VECTOR_MIN_GROUP && group + 8 <= capacity {
                    // SAFETY: group + 8 <= capacity keeps all 128 bytes at
                    // `p` inside the entry array (from_ptr contract).
                    let p = unsafe { self.ptr.add(self.layout.entries_off as usize + group * 16) };
                    // SAFETY: 128 readable bytes at `p` (above); the Avx2
                    // backend is only selected when AVX2 is detected.
                    let eq = unsafe {
                        match backend {
                            ProbeBackend::Avx2 => eq8_avx2(p, key),
                            _ => eq8_sse2(p, key),
                        }
                    };
                    let hit = eq & byte;
                    if hit != 0 {
                        return Some(group + hit.trailing_zeros() as usize);
                    }
                } else if let Some(slot) = self.match_key_scalar(key, group, byte as u64) {
                    return Some(slot);
                }
                m &= !(0xffu64 << (8 * j));
            }
            return None;
        }
        self.match_key_scalar(key, base, cand)
    }

    /// Bit-iteration key compare over the set bits of `cand` (slots
    /// relative to `base`).
    #[inline]
    fn match_key_scalar(self, key: u64, base: usize, mut cand: u64) -> Option<usize> {
        while cand != 0 {
            let slot = base + cand.trailing_zeros() as usize;
            if self.entry(slot).0 == key {
                return Some(slot);
            }
            cand &= cand - 1;
        }
        None
    }

    /// Insert or update `key`, refusing (returning [`InsertOutcome::Full`])
    /// once `max_entries` live entries are reached and the key is new.
    pub fn insert(self, key: u64, value: u64, max_entries: usize) -> InsertOutcome {
        match self.probe(key) {
            ProbeHit::Found(slot) => {
                self.set_entry(slot, key, value);
                InsertOutcome::Updated
            }
            ProbeHit::Missing { first_free } => {
                if self.count() >= max_entries {
                    return InsertOutcome::Full;
                }
                match first_free {
                    Some(slot) => {
                        self.set_entry(slot, key, value);
                        self.set_bit(OCCUPIED_OFF, slot, true);
                        self.set_bit(self.tombstone_off(), slot, false);
                        self.set_count(self.count() + 1);
                        InsertOutcome::Inserted
                    }
                    None => InsertOutcome::Full,
                }
            }
        }
    }

    /// Look up `key`.
    #[inline]
    pub fn get(self, key: u64) -> Option<u64> {
        match self.probe(key) {
            ProbeHit::Found(slot) => Some(self.entry(slot).1),
            ProbeHit::Missing { .. } => None,
        }
    }

    /// Remove `key`, returning its value. Shares `get`'s probe, including
    /// its early termination at the first never-used slot.
    pub fn remove(self, key: u64) -> Option<u64> {
        match self.probe(key) {
            ProbeHit::Found(slot) => {
                let v = self.entry(slot).1;
                self.set_bit(OCCUPIED_OFF, slot, false);
                self.set_bit(self.tombstone_off(), slot, true);
                self.set_count(self.count() - 1);
                Some(v)
            }
            ProbeHit::Missing { .. } => None,
        }
    }

    /// Copy out all live entries (used when splitting).
    pub fn drain_entries(self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.count());
        for slot in 0..self.layout.capacity() {
            if self.bit(OCCUPIED_OFF, slot) {
                out.push(self.entry(slot));
            }
        }
        out
    }

    /// Iterate live entries without allocating.
    pub fn for_each_entry(self, mut f: impl FnMut(u64, u64)) {
        for slot in 0..self.layout.capacity() {
            if self.bit(OCCUPIED_OFF, slot) {
                let (k, v) = self.entry(slot);
                f(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A heap-allocated stand-in for a pool slot of `layout.bytes()`.
    fn slot(layout: BucketLayout) -> (Vec<u8>, BucketRef) {
        let mut mem = vec![0u8; layout.bytes() + 8];
        let off = mem.as_ptr().align_offset(8);
        // SAFETY: `off < 8` keeps the pointer inside the buffer, whose 8
        // spare bytes absorb the alignment shift.
        let ptr = unsafe { mem.as_mut_ptr().add(off) };
        // SAFETY: `ptr` is 8-aligned with `layout.bytes()` writable bytes
        // behind it, and `mem` (returned alongside) keeps them alive.
        let b = unsafe { BucketRef::from_ptr(ptr, layout) };
        b.init(0);
        (mem, b)
    }

    fn page() -> (Vec<u8>, BucketRef) {
        slot(BucketLayout::base())
    }

    #[test]
    fn base_layout_matches_the_paper() {
        let l = BucketLayout::base();
        assert_eq!(l.capacity(), BUCKET_CAPACITY);
        assert_eq!(l.bytes(), PAGE_SIZE_4K);
        assert_eq!(l.tombstone_off, 40);
        assert_eq!(l.entries_off, 72);
    }

    #[test]
    fn derived_layouts_fill_the_slot_tightly() {
        for k in 0..=SlotLayout::MAX_SLOT_POWER {
            let bytes = PAGE_SIZE_4K << k;
            let l = BucketLayout::for_slot(SlotLayout::new(k).unwrap());
            let words = l.capacity().div_ceil(64);
            let used = 8 + 16 * words + 16 * l.capacity();
            assert!(used <= bytes, "k={k}: {used} > {bytes}");
            // Not wasting a whole extra entry's worth of space.
            let cap1 = l.capacity() + 1;
            assert!(
                8 + 16 * cap1.div_ceil(64) + 16 * cap1 > bytes,
                "k={k}: capacity {} too conservative",
                l.capacity()
            );
            assert_eq!(l.tombstone_off as usize, 8 + 8 * words);
            assert_eq!(l.entries_off as usize, 8 + 16 * words);
        }
    }

    #[test]
    fn insert_get_roundtrip() {
        let (_m, b) = page();
        assert_eq!(b.insert(1, 100, BUCKET_CAPACITY), InsertOutcome::Inserted);
        assert_eq!(b.insert(2, 200, BUCKET_CAPACITY), InsertOutcome::Inserted);
        assert_eq!(b.get(1), Some(100));
        assert_eq!(b.get(2), Some(200));
        assert_eq!(b.get(3), None);
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn update_in_place() {
        let (_m, b) = page();
        b.insert(7, 1, BUCKET_CAPACITY);
        assert_eq!(b.insert(7, 2, BUCKET_CAPACITY), InsertOutcome::Updated);
        assert_eq!(b.get(7), Some(2));
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn key_zero_is_a_normal_key() {
        let (_m, b) = page();
        assert_eq!(b.get(0), None);
        b.insert(0, 999, BUCKET_CAPACITY);
        assert_eq!(b.get(0), Some(999));
    }

    #[test]
    fn fills_to_capacity_then_full_at_every_layout() {
        for k in [0u32, 2] {
            let layout = BucketLayout::for_slot(SlotLayout::new(k).unwrap());
            let (_m, b) = slot(layout);
            let cap = layout.capacity();
            for key in 0..cap as u64 {
                assert_eq!(
                    b.insert(key, key, cap),
                    InsertOutcome::Inserted,
                    "key {key}"
                );
            }
            assert_eq!(b.count(), cap);
            assert_eq!(b.insert(u64::MAX, 1, cap), InsertOutcome::Full);
            // Updates still work when full.
            assert_eq!(b.insert(5, 55, cap), InsertOutcome::Updated);
            for key in 0..cap as u64 {
                let want = if key == 5 { 55 } else { key };
                assert_eq!(b.get(key), Some(want), "k={k} key {key}");
            }
        }
    }

    #[test]
    fn load_limit_respected() {
        let (_m, b) = page();
        let limit = 88; // ≈ 0.35 × 251, the paper's load factor
        for k in 0..limit as u64 {
            assert_eq!(b.insert(k, k, limit), InsertOutcome::Inserted);
        }
        assert_eq!(b.insert(10_000, 1, limit), InsertOutcome::Full);
    }

    #[test]
    fn remove_then_get_miss_and_reinsert() {
        let (_m, b) = page();
        b.insert(1, 10, BUCKET_CAPACITY);
        b.insert(2, 20, BUCKET_CAPACITY);
        assert_eq!(b.remove(1), Some(10));
        assert_eq!(b.remove(1), None);
        assert_eq!(b.get(1), None);
        assert_eq!(b.get(2), Some(20));
        assert_eq!(b.count(), 1);
        // Tombstoned slot is reusable.
        assert_eq!(b.insert(1, 11, BUCKET_CAPACITY), InsertOutcome::Inserted);
        assert_eq!(b.get(1), Some(11));
    }

    #[test]
    fn tombstones_do_not_break_probe_chains() {
        // Force three keys into the same start slot by brute-force search.
        let (_m, b) = page();
        let start = home_slot(1, BUCKET_CAPACITY);
        let mut colliders = vec![1u64];
        let mut k = 2u64;
        while colliders.len() < 3 {
            if home_slot(k, BUCKET_CAPACITY) == start {
                colliders.push(k);
            }
            k += 1;
        }
        for (i, k) in colliders.iter().enumerate() {
            b.insert(*k, i as u64, BUCKET_CAPACITY);
        }
        // Delete the middle of the chain; the tail must stay reachable.
        assert_eq!(b.remove(colliders[1]), Some(1));
        assert_eq!(b.get(colliders[2]), Some(2));
        assert_eq!(b.get(colliders[0]), Some(0));
    }

    #[test]
    fn local_depth_persists() {
        let (_m, b) = page();
        b.set_local_depth(5);
        b.insert(1, 1, BUCKET_CAPACITY);
        assert_eq!(b.local_depth(), 5);
    }

    #[test]
    fn drain_returns_all_live_entries() {
        let (_m, b) = page();
        for k in 0..50u64 {
            b.insert(k, k * 2, BUCKET_CAPACITY);
        }
        b.remove(10);
        b.remove(20);
        let mut got = b.drain_entries();
        got.sort_unstable();
        assert_eq!(got.len(), 48);
        assert!(!got.iter().any(|(k, _)| *k == 10 || *k == 20));
        assert!(got.iter().all(|(k, v)| *v == *k * 2));
    }

    #[test]
    fn init_clears_previous_contents() {
        let (_m, b) = page();
        for k in 0..40u64 {
            b.insert(k, k, BUCKET_CAPACITY);
        }
        b.init(3);
        assert_eq!(b.count(), 0);
        assert_eq!(b.local_depth(), 3);
        assert_eq!(b.get(5), None);
    }

    /// Every backend the host can run (scalar everywhere; SSE2 and, when
    /// detected, AVX2 on x86-64). The agreement tests pit them pairwise on
    /// identical bucket states — including the forced-scalar CI leg, where
    /// `probe_backend()` itself returns `Scalar` but the vector kernels
    /// are still exercised here through `probe_with`.
    fn all_backends() -> Vec<ProbeBackend> {
        #[allow(unused_mut)]
        let mut backends = vec![ProbeBackend::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            backends.push(ProbeBackend::Sse2);
            if is_x86_feature_detected!("avx2") {
                backends.push(ProbeBackend::Avx2);
            }
        }
        backends
    }

    /// Deterministic interleaving of inserts/removes (keys folded into a
    /// small domain to force collision chains and tombstones), probing
    /// every backend for exact agreement — `Found` slot, `Missing`
    /// first-free, everything — after each mutation, at every layout.
    mod agreement {
        use super::*;
        use proptest::prelude::*;

        fn run_ops(layout: BucketLayout, ops: &[(u8, u64)], probes: &[u64]) {
            let backends = all_backends();
            let (_m, b) = slot(layout);
            let domain = (layout.capacity() as u64 / 2).max(8);
            let limit = layout.capacity();
            for &(kind, raw) in ops {
                let key = raw % domain;
                match kind % 3 {
                    0 | 1 => {
                        b.insert(key, !raw, limit);
                    }
                    _ => {
                        b.remove(key);
                    }
                }
                for &p in probes {
                    let want = b.probe_with(p % domain, ProbeBackend::Scalar);
                    for &back in &backends[1..] {
                        assert_eq!(
                            b.probe_with(p % domain, back),
                            want,
                            "backend {back:?} diverged from scalar (key {})",
                            p % domain
                        );
                    }
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn backends_agree_at_every_layout(
                ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..120),
                probes in proptest::collection::vec(any::<u64>(), 4..12),
            ) {
                for k in 0..=SlotLayout::MAX_SLOT_POWER {
                    let layout = BucketLayout::for_slot(SlotLayout::new(k).unwrap());
                    run_ops(layout, &ops, &probes);
                }
            }
        }
    }

    #[test]
    fn vector_kernels_match_scalar_on_a_full_bucket() {
        // Saturate a bucket (no tombstones, every word all-ones, the
        // capacity-boundary partial group live) and check every key plus
        // misses through each backend.
        for layout in [BucketLayout::base(), BucketLayout::for_bytes(512)] {
            let (_m, b) = slot(layout);
            let cap = layout.capacity();
            for key in 0..cap as u64 {
                assert_eq!(b.insert(key, key ^ 0xdead, cap), InsertOutcome::Inserted);
            }
            for back in all_backends() {
                for key in 0..cap as u64 {
                    assert_eq!(
                        b.probe_with(key, back),
                        ProbeHit::Found(match b.probe_with(key, ProbeBackend::Scalar) {
                            ProbeHit::Found(slot) => slot,
                            miss => panic!("scalar lost key {key}: {miss:?}"),
                        }),
                        "{back:?} key {key}"
                    );
                }
                // A missing key in a full bucket wraps the whole table.
                assert_eq!(
                    b.probe_with(u64::MAX, back),
                    ProbeHit::Missing { first_free: None },
                    "{back:?} miss"
                );
            }
        }
    }

    #[test]
    fn large_slot_roundtrip_past_the_4k_capacity() {
        // A 16 KB bucket holds ~4x the entries of the 4 KB layout; fill it
        // well past 251 and read everything back.
        let layout = BucketLayout::for_slot(SlotLayout::new(2).unwrap());
        assert!(layout.capacity() > 4 * BUCKET_CAPACITY - 64);
        let (_m, b) = slot(layout);
        let n = (BUCKET_CAPACITY * 3) as u64;
        for k in 0..n {
            assert_eq!(
                b.insert(k, !k, layout.capacity()),
                InsertOutcome::Inserted,
                "key {k}"
            );
        }
        b.remove(100);
        for k in 0..n {
            let want = if k == 100 { None } else { Some(!k) };
            assert_eq!(b.get(k), want, "key {k}");
        }
        assert_eq!(b.count(), n as usize - 1);
    }
}
