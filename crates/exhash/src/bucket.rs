//! The slot-sized bucket: a leaf holding `(u64 key, u64 value)` entries
//! under open addressing / linear probing.
//!
//! Buckets live in [`shortcut_rewire::PagePool`] slots so that shortcut
//! directories can be rewired to them. The bucket's capacity and field
//! offsets are **derived from the pool's slot size** via [`BucketLayout`]:
//! at the paper's default 4 KB slots the layout is the classic
//! 251-entry page ([`BUCKET_CAPACITY`]), while a `2^k`-page slot holds
//! roughly `2^k` times as many entries — fewer splits, a shallower
//! directory, and fewer doublings for the same key count.
//!
//! A [`BucketRef`] is a thin wrapper around the slot's base pointer plus
//! its layout; it is valid for as long as the underlying slot is
//! allocated, which the owning index guarantees.
//!
//! **Relocation.** Compaction may physically move a bucket to another pool
//! slot (copy-then-retire, see [`shortcut_rewire::PagePool::relocate_page`]).
//! A `BucketRef` is therefore only as stable as the translation that
//! produced it: the owning directory. Never cache one across an operation
//! that can compact (splits, doublings, explicit passes) — re-fetch it
//! through the directory instead.
//!
//! Slot layout (little-endian, 8-byte aligned, `W = ceil(capacity / 64)`):
//!
//! ```text
//! offset          0: u32  local_depth
//! offset          4: u32  count           (live entries)
//! offset          8: [u64; W] occupied    bitmap (bit i = slot i holds an entry)
//! offset   8 +  8*W: [u64; W] tombstone   bitmap (bit i = slot i was deleted)
//! offset   8 + 16*W: [(u64, u64); capacity] entries
//! ```

use crate::hash::bucket_slot_hash;
use shortcut_rewire::{SlotLayout, PAGE_SIZE_4K};

/// Entries per 4 KB bucket (`(4096 − 72) / 16`): the capacity of the
/// default [`BucketLayout::base`], kept as a named constant for the
/// page-sized schemes (HT, CH) and tests.
pub const BUCKET_CAPACITY: usize = 251;

/// Header offset of the occupied bitmap (independent of capacity).
const OCCUPIED_OFF: usize = 8;

/// Derived geometry of a bucket inside a slot of a given byte size: the
/// largest entry capacity whose entries plus the two bitmaps fit, and the
/// resulting field offsets. Constructed once per index from the pool's
/// [`SlotLayout`] and carried by every [`BucketRef`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketLayout {
    bytes: u32,
    capacity: u32,
    tombstone_off: u32,
    entries_off: u32,
}

impl BucketLayout {
    /// Layout of a bucket filling `bytes` (the slot size): the maximum
    /// `capacity` with `8 + 16·⌈capacity/64⌉ + 16·capacity ≤ bytes`.
    pub fn for_bytes(bytes: usize) -> Self {
        debug_assert!(bytes >= 128, "slot too small for a bucket ({bytes} B)");
        let mut capacity = (bytes - 8) / 16; // ignores the bitmaps
        while 8 + 16 * capacity.div_ceil(64) + 16 * capacity > bytes {
            capacity -= 1;
        }
        let words = capacity.div_ceil(64);
        BucketLayout {
            bytes: bytes as u32,
            capacity: capacity as u32,
            tombstone_off: (OCCUPIED_OFF + 8 * words) as u32,
            entries_off: (OCCUPIED_OFF + 16 * words) as u32,
        }
    }

    /// Layout of a bucket filling one slot of `slot_layout`.
    pub fn for_slot(slot_layout: SlotLayout) -> Self {
        Self::for_bytes(slot_layout.slot_bytes())
    }

    /// The paper's 4 KB layout ([`BUCKET_CAPACITY`] entries).
    pub fn base() -> Self {
        Self::for_bytes(PAGE_SIZE_4K)
    }

    /// Entry capacity of the bucket.
    #[inline]
    pub fn capacity(self) -> usize {
        self.capacity as usize
    }

    /// Bucket size in bytes (== the slot size).
    #[inline]
    pub fn bytes(self) -> usize {
        self.bytes as usize
    }

    /// Steady-state live entries per bucket at load factor `load`:
    /// capacity × load, halved for splitting churn (a bucket spends its
    /// life between half-full-of-limit and the limit). The shared input
    /// for capacity-driven pool sizing — the classic ~40 per 4 KB bucket
    /// at the paper's 0.35, scaling with the slot size.
    pub fn steady_entries(self, load: f64) -> usize {
        (((self.capacity() as f64) * load) / 2.0).max(1.0) as usize
    }
}

/// Result of a bucket insert attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Key inserted into a fresh slot.
    Inserted,
    /// Key existed; its value was overwritten.
    Updated,
    /// No free slot (or the load limit was reached): the bucket must split.
    Full,
}

/// A typed view over a bucket slot. Copyable; does not own the slot.
#[derive(Debug, Clone, Copy)]
pub struct BucketRef {
    ptr: *mut u8,
    layout: BucketLayout,
}

impl BucketRef {
    /// Wrap a bucket slot.
    ///
    /// # Safety
    ///
    /// `ptr` must point to the start of a live, writable slot of at least
    /// `layout.bytes()` that is used exclusively as a bucket (of the same
    /// layout) and outlives all reads through the ref.
    pub unsafe fn from_ptr(ptr: *mut u8, layout: BucketLayout) -> Self {
        debug_assert!(!ptr.is_null());
        debug_assert_eq!(ptr as usize % 8, 0, "bucket slot must be aligned");
        BucketRef { ptr, layout }
    }

    /// The underlying slot pointer.
    #[inline]
    pub fn as_ptr(self) -> *mut u8 {
        self.ptr
    }

    /// The bucket's layout.
    #[inline]
    pub fn layout(self) -> BucketLayout {
        self.layout
    }

    /// Zero the slot and set the local depth — a fresh empty bucket.
    pub fn init(self, local_depth: u32) {
        // SAFETY: per from_ptr contract the whole slot is ours.
        unsafe {
            std::ptr::write_bytes(self.ptr, 0, self.layout.bytes());
        }
        self.set_local_depth(local_depth);
    }

    /// The bucket's local depth (how many hash bits it distinguishes).
    #[inline]
    pub fn local_depth(self) -> u32 {
        // SAFETY: in-bounds, aligned.
        unsafe { (self.ptr as *const u32).read() }
    }

    /// Set the local depth.
    #[inline]
    pub fn set_local_depth(self, d: u32) {
        // SAFETY: in-bounds, aligned.
        unsafe { (self.ptr as *mut u32).write(d) }
    }

    /// Number of live entries.
    #[inline]
    pub fn count(self) -> usize {
        // SAFETY: in-bounds, aligned.
        unsafe { (self.ptr.add(4) as *const u32).read() as usize }
    }

    #[inline]
    fn set_count(self, c: usize) {
        // SAFETY: in-bounds, aligned.
        unsafe { (self.ptr.add(4) as *mut u32).write(c as u32) }
    }

    #[inline]
    fn bitmap_word(self, base: usize, word: usize) -> u64 {
        // SAFETY: word < ceil(capacity/64), base is a bitmap offset.
        unsafe { (self.ptr.add(base + word * 8) as *const u64).read() }
    }

    #[inline]
    fn set_bitmap_word(self, base: usize, word: usize, v: u64) {
        // SAFETY: word < ceil(capacity/64), base is a bitmap offset.
        unsafe { (self.ptr.add(base + word * 8) as *mut u64).write(v) }
    }

    #[inline]
    fn tombstone_off(self) -> usize {
        self.layout.tombstone_off as usize
    }

    #[inline]
    fn bit(self, base: usize, slot: usize) -> bool {
        self.bitmap_word(base, slot / 64) >> (slot % 64) & 1 == 1
    }

    #[inline]
    fn set_bit(self, base: usize, slot: usize, on: bool) {
        let w = self.bitmap_word(base, slot / 64);
        let mask = 1u64 << (slot % 64);
        self.set_bitmap_word(base, slot / 64, if on { w | mask } else { w & !mask });
    }

    #[inline]
    fn entry(self, slot: usize) -> (u64, u64) {
        debug_assert!(slot < self.layout.capacity());
        // SAFETY: in-bounds, aligned.
        unsafe {
            let p = self.ptr.add(self.layout.entries_off as usize + slot * 16) as *const u64;
            (p.read(), p.add(1).read())
        }
    }

    #[inline]
    fn set_entry(self, slot: usize, key: u64, value: u64) {
        debug_assert!(slot < self.layout.capacity());
        // SAFETY: in-bounds, aligned.
        unsafe {
            let p = self.ptr.add(self.layout.entries_off as usize + slot * 16) as *mut u64;
            p.write(key);
            p.add(1).write(value);
        }
    }

    /// Insert or update `key`, refusing (returning [`InsertOutcome::Full`])
    /// once `max_entries` live entries are reached and the key is new.
    pub fn insert(self, key: u64, value: u64, max_entries: usize) -> InsertOutcome {
        let capacity = self.layout.capacity();
        let start = (bucket_slot_hash(key) % capacity as u64) as usize;
        let mut first_free: Option<usize> = None;
        for i in 0..capacity {
            let slot = (start + i) % capacity;
            if self.bit(OCCUPIED_OFF, slot) {
                if self.entry(slot).0 == key {
                    self.set_entry(slot, key, value);
                    return InsertOutcome::Updated;
                }
            } else {
                if first_free.is_none() {
                    first_free = Some(slot);
                }
                // A never-occupied, never-deleted slot terminates the probe:
                // the key cannot be further along.
                if !self.bit(self.tombstone_off(), slot) {
                    break;
                }
            }
        }
        if self.count() >= max_entries {
            return InsertOutcome::Full;
        }
        match first_free {
            Some(slot) => {
                self.set_entry(slot, key, value);
                self.set_bit(OCCUPIED_OFF, slot, true);
                self.set_bit(self.tombstone_off(), slot, false);
                self.set_count(self.count() + 1);
                InsertOutcome::Inserted
            }
            None => InsertOutcome::Full,
        }
    }

    /// Look up `key`.
    pub fn get(self, key: u64) -> Option<u64> {
        let capacity = self.layout.capacity();
        let start = (bucket_slot_hash(key) % capacity as u64) as usize;
        for i in 0..capacity {
            let slot = (start + i) % capacity;
            if self.bit(OCCUPIED_OFF, slot) {
                let (k, v) = self.entry(slot);
                if k == key {
                    return Some(v);
                }
            } else if !self.bit(self.tombstone_off(), slot) {
                return None;
            }
        }
        None
    }

    /// Remove `key`, returning its value.
    pub fn remove(self, key: u64) -> Option<u64> {
        let capacity = self.layout.capacity();
        let start = (bucket_slot_hash(key) % capacity as u64) as usize;
        for i in 0..capacity {
            let slot = (start + i) % capacity;
            if self.bit(OCCUPIED_OFF, slot) {
                let (k, v) = self.entry(slot);
                if k == key {
                    self.set_bit(OCCUPIED_OFF, slot, false);
                    self.set_bit(self.tombstone_off(), slot, true);
                    self.set_count(self.count() - 1);
                    return Some(v);
                }
            } else if !self.bit(self.tombstone_off(), slot) {
                return None;
            }
        }
        None
    }

    /// Copy out all live entries (used when splitting).
    pub fn drain_entries(self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.count());
        for slot in 0..self.layout.capacity() {
            if self.bit(OCCUPIED_OFF, slot) {
                out.push(self.entry(slot));
            }
        }
        out
    }

    /// Iterate live entries without allocating.
    pub fn for_each_entry(self, mut f: impl FnMut(u64, u64)) {
        for slot in 0..self.layout.capacity() {
            if self.bit(OCCUPIED_OFF, slot) {
                let (k, v) = self.entry(slot);
                f(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A heap-allocated stand-in for a pool slot of `layout.bytes()`.
    fn slot(layout: BucketLayout) -> (Vec<u8>, BucketRef) {
        let mut mem = vec![0u8; layout.bytes() + 8];
        let off = mem.as_ptr().align_offset(8);
        // SAFETY: `off < 8` keeps the pointer inside the buffer, whose 8
        // spare bytes absorb the alignment shift.
        let ptr = unsafe { mem.as_mut_ptr().add(off) };
        // SAFETY: `ptr` is 8-aligned with `layout.bytes()` writable bytes
        // behind it, and `mem` (returned alongside) keeps them alive.
        let b = unsafe { BucketRef::from_ptr(ptr, layout) };
        b.init(0);
        (mem, b)
    }

    fn page() -> (Vec<u8>, BucketRef) {
        slot(BucketLayout::base())
    }

    #[test]
    fn base_layout_matches_the_paper() {
        let l = BucketLayout::base();
        assert_eq!(l.capacity(), BUCKET_CAPACITY);
        assert_eq!(l.bytes(), PAGE_SIZE_4K);
        assert_eq!(l.tombstone_off, 40);
        assert_eq!(l.entries_off, 72);
    }

    #[test]
    fn derived_layouts_fill_the_slot_tightly() {
        for k in 0..=SlotLayout::MAX_SLOT_POWER {
            let bytes = PAGE_SIZE_4K << k;
            let l = BucketLayout::for_slot(SlotLayout::new(k).unwrap());
            let words = l.capacity().div_ceil(64);
            let used = 8 + 16 * words + 16 * l.capacity();
            assert!(used <= bytes, "k={k}: {used} > {bytes}");
            // Not wasting a whole extra entry's worth of space.
            let cap1 = l.capacity() + 1;
            assert!(
                8 + 16 * cap1.div_ceil(64) + 16 * cap1 > bytes,
                "k={k}: capacity {} too conservative",
                l.capacity()
            );
            assert_eq!(l.tombstone_off as usize, 8 + 8 * words);
            assert_eq!(l.entries_off as usize, 8 + 16 * words);
        }
    }

    #[test]
    fn insert_get_roundtrip() {
        let (_m, b) = page();
        assert_eq!(b.insert(1, 100, BUCKET_CAPACITY), InsertOutcome::Inserted);
        assert_eq!(b.insert(2, 200, BUCKET_CAPACITY), InsertOutcome::Inserted);
        assert_eq!(b.get(1), Some(100));
        assert_eq!(b.get(2), Some(200));
        assert_eq!(b.get(3), None);
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn update_in_place() {
        let (_m, b) = page();
        b.insert(7, 1, BUCKET_CAPACITY);
        assert_eq!(b.insert(7, 2, BUCKET_CAPACITY), InsertOutcome::Updated);
        assert_eq!(b.get(7), Some(2));
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn key_zero_is_a_normal_key() {
        let (_m, b) = page();
        assert_eq!(b.get(0), None);
        b.insert(0, 999, BUCKET_CAPACITY);
        assert_eq!(b.get(0), Some(999));
    }

    #[test]
    fn fills_to_capacity_then_full_at_every_layout() {
        for k in [0u32, 2] {
            let layout = BucketLayout::for_slot(SlotLayout::new(k).unwrap());
            let (_m, b) = slot(layout);
            let cap = layout.capacity();
            for key in 0..cap as u64 {
                assert_eq!(
                    b.insert(key, key, cap),
                    InsertOutcome::Inserted,
                    "key {key}"
                );
            }
            assert_eq!(b.count(), cap);
            assert_eq!(b.insert(u64::MAX, 1, cap), InsertOutcome::Full);
            // Updates still work when full.
            assert_eq!(b.insert(5, 55, cap), InsertOutcome::Updated);
            for key in 0..cap as u64 {
                let want = if key == 5 { 55 } else { key };
                assert_eq!(b.get(key), Some(want), "k={k} key {key}");
            }
        }
    }

    #[test]
    fn load_limit_respected() {
        let (_m, b) = page();
        let limit = 88; // ≈ 0.35 × 251, the paper's load factor
        for k in 0..limit as u64 {
            assert_eq!(b.insert(k, k, limit), InsertOutcome::Inserted);
        }
        assert_eq!(b.insert(10_000, 1, limit), InsertOutcome::Full);
    }

    #[test]
    fn remove_then_get_miss_and_reinsert() {
        let (_m, b) = page();
        b.insert(1, 10, BUCKET_CAPACITY);
        b.insert(2, 20, BUCKET_CAPACITY);
        assert_eq!(b.remove(1), Some(10));
        assert_eq!(b.remove(1), None);
        assert_eq!(b.get(1), None);
        assert_eq!(b.get(2), Some(20));
        assert_eq!(b.count(), 1);
        // Tombstoned slot is reusable.
        assert_eq!(b.insert(1, 11, BUCKET_CAPACITY), InsertOutcome::Inserted);
        assert_eq!(b.get(1), Some(11));
    }

    #[test]
    fn tombstones_do_not_break_probe_chains() {
        // Force three keys into the same start slot by brute-force search.
        let (_m, b) = page();
        let start = (bucket_slot_hash(1) % BUCKET_CAPACITY as u64) as usize;
        let mut colliders = vec![1u64];
        let mut k = 2u64;
        while colliders.len() < 3 {
            if (bucket_slot_hash(k) % BUCKET_CAPACITY as u64) as usize == start {
                colliders.push(k);
            }
            k += 1;
        }
        for (i, k) in colliders.iter().enumerate() {
            b.insert(*k, i as u64, BUCKET_CAPACITY);
        }
        // Delete the middle of the chain; the tail must stay reachable.
        assert_eq!(b.remove(colliders[1]), Some(1));
        assert_eq!(b.get(colliders[2]), Some(2));
        assert_eq!(b.get(colliders[0]), Some(0));
    }

    #[test]
    fn local_depth_persists() {
        let (_m, b) = page();
        b.set_local_depth(5);
        b.insert(1, 1, BUCKET_CAPACITY);
        assert_eq!(b.local_depth(), 5);
    }

    #[test]
    fn drain_returns_all_live_entries() {
        let (_m, b) = page();
        for k in 0..50u64 {
            b.insert(k, k * 2, BUCKET_CAPACITY);
        }
        b.remove(10);
        b.remove(20);
        let mut got = b.drain_entries();
        got.sort_unstable();
        assert_eq!(got.len(), 48);
        assert!(!got.iter().any(|(k, _)| *k == 10 || *k == 20));
        assert!(got.iter().all(|(k, v)| *v == *k * 2));
    }

    #[test]
    fn init_clears_previous_contents() {
        let (_m, b) = page();
        for k in 0..40u64 {
            b.insert(k, k, BUCKET_CAPACITY);
        }
        b.init(3);
        assert_eq!(b.count(), 0);
        assert_eq!(b.local_depth(), 3);
        assert_eq!(b.get(5), None);
    }

    #[test]
    fn large_slot_roundtrip_past_the_4k_capacity() {
        // A 16 KB bucket holds ~4x the entries of the 4 KB layout; fill it
        // well past 251 and read everything back.
        let layout = BucketLayout::for_slot(SlotLayout::new(2).unwrap());
        assert!(layout.capacity() > 4 * BUCKET_CAPACITY - 64);
        let (_m, b) = slot(layout);
        let n = (BUCKET_CAPACITY * 3) as u64;
        for k in 0..n {
            assert_eq!(
                b.insert(k, !k, layout.capacity()),
                InsertOutcome::Inserted,
                "key {k}"
            );
        }
        b.remove(100);
        for k in 0..n {
            let want = if k == 100 { None } else { Some(!k) };
            assert_eq!(b.get(k), want, "key {k}");
        }
        assert_eq!(b.count(), n as usize - 1);
    }
}
